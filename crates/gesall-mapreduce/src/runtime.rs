//! The job driver: input splits → map wave → shuffle → reduce wave.
//!
//! Tasks execute as numbered *attempts* under `catch_unwind` isolation:
//! a panicking attempt is retried (with exponential backoff) up to
//! [`JobConfig::max_attempts`] times before the job fails. Stragglers are
//! backed up by speculative attempts, first finisher wins. Node deaths —
//! injected via [`crate::fault::FaultPlan`] — re-schedule the dead node's
//! in-flight attempts and re-run already-committed map tasks whose
//! shuffle output lived on it, exactly as Hadoop must when a slave is
//! lost mid-job (the failure model behind the paper's production-cluster
//! observations).

use crate::cluster::ClusterResources;
use crate::counters::{keys, Counters};
use crate::error::{panic_message, GesallError};
use crate::fault::{FaultPlan, NodeDeath};
use crate::lease::{LeasePermit, SlotLease};
use crate::shipping;
use crate::shuffle::{reduce_merge_streamed, Segment, SortSpillBuffer, COMPRESS_MIN_BYTES};
use crate::spillpool::SpillPool;
use crate::task::{MapContext, Mapper, Partitioner, ReduceContext, Reducer};
use gesall_dfs::{Dfs, PinnedPlacement, ReadAffinity, SweepReason};
use gesall_formats::wire::Wire;
use gesall_formats::Codec;
use gesall_telemetry::{Phase, Recorder, Span, SpanId, SpanKind};
use parking_lot::{Condvar, Mutex};
use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-task output slots: `None` until the task's winning attempt commits.
type TaskOutputs<K, V> = Vec<Mutex<Option<Vec<(K, V)>>>>;

/// A committed map task's decision on whether its outputs survive a
/// node death — wired by the DFS-transit shuffle so reducers re-fetch
/// from replicas instead of the engine re-running the map.
type SurvivalCheck<'a> = Option<&'a (dyn Fn(usize) -> bool + Sync)>;

/// Where a committed map task's shuffle output lives.
enum MapOutput {
    /// In-memory segments handed to reducers as refcount bumps — the
    /// pre-DFS path, kept for `shuffle_via_dfs = false` and engines
    /// without an attached DFS.
    Memory(Vec<Segment>),
    /// Persisted to the DFS as one indexed file pinned to the mapper's
    /// node; each reducer range-reads its partition's frame. `metas`
    /// keeps the per-partition shape for shuffle-matrix recording
    /// without touching the file again.
    Dfs { path: String, metas: Vec<SegMeta> },
}

/// Per-partition shape of a shipped map output.
struct SegMeta {
    wire_len: usize,
    compressed: bool,
    /// Record count — lets a reducer know how many nonempty source
    /// runs its merge will see *before* fetching them, which is what
    /// allows the fetch to pipeline with the merge without perturbing
    /// the multipass structure (see
    /// [`reduce_merge_streamed`](crate::shuffle::reduce_merge_streamed)).
    records: u64,
}

/// Per-job configuration (the Hadoop parameters the paper tunes).
#[derive(Debug, Clone)]
pub struct JobConfig {
    pub name: String,
    pub n_reducers: usize,
    /// Map-side sort buffer (`mapreduce.task.io.sort.mb`), in bytes here.
    pub io_sort_bytes: usize,
    /// Reduce-side merge fan-in.
    pub merge_factor: usize,
    /// Compress map output (the paper's Snappy setting).
    pub compress_map_output: bool,
    /// Smallest raw partition payload worth compressing; below it the
    /// segment travels raw even with compression on (default
    /// [`COMPRESS_MIN_BYTES`]).
    pub compress_min_bytes: usize,
    /// Sort spills on the engine's background encoder pool so the mapper
    /// keeps buffering while previous spills process; the map task's
    /// finish becomes a drain-and-merge barrier. Output is byte-identical
    /// to the synchronous path.
    pub async_spill: bool,
    /// Sort spill batches with the radix kernel
    /// ([`Wire::sort_prefix`](gesall_formats::wire::Wire::sort_prefix)-keyed
    /// LSD radix, DESIGN.md §5) instead of the comparison sort. Output
    /// is identical either way; off = the scalar-twin benchmark config.
    pub radix_sort: bool,
    /// `mapreduce.job.reduce.slowstart.completedmaps` — fraction of maps
    /// that must finish before reducers are scheduled. The in-process
    /// engine always barriers maps before reduces; the value is recorded
    /// in the result for the cost model (gesall-sim) to consume.
    pub slowstart_completed_maps: f64,
    pub map_vcores: usize,
    pub map_memory_mb: usize,
    pub reduce_vcores: usize,
    pub reduce_memory_mb: usize,
    /// Maximum attempts per task (`mapreduce.map.maxattempts` analogue).
    /// A task whose attempts all fail aborts the job.
    pub max_attempts: usize,
    /// Base delay before re-running a failed attempt; doubles per
    /// consecutive failure of the same task.
    pub retry_backoff_ms: f64,
    /// Launch backup attempts for stragglers
    /// (`mapreduce.map.speculative` analogue).
    pub speculative: bool,
    /// Ship committed map outputs through the DFS (one indexed file per
    /// map task, pinned to the mapper's node) instead of handing
    /// reducers in-memory segment references. Needs a DFS attached via
    /// [`MapReduceEngine::with_shuffle_dfs`]; without one the engine
    /// silently stays on the in-memory path. With replication > 1 a
    /// node death no longer forces re-running committed maps — reducers
    /// re-fetch the shipped output from a surviving replica.
    pub shuffle_via_dfs: bool,
    /// An attempt is a straggler once it has run this multiple of the
    /// median completed-attempt runtime.
    pub speculative_multiplier: f64,
    /// ... but never before it has run at least this long (keeps
    /// micro-tasks from being pointlessly backed up).
    pub speculative_min_runtime_ms: f64,
    /// Telemetry span to parent this job's trace under ([`SpanId::NONE`]
    /// = a root span). Set by drivers that trace a larger unit — e.g. a
    /// pipeline round — so the job nests inside it.
    pub parent_span: SpanId,
    /// Container-slot lease for this job, handed in by an external
    /// capacity scheduler (gesall-jobsvc). Wave workers take a permit
    /// before each attempt and release it after, so the job never runs
    /// more than the lease's current grant concurrently — the mechanism
    /// that lets many jobs share one engine without oversubscribing the
    /// cluster. `None` (the default) leaves the job unthrottled.
    pub slot_lease: Option<SlotLease>,
    /// DFS directory the job's shuffle transit lives under: transit
    /// files go to `{namespace}/shuffle-{run}/…` instead of the default
    /// `/{name}/shuffle-{run}/…`. The job service sets `/{tenant}/{job}`
    /// here so every tenant's transit sits under one sweepable prefix.
    pub shuffle_namespace: Option<String>,
    /// Codec compressed map-output partitions travel under. `None` (the
    /// default) defers to the key-type's
    /// [`Wire::codec_hint`](gesall_formats::wire::Wire::codec_hint)
    /// (value type first, then key type), falling back to [`Codec::Lz`];
    /// benchmarks set it to force twin runs onto a specific codec.
    pub shuffle_codec: Option<Codec>,
    /// Pass the reducer's exec node to the DFS as a replica-selection
    /// affinity so shuffle fetches prefer the co-located replica (map
    /// outputs are pinned to their mapper's node, so with replication
    /// above 1 a reducer scheduled there reads locally). Off = every
    /// fetch uses the DFS's default replica order — the locality
    /// twin's baseline.
    pub shuffle_locality: bool,
    /// How many map-output partition fetches may run ahead of the
    /// reduce merge (the bounded prefetch pipeline). 0 behaves as 1:
    /// the fetch of segment *n+1* always overlaps the merge draining
    /// segment *n*.
    pub shuffle_prefetch: usize,
}

impl Default for JobConfig {
    fn default() -> JobConfig {
        JobConfig {
            name: "job".into(),
            n_reducers: 1,
            io_sort_bytes: 64 * 1024 * 1024,
            merge_factor: 10,
            compress_map_output: true,
            compress_min_bytes: COMPRESS_MIN_BYTES,
            async_spill: true,
            radix_sort: true,
            slowstart_completed_maps: 0.05,
            map_vcores: 1,
            map_memory_mb: 1024,
            reduce_vcores: 1,
            reduce_memory_mb: 1024,
            max_attempts: 4,
            retry_backoff_ms: 10.0,
            shuffle_via_dfs: true,
            speculative: true,
            speculative_multiplier: 1.5,
            speculative_min_runtime_ms: 25.0,
            parent_span: SpanId::NONE,
            slot_lease: None,
            shuffle_namespace: None,
            shuffle_codec: None,
            shuffle_locality: true,
            shuffle_prefetch: 2,
        }
    }
}

/// One unit of map input: typed records plus a locality preference
/// (the node holding the logical partition's blocks).
#[derive(Debug, Clone)]
pub struct InputSplit<K, V> {
    pub label: String,
    pub preferred_node: Option<usize>,
    pub records: Vec<(K, V)>,
}

impl<K, V> InputSplit<K, V> {
    pub fn new(label: impl Into<String>, records: Vec<(K, V)>) -> InputSplit<K, V> {
        InputSplit {
            label: label.into(),
            preferred_node: None,
            records,
        }
    }

    pub fn at_node(mut self, node: usize) -> InputSplit<K, V> {
        self.preferred_node = Some(node);
        self
    }
}

/// Map task or reduce task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskKind {
    Map,
    Reduce,
}

/// How one task attempt ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttemptOutcome {
    /// The attempt's result was committed as the task's output.
    Succeeded,
    /// The attempt panicked; the task was retried (or the job aborted).
    Failed,
    /// The attempt finished but its result was discarded — it lost a
    /// speculative race, or its node died while it ran.
    Killed,
}

/// One task attempt's history record — the raw material for Fig. 7-style
/// progress plots and for fault post-mortems.
#[derive(Debug, Clone)]
pub struct TaskEvent {
    pub kind: TaskKind,
    pub task_id: usize,
    /// Attempt number within the task, starting at 0.
    pub attempt: usize,
    /// Whether this was a speculative (backup) attempt.
    pub speculative: bool,
    pub outcome: AttemptOutcome,
    /// Panic message for `Failed` attempts.
    pub error: Option<String>,
    pub node: usize,
    /// Milliseconds since job start.
    pub start_ms: f64,
    pub end_ms: f64,
    /// Whether the task ran on its preferred (data-local) node.
    pub data_local: bool,
}

/// Everything a finished job reports.
#[derive(Debug)]
pub struct JobResult<K, V> {
    /// One output vector per reducer (or per map task for map-only jobs).
    pub outputs: Vec<Vec<(K, V)>>,
    pub counters: Counters,
    pub events: Vec<TaskEvent>,
    pub wall_ms: f64,
    pub config: JobConfig,
}

impl<K, V> JobResult<K, V> {
    /// Canonical attempt history: one line per attempt, sorted, with
    /// wall-clock times and node/thread placement excluded. For a given
    /// [`FaultPlan`] seed this is byte-identical across runs — the
    /// contract the seed-determinism test asserts.
    pub fn history(&self) -> Vec<String> {
        let mut lines: Vec<String> = self
            .events
            .iter()
            .map(|e| {
                format!(
                    "{:?} task={} attempt={} speculative={} outcome={:?} error={}",
                    e.kind,
                    e.task_id,
                    e.attempt,
                    e.speculative,
                    e.outcome,
                    e.error.as_deref().unwrap_or("-"),
                )
            })
            .collect();
        lines.sort();
        lines
    }
}

/// The engine: a cluster's worth of worker threads.
pub struct MapReduceEngine {
    cluster: ClusterResources,
    fault_plan: FaultPlan,
    /// Scheduled deaths not yet fired (each fires at most once per engine).
    pending_deaths: Mutex<Vec<NodeDeath>>,
    /// Nodes lost so far; a dead node schedules no further attempts, in
    /// any wave of any subsequent job on this engine.
    dead_nodes: Mutex<HashSet<usize>>,
    /// Called (outside scheduler locks) when a node dies — the DFS layer
    /// hooks re-replication in here.
    node_death_hook: Option<Arc<dyn Fn(usize) + Send + Sync>>,
    /// Span recorder; inert by default ([`Recorder::disabled`]).
    recorder: Recorder,
    /// Engine-wide spill-encoder pool, spawned on first async-spill job.
    spill_pool: Mutex<Option<Arc<SpillPool>>>,
    /// DFS used as shuffle transit when [`JobConfig::shuffle_via_dfs`]
    /// is on; `None` keeps the in-memory handoff path.
    shuffle_dfs: Mutex<Option<Dfs>>,
    /// Monotone id source for shuffle directories and attempt files, so
    /// retried/speculative attempts and repeated jobs never collide on
    /// a DFS path.
    shuffle_seq: AtomicU64,
    /// Whether the fault plan's storage-layer gray failures have been
    /// armed on the shuffle DFS (once per engine: flaky-read budgets
    /// are consumable and must not be re-armed per job).
    dfs_faults_armed: AtomicBool,
}

impl MapReduceEngine {
    pub fn new(cluster: ClusterResources) -> MapReduceEngine {
        MapReduceEngine {
            cluster,
            fault_plan: FaultPlan::default(),
            pending_deaths: Mutex::new(Vec::new()),
            dead_nodes: Mutex::new(HashSet::new()),
            node_death_hook: None,
            recorder: Recorder::disabled(),
            spill_pool: Mutex::new(None),
            shuffle_dfs: Mutex::new(None),
            shuffle_seq: AtomicU64::new(0),
            dfs_faults_armed: AtomicBool::new(false),
        }
    }

    /// The engine-wide spill-encoder pool, created lazily and shared by
    /// every map task of every job on this engine. Starts small (a
    /// quarter of the cores) and grows itself toward one thread per
    /// core (capped at 16) from observed submit-wait backpressure —
    /// map-light jobs keep a couple of threads, all-spill workloads
    /// earn more.
    pub fn spill_pool(&self) -> Arc<SpillPool> {
        self.spill_pool
            .lock()
            .get_or_insert_with(|| {
                let cores = std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(2);
                Arc::new(SpillPool::adaptive((cores / 4).max(2), cores.min(16), 4))
            })
            .clone()
    }

    /// Route shuffle through `dfs` for jobs with
    /// [`JobConfig::shuffle_via_dfs`] set (builder form).
    pub fn with_shuffle_dfs(self, dfs: Dfs) -> MapReduceEngine {
        self.set_shuffle_dfs(dfs);
        self
    }

    /// Attach (or replace) the shuffle-transit DFS on an existing engine.
    pub fn set_shuffle_dfs(&self, dfs: Dfs) {
        *self.shuffle_dfs.lock() = Some(dfs);
    }

    /// A single-node engine with `slots` concurrent tasks.
    pub fn local(slots: usize) -> MapReduceEngine {
        MapReduceEngine::new(ClusterResources::uniform(1, slots.max(1), usize::MAX / 2))
    }

    /// Inject faults according to `plan` (panics, slowdowns, node deaths).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> MapReduceEngine {
        *self.pending_deaths.get_mut() = plan.node_deaths().to_vec();
        self.fault_plan = plan;
        self
    }

    /// Register a callback fired once per node death, after the scheduler
    /// has marked the node dead and re-queued its work.
    pub fn on_node_death(
        mut self,
        hook: impl Fn(usize) + Send + Sync + 'static,
    ) -> MapReduceEngine {
        self.node_death_hook = Some(Arc::new(hook));
        self
    }

    /// Trace jobs run on this engine through `recorder` (builder form).
    pub fn with_recorder(mut self, recorder: Recorder) -> MapReduceEngine {
        self.recorder = recorder;
        self
    }

    /// Swap the span recorder on an existing engine.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    pub fn cluster(&self) -> &ClusterResources {
        &self.cluster
    }

    /// Nodes that have died so far on this engine.
    pub fn dead_nodes(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.dead_nodes.lock().iter().copied().collect();
        v.sort_unstable();
        v
    }

    fn is_dead(&self, node: usize) -> bool {
        self.dead_nodes.lock().contains(&node)
    }

    /// Run a full map + shuffle + reduce job.
    pub fn run_job<M, R>(
        &self,
        config: JobConfig,
        mapper: &M,
        reducer: &R,
        partitioner: &dyn Partitioner<M::OutKey>,
        splits: Vec<InputSplit<M::InKey, M::InValue>>,
    ) -> Result<JobResult<R::OutKey, R::OutValue>, GesallError>
    where
        M: Mapper,
        R: Reducer<InKey = M::OutKey, InValue = M::OutValue>,
    {
        let counters = Counters::new();
        let events: Mutex<Vec<TaskEvent>> = Mutex::new(Vec::new());
        let t0 = Instant::now();
        let job_span = self
            .recorder
            .start(SpanKind::Job, &config.name, config.parent_span);
        let n_maps = splits.len();
        let n_reducers = config.n_reducers.max(1);

        // ---- Map wave -------------------------------------------------
        let shuffle_dfs = if config.shuffle_via_dfs {
            self.shuffle_dfs.lock().clone()
        } else {
            None
        };
        // Arm the plan's storage-layer gray failures on the transit DFS,
        // once per engine (flaky-read budgets are consumable).
        if let Some(dfs) = &shuffle_dfs {
            let faults = self.fault_plan.dfs_faults();
            if !faults.is_empty() && !self.dfs_faults_armed.swap(true, Ordering::SeqCst) {
                for c in &faults.corrupt_blocks {
                    dfs.inject_corrupt_on_write(&c.path_contains, c.block, c.replica);
                }
                for &(node, n) in &faults.flaky_reads {
                    dfs.inject_flaky_reads(node, n);
                }
                for &(node, ms) in &faults.slow_nodes {
                    dfs.inject_slow_node(node, ms);
                }
            }
        }
        // Per-run shuffle directory: the id makes repeated jobs on one
        // engine (and their retried attempts' files, below) disjoint.
        // The run counter is monotone per engine — never wall-clock
        // derived — so transit paths are stable across reruns of the
        // same seed. A namespaced job (job service tenancy) shuffles
        // under its own `/{tenant}/{job}/` prefix instead.
        let shuffle_run = self.shuffle_seq.fetch_add(1, Ordering::Relaxed);
        let shuffle_base = match &config.shuffle_namespace {
            Some(ns) => format!("{}/shuffle-{}", ns.trim_end_matches('/'), shuffle_run),
            None => format!("/{}/shuffle-{}", config.name, shuffle_run),
        };
        // Drop every shipped map output for this run, on success *and*
        // every error path — losing attempts leave orphans at unique
        // paths, so a retention prefix sweep is the only correct
        // cleanup (charged to `dfs.retention.swept.completed`).
        let cleanup_shuffle = |dfs: &Option<Dfs>| {
            if let Some(dfs) = dfs {
                dfs.sweep_prefix(&shuffle_base, SweepReason::Completed);
            }
        };
        let map_outputs: Vec<Mutex<Option<MapOutput>>> =
            (0..n_maps).map(|_| Mutex::new(None)).collect();
        let prefs: Vec<Option<usize>> = splits.iter().map(|s| s.preferred_node).collect();
        // Pool busy time and backpressure are engine-wide gauges; the
        // before/after delta around the map wave is this job's share.
        // (Per-attempt bags can't carry it: a discarded speculative
        // attempt's bag is dropped, but its encoder time was real.)
        let pool = config.async_spill.then(|| self.spill_pool());
        let pool_busy0 = pool.as_ref().map_or(0, |p| p.busy_nanos());
        let pool_waits0 = pool.as_ref().map_or(0, |p| p.submit_waits());
        let pool_grown0 = pool.as_ref().map_or(0, |p| p.workers_grown());

        // With DFS transit, a committed map whose home node dies may
        // still be readable from a replica: probe actual datanode
        // storage, excluding every engine-dead node's co-located
        // datanode (the DFS may not have been told about the death yet
        // — the failure hook runs after eviction decisions).
        let survival;
        let survives: SurvivalCheck = match &shuffle_dfs {
            Some(dfs) => {
                let dfs = dfs.clone();
                let slots = &map_outputs;
                survival = move |task: usize| -> bool {
                    let slot = slots[task].lock();
                    let Some(MapOutput::Dfs { path, .. }) = &*slot else {
                        return false;
                    };
                    let n = dfs.config().n_nodes;
                    let mut excluded: Vec<usize> =
                        self.dead_nodes.lock().iter().map(|d| d % n).collect();
                    excluded.sort_unstable();
                    excluded.dedup();
                    dfs.file_available_excluding(path, &excluded)
                };
                Some(&survival)
            }
            None => None,
        };

        // Which codec compressed map-output partitions travel under:
        // the job override wins, else the key-type's hint (value type
        // first — it dominates the bytes), else the LZ default.
        let shuffle_codec = config.shuffle_codec.unwrap_or_else(|| {
            <M::OutValue as Wire>::codec_hint()
                .or_else(<M::OutKey as Wire>::codec_hint)
                .unwrap_or(Codec::Lz)
        });

        let map_wave = self.run_wave(
            TaskKind::Map,
            &config,
            &counters,
            &events,
            t0,
            job_span.id,
            &prefs,
            &map_outputs,
            survives,
            |task_id, exec_node, bag| {
                let t_task = Instant::now();
                let split = &splits[task_id];
                bag.add(keys::MAP_INPUT_RECORDS, split.records.len() as u64);
                let mut buf = SortSpillBuffer::new(
                    config.io_sort_bytes,
                    n_reducers,
                    partitioner,
                    config.compress_map_output,
                    bag.clone(),
                )
                .with_min_compress_bytes(config.compress_min_bytes)
                .with_codec(shuffle_codec)
                .with_radix(config.radix_sort);
                if let Some(pool) = &pool {
                    buf = buf.with_pool(pool.clone());
                }
                {
                    let mut sink = |k: M::OutKey, v: M::OutValue| buf.emit(k, v);
                    let mut ctx = MapContext { sink: &mut sink };
                    for (k, v) in &split.records {
                        mapper.map(k, v, &mut ctx);
                    }
                    mapper.finish(&mut ctx);
                }
                let segments = buf.finish();
                // Map phase = task body minus the timed sub-phases. With
                // async spill the sort overlaps the map loop, so only the
                // merge and the drain wait are subtracted — SortSpill
                // nanos (recorded by the encoders) no longer come out of
                // this task's wall-clock.
                let accounted = if config.async_spill {
                    bag.get(Phase::MapMerge.counter_key())
                        + bag.get(keys::SPILL_POOL_DRAIN_WAIT_NANOS)
                } else {
                    bag.get(Phase::SortSpill.counter_key())
                        + bag.get(Phase::MapMerge.counter_key())
                };
                let total = t_task.elapsed().as_nanos() as u64;
                bag.add(Phase::Map.counter_key(), total.saturating_sub(accounted));
                match &shuffle_dfs {
                    Some(dfs) => {
                        let metas = segments
                            .iter()
                            .map(|s| SegMeta {
                                wire_len: s.wire_len(),
                                compressed: s.is_compressed(),
                                records: s.records,
                            })
                            .collect();
                        // Attempt-unique path: a speculative or retried
                        // attempt of the same task must never collide
                        // with (or clobber) another attempt's file.
                        let uid = self.shuffle_seq.fetch_add(1, Ordering::Relaxed);
                        let path = format!("{shuffle_base}/map-{task_id:05}-a{uid}.segs");
                        let t_ship = Instant::now();
                        let pin = PinnedPlacement(exec_node % dfs.config().n_nodes);
                        if let Err(e) =
                            shipping::store_map_output_with_policy(dfs, &path, &segments, &pin, bag)
                        {
                            // A panic here is an attempt failure → retry.
                            panic!("shipping map output {path} to DFS: {e}");
                        }
                        // Persisting the output is the map-side half of
                        // the shuffle, not map compute.
                        bag.add(
                            Phase::Shuffle.counter_key(),
                            t_ship.elapsed().as_nanos() as u64,
                        );
                        MapOutput::Dfs { path, metas }
                    }
                    None => MapOutput::Memory(segments),
                }
            },
        );
        if let Some(p) = &pool {
            counters.add(
                keys::SPILL_POOL_BUSY_NANOS,
                p.busy_nanos().saturating_sub(pool_busy0),
            );
            counters.add(
                keys::SPILL_POOL_SUBMIT_WAITS,
                p.submit_waits().saturating_sub(pool_waits0),
            );
            counters.add(
                keys::SPILL_POOL_WORKERS_GROWN,
                p.workers_grown().saturating_sub(pool_grown0),
            );
        }
        if let Err(e) = map_wave {
            cleanup_shuffle(&shuffle_dfs);
            return Err(e);
        }

        // ---- Shuffle + reduce wave ------------------------------------
        let collected: Result<Vec<MapOutput>, GesallError> = map_outputs
            .into_iter()
            .map(|m| {
                m.into_inner().ok_or_else(|| {
                    GesallError::Runtime("map wave ended without committed output".into())
                })
            })
            .collect();
        let map_outputs = match collected {
            Ok(v) => v,
            Err(e) => {
                cleanup_shuffle(&shuffle_dfs);
                return Err(e);
            }
        };
        // The shuffle matrix: bytes each reducer pulls from each map
        // output. Recorded once, between the waves, so retried or
        // speculative reduce attempts cannot double-count a cell.
        if self.recorder.is_enabled() {
            for (m, out) in map_outputs.iter().enumerate() {
                match out {
                    MapOutput::Memory(per_map) => {
                        for (r, seg) in per_map.iter().enumerate() {
                            self.recorder
                                .shuffle_cell(m, r, seg.wire_len() as u64, seg.is_compressed());
                        }
                    }
                    MapOutput::Dfs { metas, .. } => {
                        for (r, meta) in metas.iter().enumerate() {
                            self.recorder
                                .shuffle_cell(m, r, meta.wire_len as u64, meta.compressed);
                        }
                    }
                }
            }
        }
        let reduce_outputs: TaskOutputs<R::OutKey, R::OutValue> =
            (0..n_reducers).map(|_| Mutex::new(None)).collect();
        let reduce_prefs: Vec<Option<usize>> = vec![None; n_reducers];

        let reduce_wave = self.run_wave(
            TaskKind::Reduce,
            &config,
            &counters,
            &events,
            t0,
            job_span.id,
            &reduce_prefs,
            &reduce_outputs,
            None,
            |partition, exec_node, bag| {
                let t_task = Instant::now();
                // Locality hint: the reducer's exec node, mapped onto
                // the DFS node space exactly as map outputs were
                // pinned, so a fetch prefers the co-located replica.
                let affinity = match &shuffle_dfs {
                    Some(dfs) if config.shuffle_locality => {
                        ReadAffinity::node(exec_node % dfs.config().n_nodes)
                    }
                    _ => ReadAffinity::NONE,
                };
                // The merge must know its nonempty-run count before
                // fetching anything — the shipped metas carry it.
                let n_runs = map_outputs
                    .iter()
                    .filter(|out| match out {
                        MapOutput::Memory(per_map) => per_map[partition].records > 0,
                        MapOutput::Dfs { metas, .. } => metas[partition].records > 0,
                    })
                    .count();
                let outputs: &[MapOutput] = &map_outputs;
                let dfs_ref = shuffle_dfs.as_ref();
                let depth = config.shuffle_prefetch.max(1);
                // Pull this partition from every map output: a DFS range
                // read per shipped file (only this reducer's frame
                // travels), or — on the in-memory path — a zero-copy
                // refcount bump on the map task's output backing. The
                // fetcher thread runs up to `depth` segments ahead of
                // the merge; only the time the merge *waits* on it is
                // charged as shuffle — overlapped fetch time is the
                // latency the pipeline hides.
                let grouped = std::thread::scope(|scope| {
                    let (tx, rx) =
                        std::sync::mpsc::sync_channel::<Result<Segment, String>>(depth);
                    scope.spawn(move || {
                        for out in outputs {
                            let res = match out {
                                MapOutput::Memory(per_map) => {
                                    let seg = per_map[partition].clone();
                                    bag.add(keys::SHUFFLE_BYTES_MEMORY, seg.wire_len() as u64);
                                    Ok(seg)
                                }
                                MapOutput::Dfs { path, .. } => {
                                    // The DFS already retries transient
                                    // replica failures internally; this
                                    // outer loop covers whole-op failures
                                    // that outlive its budget (e.g. a
                                    // deadline expiry). Non-retryable
                                    // errors — corrupt beyond repair,
                                    // missing file — surface immediately:
                                    // that's an attempt failure, and the
                                    // scheduler's re-run (or reship probe)
                                    // is the right recovery.
                                    let dfs = dfs_ref.expect("Dfs output implies a DFS");
                                    let mut tries = 0usize;
                                    loop {
                                        match shipping::fetch_partition_at(
                                            dfs, path, partition, affinity, bag,
                                        ) {
                                            Ok(seg) => {
                                                bag.add(
                                                    keys::SHUFFLE_BYTES_DFS,
                                                    seg.wire_len() as u64,
                                                );
                                                break Ok(seg);
                                            }
                                            Err(e) if e.is_retryable() && tries < 2 => {
                                                tries += 1;
                                                bag.add(keys::SHUFFLE_FETCH_RETRIES, 1);
                                            }
                                            Err(e) => {
                                                break Err(format!(
                                                    "fetching partition {partition} of {path}: {e}"
                                                ));
                                            }
                                        }
                                    }
                                }
                            };
                            let failed = res.is_err();
                            // A closed channel means the merge side is
                            // done (or unwinding); either way stop.
                            if tx.send(res).is_err() || failed {
                                return;
                            }
                        }
                    });
                    let next_segment = || match rx.try_recv() {
                        Ok(res) => {
                            // Already resident: the prefetch ran ahead
                            // of the merge drain.
                            bag.add(keys::SHUFFLE_FETCH_PREFETCHED, 1);
                            Some(res.unwrap_or_else(|e| panic!("{e}")))
                        }
                        // Blocking wait: the prefetch hasn't caught up.
                        // The wait elapses inside the merge, whose own
                        // ledger attributes supplier time to the shuffle
                        // phase — no charge here.
                        Err(std::sync::mpsc::TryRecvError::Empty) => match rx.recv() {
                            Ok(res) => Some(res.unwrap_or_else(|e| panic!("{e}"))),
                            Err(_) => None,
                        },
                        Err(std::sync::mpsc::TryRecvError::Disconnected) => None,
                    };
                    reduce_merge_streamed::<M::OutKey, M::OutValue>(
                        n_runs,
                        next_segment,
                        config.merge_factor,
                        bag,
                    )
                });
                let mut out = Vec::new();
                {
                    let mut ctx = ReduceContext { out: &mut out };
                    for (k, vs) in grouped {
                        reducer.reduce(k, vs, &mut ctx);
                    }
                    reducer.finish(&mut ctx);
                }
                bag.add(keys::REDUCE_OUTPUT_RECORDS, out.len() as u64);
                // Reduce phase = task body minus shuffle + merge time.
                let accounted = bag.get(Phase::Shuffle.counter_key())
                    + bag.get(Phase::ReduceMerge.counter_key());
                let total = t_task.elapsed().as_nanos() as u64;
                bag.add(Phase::Reduce.counter_key(), total.saturating_sub(accounted));
                out
            },
        );
        if let Err(e) = reduce_wave {
            cleanup_shuffle(&shuffle_dfs);
            return Err(e);
        }

        let collected: Result<Vec<_>, GesallError> = reduce_outputs
            .into_iter()
            .map(|m| {
                m.into_inner().ok_or_else(|| {
                    GesallError::Runtime("reduce wave ended without committed output".into())
                })
            })
            .collect();
        // Shuffle transit is consumed; free the run's DFS files whether
        // the job succeeded or not.
        cleanup_shuffle(&shuffle_dfs);
        let outputs = collected?;
        let mut events = events.into_inner();
        sort_events(&mut events);
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        self.recorder.end_with(
            job_span,
            &config.name,
            vec![
                ("n_maps".into(), n_maps.to_string()),
                ("n_reducers".into(), n_reducers.to_string()),
            ],
            counters.snapshot(),
        );
        Ok(JobResult {
            outputs,
            counters,
            events,
            wall_ms,
            config,
        })
    }

    /// Run a map-only job (the paper's Round 1): each map task's emitted
    /// records come back in emission order, one output per split.
    pub fn run_map_only<M>(
        &self,
        config: JobConfig,
        mapper: &M,
        splits: Vec<InputSplit<M::InKey, M::InValue>>,
    ) -> Result<JobResult<M::OutKey, M::OutValue>, GesallError>
    where
        M: Mapper,
    {
        let counters = Counters::new();
        let events: Mutex<Vec<TaskEvent>> = Mutex::new(Vec::new());
        let t0 = Instant::now();
        let job_span = self
            .recorder
            .start(SpanKind::Job, &config.name, config.parent_span);
        let n_maps = splits.len();
        let outputs: TaskOutputs<M::OutKey, M::OutValue> =
            (0..n_maps).map(|_| Mutex::new(None)).collect();
        let prefs: Vec<Option<usize>> = splits.iter().map(|s| s.preferred_node).collect();

        self.run_wave(
            TaskKind::Map,
            &config,
            &counters,
            &events,
            t0,
            job_span.id,
            &prefs,
            &outputs,
            None,
            |task_id, _exec_node, bag| {
                let t_task = Instant::now();
                let split = &splits[task_id];
                bag.add(keys::MAP_INPUT_RECORDS, split.records.len() as u64);
                let mut out = Vec::new();
                {
                    let mut sink = |k, v| out.push((k, v));
                    let mut ctx = MapContext { sink: &mut sink };
                    for (k, v) in &split.records {
                        mapper.map(k, v, &mut ctx);
                    }
                    mapper.finish(&mut ctx);
                }
                bag.add(keys::MAP_OUTPUT_RECORDS, out.len() as u64);
                // No sort/spill in a map-only job: the whole body is map.
                bag.add(Phase::Map.counter_key(), t_task.elapsed().as_nanos() as u64);
                out
            },
        )?;

        let outputs = outputs
            .into_inner_vec()
            .into_iter()
            .map(|o| {
                o.ok_or_else(|| {
                    GesallError::Runtime("map wave ended without committed output".into())
                })
            })
            .collect::<Result<_, _>>()?;
        let mut events = events.into_inner();
        sort_events(&mut events);
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        self.recorder.end_with(
            job_span,
            &config.name,
            vec![("n_maps".into(), n_maps.to_string())],
            counters.snapshot(),
        );
        Ok(JobResult {
            outputs,
            counters,
            events,
            wall_ms,
            config,
        })
    }

    /// Execute one wave of tasks with per-node container slots, attempt
    /// retries, speculative backups, and node-loss recovery.
    #[allow(clippy::too_many_arguments)]
    fn run_wave<T, F>(
        &self,
        kind: TaskKind,
        config: &JobConfig,
        counters: &Counters,
        events: &Mutex<Vec<TaskEvent>>,
        t0: Instant,
        job_span: SpanId,
        prefs: &[Option<usize>],
        outputs: &[Mutex<Option<T>>],
        survives: SurvivalCheck<'_>,
        body: F,
    ) -> Result<(), GesallError>
    where
        T: Send,
        F: Fn(usize, usize, &Counters) -> T + Send + Sync,
    {
        let n_tasks = prefs.len();
        let wave_name = match kind {
            TaskKind::Map => "map-wave",
            TaskKind::Reduce => "reduce-wave",
        };
        let wave_span = self.recorder.start(SpanKind::Wave, wave_name, job_span);
        let done: Vec<AtomicBool> = (0..n_tasks).map(|_| AtomicBool::new(false)).collect();
        let state = Mutex::new(WaveState {
            pending: (0..n_tasks)
                .map(|t| PendingTask {
                    task: t,
                    not_before: None,
                })
                .collect(),
            running: Vec::new(),
            tasks: (0..n_tasks)
                .map(|t| TaskState {
                    preferred: prefs[t],
                    failures: 0,
                    next_attempt: 0,
                    backup_launched: false,
                    home: None,
                })
                .collect(),
            remaining: n_tasks,
            completed_ms: Vec::new(),
            total_commits: 0,
            fatal: None,
        });
        // Wakes idle workers when the schedule changes (commit, requeue,
        // fatal) instead of letting them busy-poll the state mutex.
        let idle = Condvar::new();
        let wave = WaveCtx {
            engine: self,
            kind,
            config,
            counters,
            events,
            t0,
            wave_span: wave_span.id,
            state: &state,
            idle: &idle,
            done: &done,
            outputs,
            survives,
        };

        // Deaths already due (threshold 0) fire before any work starts.
        if kind == TaskKind::Map {
            let fired = {
                let mut st = state.lock();
                wave.fire_due_deaths(&mut st)
            };
            wave.notify_deaths(&fired);
        }

        let (task_vcores, task_memory_mb) = match kind {
            TaskKind::Map => (config.map_vcores, config.map_memory_mb),
            TaskKind::Reduce => (config.reduce_vcores, config.reduce_memory_mb),
        };

        let scope_result = crossbeam::thread::scope(|s| {
            let mut first_live_worker = true;
            for node in 0..self.cluster.n_nodes() {
                if self.is_dead(node) {
                    continue;
                }
                let slots = self.cluster.slots_on(node, task_vcores, task_memory_mb);
                let slots = slots.max(if first_live_worker { 1 } else { 0 });
                if slots > 0 {
                    first_live_worker = false;
                }
                for _ in 0..slots {
                    let wave = &wave;
                    let body = &body;
                    s.spawn(move |_| wave.worker_loop(node, body));
                }
            }
        });
        scope_result.map_err(|_| GesallError::Runtime("task wave worker panicked".into()))?;

        let st = state.into_inner();
        self.recorder.end_with(
            wave_span,
            wave_name,
            Vec::new(),
            vec![
                ("tasks".to_string(), n_tasks as u64),
                ("commits".to_string(), st.total_commits as u64),
            ],
        );
        if let Some(fatal) = st.fatal {
            return Err(fatal);
        }
        if st.remaining > 0 {
            return Err(GesallError::NoHealthyNodes {
                pending_tasks: st.remaining,
            });
        }
        Ok(())
    }
}

fn sort_events(events: &mut [TaskEvent]) {
    events.sort_by(|a, b| {
        (a.kind == TaskKind::Reduce, a.task_id, a.attempt).cmp(&(
            b.kind == TaskKind::Reduce,
            b.task_id,
            b.attempt,
        ))
    });
}

/// Helper so `Vec<Mutex<Option<T>>>` unwraps uniformly.
trait IntoInnerVec<T> {
    fn into_inner_vec(self) -> Vec<Option<T>>;
}

impl<T> IntoInnerVec<T> for Vec<Mutex<Option<T>>> {
    fn into_inner_vec(self) -> Vec<Option<T>> {
        self.into_iter().map(|m| m.into_inner()).collect()
    }
}

struct PendingTask {
    task: usize,
    /// Earliest time the task may be re-attempted (retry backoff).
    not_before: Option<Instant>,
}

struct TaskState {
    preferred: Option<usize>,
    failures: usize,
    next_attempt: usize,
    backup_launched: bool,
    /// Node whose local disk holds the committed output (shuffle home).
    home: Option<usize>,
}

struct RunningAttempt {
    task: usize,
    attempt: usize,
    started: Instant,
    speculative: bool,
}

struct WaveState {
    pending: Vec<PendingTask>,
    running: Vec<RunningAttempt>,
    tasks: Vec<TaskState>,
    /// Tasks without a committed output.
    remaining: usize,
    /// Durations of committed attempts — the speculative baseline.
    completed_ms: Vec<f64>,
    /// Successful commits in this wave (monotone; re-runs recount).
    total_commits: usize,
    fatal: Option<GesallError>,
}

#[derive(Clone, Copy)]
struct Assignment {
    task: usize,
    attempt: usize,
    speculative: bool,
    data_local: bool,
}

enum Acquired {
    Got(Assignment),
    Idle,
    Exit,
}

/// Marker error: the job's slot lease has no free permit right now.
struct LeaseSaturated;

struct WaveCtx<'a, T> {
    engine: &'a MapReduceEngine,
    kind: TaskKind,
    config: &'a JobConfig,
    counters: &'a Counters,
    events: &'a Mutex<Vec<TaskEvent>>,
    t0: Instant,
    wave_span: SpanId,
    state: &'a Mutex<WaveState>,
    /// Notified whenever the schedule changes; see [`WaveCtx::idle_wait`].
    idle: &'a Condvar,
    done: &'a [AtomicBool],
    outputs: &'a [Mutex<Option<T>>],
    /// Probe whether a committed task's output survives a node death
    /// (DFS-transit shuffle); `None` means outputs live only on their
    /// home node.
    survives: SurvivalCheck<'a>,
}

impl<T> WaveCtx<'_, T> {
    fn now_ms(&self) -> f64 {
        self.t0.elapsed().as_secs_f64() * 1e3
    }

    fn worker_loop<F>(&self, node: usize, body: &F)
    where
        F: Fn(usize, usize, &Counters) -> T + Send + Sync,
    {
        // Delay scheduling: prefer local tasks; wait one beat before
        // stealing a remote one (or launching a backup attempt). The
        // beats are condvar waits, not sleeps: a commit or requeue
        // wakes idle workers immediately, while the timeouts remain
        // as the backstop that drives the time-based machinery
        // (retry backoff expiry, straggler detection).
        let mut allow_steal = false;
        loop {
            // The job's slot lease gates admission to *work*, not the
            // worker threads themselves: a saturated lease parks the
            // worker until a running attempt releases its permit or the
            // grant grows. Shrinking the grant therefore reclaims slots
            // preemption-free — in-flight attempts finish, new ones
            // simply don't start.
            let permit = match self.lease_permit() {
                Ok(p) => p,
                Err(LeaseSaturated) => {
                    if self.wave_over(node) {
                        break;
                    }
                    self.idle_wait(Duration::from_micros(500));
                    allow_steal = true;
                    continue;
                }
            };
            match self.acquire(node, allow_steal) {
                Acquired::Exit => break,
                Acquired::Got(a) => {
                    self.run_attempt(node, a, body);
                    allow_steal = false;
                }
                Acquired::Idle => {
                    // An idle worker holds no permit — a parked thread
                    // is not an occupied container slot.
                    drop(permit);
                    self.idle_wait(Duration::from_micros(if allow_steal { 200 } else { 500 }));
                    allow_steal = true;
                }
            }
        }
    }

    /// Take a permit on the job's slot lease (`Ok(None)` for unleased
    /// jobs, which may use every spawned worker).
    fn lease_permit(&self) -> Result<Option<LeasePermit>, LeaseSaturated> {
        match &self.config.slot_lease {
            None => Ok(None),
            Some(lease) => lease.try_acquire().map(Some).ok_or(LeaseSaturated),
        }
    }

    /// Whether this worker should exit instead of waiting for a permit.
    fn wave_over(&self, node: usize) -> bool {
        let st = self.state.lock();
        st.fatal.is_some() || st.remaining == 0 || self.engine.is_dead(node)
    }

    /// Park on the schedule-change condvar for at most `timeout`,
    /// counting how the worker came back: a notification
    /// ([`keys::SCHED_WAKEUPS`]) means the schedule changed while we
    /// slept; a timeout ([`keys::SCHED_IDLE_TIMEOUTS`]) is the old
    /// busy-poll beat, now visible in the counters.
    fn idle_wait(&self, timeout: Duration) {
        let mut st = self.state.lock();
        // Re-check under the lock — a notify between the failed acquire
        // and this wait must not be lost.
        if st.fatal.is_some() || st.remaining == 0 {
            return;
        }
        if self.idle.wait_for(&mut st, timeout).timed_out() {
            self.counters.add(keys::SCHED_IDLE_TIMEOUTS, 1);
        } else {
            self.counters.add(keys::SCHED_WAKEUPS, 1);
        }
    }

    /// Pick work for `node`. Local pending tasks first; with
    /// `allow_steal`, remote pending tasks, then speculative backups.
    fn acquire(&self, node: usize, allow_steal: bool) -> Acquired {
        let mut st = self.state.lock();
        if st.fatal.is_some() || st.remaining == 0 || self.engine.is_dead(node) {
            return Acquired::Exit;
        }
        let now = Instant::now();
        let ready = |p: &PendingTask| p.not_before.is_none_or(|nb| nb <= now);

        let local_pos = st.pending.iter().position(|p| {
            ready(p)
                && (st.tasks[p.task].preferred == Some(node) || st.tasks[p.task].preferred.is_none())
        });
        let pos = match local_pos {
            Some(p) => Some(p),
            None if allow_steal => st.pending.iter().position(ready),
            None => None,
        };
        if let Some(pos) = pos {
            let task = st.pending.remove(pos).task;
            let ts = &mut st.tasks[task];
            let attempt = ts.next_attempt;
            ts.next_attempt += 1;
            let data_local = ts.preferred == Some(node) || ts.preferred.is_none();
            st.running.push(RunningAttempt {
                task,
                attempt,
                started: now,
                speculative: false,
            });
            return Acquired::Got(Assignment {
                task,
                attempt,
                speculative: false,
                data_local,
            });
        }

        if allow_steal && self.config.speculative && !st.completed_ms.is_empty() {
            let mut sorted = st.completed_ms.clone();
            sorted.sort_by(f64::total_cmp);
            let median = sorted[sorted.len() / 2];
            let threshold = (self.config.speculative_multiplier * median)
                .max(self.config.speculative_min_runtime_ms);
            let straggler = st.running.iter().position(|r| {
                !r.speculative
                    && !self.done[r.task].load(Ordering::SeqCst)
                    && !st.tasks[r.task].backup_launched
                    && r.started.elapsed().as_secs_f64() * 1e3 > threshold
            });
            if let Some(pos) = straggler {
                let task = st.running[pos].task;
                let ts = &mut st.tasks[task];
                ts.backup_launched = true;
                let attempt = ts.next_attempt;
                ts.next_attempt += 1;
                let data_local = ts.preferred == Some(node) || ts.preferred.is_none();
                st.running.push(RunningAttempt {
                    task,
                    attempt,
                    started: now,
                    speculative: true,
                });
                self.counters.add(keys::SPECULATIVE_LAUNCHED, 1);
                return Acquired::Got(Assignment {
                    task,
                    attempt,
                    speculative: true,
                    data_local,
                });
            }
        }
        Acquired::Idle
    }

    fn run_attempt<F>(&self, node: usize, a: Assignment, body: &F)
    where
        F: Fn(usize, usize, &Counters) -> T + Send + Sync,
    {
        let start_ms = self.now_ms();

        // Injected straggler: sleep in small beats, bailing out early if
        // the task is won by another attempt or this node dies (the
        // cancellation path for speculative losers).
        if let Some(ms) = self
            .engine
            .fault_plan
            .slowdown_ms(self.kind, a.task, a.attempt)
        {
            let deadline = Instant::now() + Duration::from_millis(ms);
            while Instant::now() < deadline {
                if self.done[a.task].load(Ordering::SeqCst) || self.engine.is_dead(node) {
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        }

        let bag = Counters::new();
        let plan = &self.engine.fault_plan;
        let result = catch_unwind(AssertUnwindSafe(|| {
            if plan.should_panic(self.kind, a.task, a.attempt) {
                panic!("{}", FaultPlan::panic_message(self.kind, a.task, a.attempt));
            }
            body(a.task, node, &bag)
        }));

        let end_ms = self.now_ms();
        let mut st = self.state.lock();
        let started = st
            .running
            .iter()
            .position(|r| r.task == a.task && r.attempt == a.attempt)
            .map(|pos| st.running.remove(pos).started);
        if st.fatal.is_some() {
            return; // Job already failed; drop silently.
        }
        let event = |outcome: AttemptOutcome, error: Option<String>| TaskEvent {
            kind: self.kind,
            task_id: a.task,
            attempt: a.attempt,
            speculative: a.speculative,
            outcome,
            error,
            node,
            start_ms,
            end_ms,
            data_local: a.data_local,
        };
        // Every attempt leaves both a TaskEvent (the determinism
        // contract) and, when tracing is on, a TaskAttempt span.
        let log_event = |outcome: AttemptOutcome, error: Option<String>| {
            let e = event(outcome, error);
            self.record_attempt_span(&e, &bag);
            self.events.lock().push(e);
        };

        match result {
            Ok(value) => {
                if self.done[a.task].load(Ordering::SeqCst) {
                    // Lost the race to another attempt of the same task.
                    if st.tasks[a.task].backup_launched {
                        self.counters.add(keys::SPECULATIVE_WASTED, 1);
                    }
                    log_event(AttemptOutcome::Killed, None);
                    return;
                }
                if self.engine.is_dead(node) {
                    // The node died while this attempt ran; its local
                    // output is gone. Re-queue the task.
                    log_event(AttemptOutcome::Killed, None);
                    st.pending.push(PendingTask {
                        task: a.task,
                        not_before: None,
                    });
                    drop(st);
                    self.idle.notify_all();
                    return;
                }
                *self.outputs[a.task].lock() = Some(value);
                self.done[a.task].store(true, Ordering::SeqCst);
                st.tasks[a.task].home = Some(node);
                st.remaining -= 1;
                if let Some(started) = started {
                    st.completed_ms
                        .push(started.elapsed().as_secs_f64() * 1e3);
                }
                st.total_commits += 1;
                self.counters.merge(&bag);
                log_event(AttemptOutcome::Succeeded, None);
                let fired = if self.kind == TaskKind::Map {
                    self.fire_due_deaths(&mut st)
                } else {
                    Vec::new()
                };
                drop(st);
                // Wake idlers: remaining may have hit zero, a death may
                // have re-queued tasks, and a fresh completion time may
                // arm the straggler detector.
                self.idle.notify_all();
                self.notify_deaths(&fired);
            }
            Err(payload) => {
                let msg = panic_message(payload.as_ref());
                if self.done[a.task].load(Ordering::SeqCst) {
                    // The task already succeeded elsewhere; this failure
                    // is moot and must not count against the task.
                    log_event(AttemptOutcome::Failed, Some(msg));
                    return;
                }
                self.counters.add(keys::FAILED_ATTEMPTS, 1);
                st.tasks[a.task].failures += 1;
                let failures = st.tasks[a.task].failures;
                log_event(AttemptOutcome::Failed, Some(msg.clone()));
                if failures >= self.config.max_attempts {
                    st.fatal = Some(GesallError::TaskFailed {
                        kind: self.kind,
                        task_id: a.task,
                        attempts: failures,
                        last_error: msg,
                    });
                } else {
                    let backoff = self.config.retry_backoff_ms
                        * (1u64 << (failures - 1).min(16)) as f64;
                    st.pending.push(PendingTask {
                        task: a.task,
                        not_before: Some(Instant::now() + Duration::from_secs_f64(backoff / 1e3)),
                    });
                }
                drop(st);
                // Wake idlers: either everyone must exit on the fatal, or
                // a retry just became schedulable (its backoff expiry is
                // covered by the wait timeout).
                self.idle.notify_all();
            }
        }
    }

    /// Emit one TaskAttempt span mirroring `e`, parented under this
    /// wave's span, with the attempt's counter bag attached as metrics.
    /// One branch on a disabled recorder, nothing else.
    fn record_attempt_span(&self, e: &TaskEvent, bag: &Counters) {
        let rec = &self.engine.recorder;
        if !rec.is_enabled() {
            return;
        }
        // Event times are relative to the job's t0; shift them into the
        // recorder's epoch so spans from many jobs share one timeline.
        let offset = rec.now_ms() - self.now_ms();
        let kind = match e.kind {
            TaskKind::Map => "map",
            TaskKind::Reduce => "reduce",
        };
        rec.registry()
            .histogram(&format!("attempt.{kind}.ms"))
            .record((e.end_ms - e.start_ms).max(0.0).round() as u64);
        let mut meta = vec![
            ("node".to_string(), e.node.to_string()),
            ("outcome".to_string(), format!("{:?}", e.outcome)),
            ("speculative".to_string(), e.speculative.to_string()),
            ("data_local".to_string(), e.data_local.to_string()),
        ];
        if let Some(err) = &e.error {
            meta.push(("error".to_string(), err.clone()));
        }
        rec.record(Span {
            id: rec.fresh_id(),
            parent: self.wave_span,
            kind: SpanKind::TaskAttempt,
            name: format!("{kind}-{}.{}", e.task_id, e.attempt),
            start_ms: e.start_ms + offset,
            end_ms: e.end_ms + offset,
            meta,
            metrics: bag.snapshot(),
        });
    }

    /// Fire scheduled deaths whose map-commit threshold has been reached.
    /// Runs under the wave lock: marks the node dead, evicts committed
    /// map outputs homed on it, and re-queues those tasks. Returns the
    /// nodes that died so the caller can notify the hook lock-free.
    fn fire_due_deaths(&self, st: &mut WaveState) -> Vec<usize> {
        let mut fired = Vec::new();
        let mut pending_deaths = self.engine.pending_deaths.lock();
        let mut i = 0;
        while i < pending_deaths.len() {
            if pending_deaths[i].after_completed_maps <= st.total_commits {
                let death = pending_deaths.remove(i);
                self.engine.dead_nodes.lock().insert(death.node);
                fired.push(death.node);
                // Completed map outputs on the dead node's disk are gone:
                // evict and re-run, as Hadoop re-runs map tasks whose
                // shuffle output was on a lost slave. With DFS-transit
                // shuffle the output may survive on a replica — probe
                // every committed task (a later death can take the last
                // replica of a task whose home died earlier), keep the
                // survivors, and only re-run the rest.
                for task in 0..st.tasks.len() {
                    if !self.done[task].load(Ordering::SeqCst) {
                        continue;
                    }
                    let homed_here = st.tasks[task].home == Some(death.node);
                    let survives_death = match self.survives {
                        Some(check) => check(task),
                        // In-memory shuffle: output lives only on its home.
                        None => !homed_here,
                    };
                    if survives_death {
                        if homed_here {
                            self.counters.add(keys::MAPS_RESHIPPED_FROM_DFS, 1);
                        }
                        continue;
                    }
                    *self.outputs[task].lock() = None;
                    self.done[task].store(false, Ordering::SeqCst);
                    st.tasks[task].home = None;
                    st.tasks[task].backup_launched = false;
                    st.remaining += 1;
                    st.pending.push(PendingTask {
                        task,
                        not_before: None,
                    });
                    self.counters.add(keys::MAPS_RERUN_ON_NODE_LOSS, 1);
                }
            } else {
                i += 1;
            }
        }
        fired
    }

    fn notify_deaths(&self, nodes: &[usize]) {
        if let Some(hook) = &self.engine.node_death_hook {
            for &node in nodes {
                hook(node);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::HashPartitioner;

    /// Word-count: the canonical smoke test.
    struct Tokenize;
    impl Mapper for Tokenize {
        type InKey = u64;
        type InValue = String;
        type OutKey = String;
        type OutValue = u64;
        fn map(&self, _k: &u64, line: &String, ctx: &mut MapContext<'_, String, u64>) {
            for w in line.split_whitespace() {
                ctx.emit(w.to_string(), 1);
            }
        }
    }
    struct Sum;
    impl Reducer for Sum {
        type InKey = String;
        type InValue = u64;
        type OutKey = String;
        type OutValue = u64;
        fn reduce(&self, k: String, vs: Vec<u64>, ctx: &mut ReduceContext<'_, String, u64>) {
            ctx.emit(k, vs.iter().sum());
        }
    }

    fn word_splits(n_splits: usize, lines_per: usize) -> Vec<InputSplit<u64, String>> {
        (0..n_splits)
            .map(|s| {
                let records = (0..lines_per)
                    .map(|i| {
                        (
                            i as u64,
                            format!("alpha beta w{} alpha", (s * lines_per + i) % 13),
                        )
                    })
                    .collect();
                InputSplit::new(format!("split-{s}"), records)
            })
            .collect()
    }

    #[test]
    fn word_count_end_to_end() {
        let engine = MapReduceEngine::new(ClusterResources::uniform(3, 2, 4096));
        let cfg = JobConfig {
            n_reducers: 4,
            io_sort_bytes: 512, // force spills
            map_memory_mb: 1024,
            reduce_memory_mb: 1024,
            ..JobConfig::default()
        };
        let res = engine
            .run_job(cfg, &Tokenize, &Sum, &HashPartitioner, word_splits(6, 50))
            .unwrap();
        let mut all: Vec<(String, u64)> = res.outputs.into_iter().flatten().collect();
        all.sort();
        let alpha = all.iter().find(|(k, _)| k == "alpha").unwrap();
        assert_eq!(alpha.1, 2 * 6 * 50);
        let beta = all.iter().find(|(k, _)| k == "beta").unwrap();
        assert_eq!(beta.1, 6 * 50);
        // 13 w-words + alpha + beta.
        assert_eq!(all.len(), 15);
        // Counters sane.
        assert_eq!(res.counters.get(keys::MAP_INPUT_RECORDS), 300);
        assert_eq!(res.counters.get(keys::MAP_OUTPUT_RECORDS), 1200);
        assert!(res.counters.get(keys::MAP_SPILLS) >= 6);
        assert_eq!(res.counters.get(keys::SHUFFLE_RECORDS), 1200);
        assert_eq!(res.counters.get(keys::REDUCE_OUTPUT_RECORDS), 15);
        // Events: 6 maps + 4 reduces, all first-attempt successes in a
        // fault-free run.
        assert_eq!(
            res.events.iter().filter(|e| e.kind == TaskKind::Map).count(),
            6
        );
        assert_eq!(
            res.events
                .iter()
                .filter(|e| e.kind == TaskKind::Reduce)
                .count(),
            4
        );
        assert!(res
            .events
            .iter()
            .all(|e| e.outcome == AttemptOutcome::Succeeded && e.attempt == 0));
        assert_eq!(res.counters.get(keys::FAILED_ATTEMPTS), 0);
    }

    #[test]
    fn deterministic_across_runs_and_cluster_shapes() {
        let splits = || word_splits(5, 40);
        let run = |nodes: usize, slots: usize, reducers: usize| {
            let engine = MapReduceEngine::new(ClusterResources::uniform(nodes, slots, 8192));
            let cfg = JobConfig {
                n_reducers: reducers,
                io_sort_bytes: 1024,
                ..JobConfig::default()
            };
            let mut res = engine
                .run_job(cfg, &Tokenize, &Sum, &HashPartitioner, splits())
                .unwrap()
                .outputs;
            for o in &mut res {
                o.sort();
            }
            res
        };
        let a = run(1, 1, 3);
        let b = run(4, 4, 3);
        assert_eq!(a, b, "output must not depend on physical parallelism");
    }

    #[test]
    fn map_only_preserves_order_per_split() {
        struct Identity;
        impl Mapper for Identity {
            type InKey = u64;
            type InValue = String;
            type OutKey = u64;
            type OutValue = String;
            fn map(&self, k: &u64, v: &String, ctx: &mut MapContext<'_, u64, String>) {
                ctx.emit(*k, v.clone());
            }
        }
        let engine = MapReduceEngine::local(4);
        let splits = vec![
            InputSplit::new("a", vec![(3u64, "x".to_string()), (1, "y".into())]),
            InputSplit::new("b", vec![(9u64, "z".to_string())]),
        ];
        let res = engine
            .run_map_only(JobConfig::default(), &Identity, splits)
            .unwrap();
        assert_eq!(res.outputs.len(), 2);
        assert_eq!(res.outputs[0], vec![(3, "x".to_string()), (1, "y".into())]);
        assert_eq!(res.outputs[1], vec![(9, "z".to_string())]);
    }

    #[test]
    fn locality_preference_honored_when_slots_free() {
        let engine = MapReduceEngine::new(ClusterResources::uniform(4, 2, 4096));
        struct Nop;
        impl Mapper for Nop {
            type InKey = u64;
            type InValue = u64;
            type OutKey = u64;
            type OutValue = u64;
            fn map(&self, k: &u64, v: &u64, ctx: &mut MapContext<'_, u64, u64>) {
                ctx.emit(*k, *v);
            }
        }
        let splits: Vec<InputSplit<u64, u64>> = (0..4)
            .map(|i| InputSplit::new(format!("s{i}"), vec![(i as u64, 0)]).at_node(i))
            .collect();
        let res = engine
            .run_map_only(JobConfig::default(), &Nop, splits)
            .unwrap();
        let local = res.events.iter().filter(|e| e.data_local).count();
        assert!(
            local >= 3,
            "most tasks should run data-local: {:?}",
            res.events
        );
    }

    #[test]
    fn single_reducer_gets_everything_sorted_by_key() {
        struct KeyEcho;
        impl Mapper for KeyEcho {
            type InKey = u64;
            type InValue = u64;
            type OutKey = u64;
            type OutValue = u64;
            fn map(&self, k: &u64, v: &u64, ctx: &mut MapContext<'_, u64, u64>) {
                ctx.emit(*k, *v);
            }
        }
        struct CollectOrdered;
        impl Reducer for CollectOrdered {
            type InKey = u64;
            type InValue = u64;
            type OutKey = u64;
            type OutValue = u64;
            fn reduce(&self, k: u64, vs: Vec<u64>, ctx: &mut ReduceContext<'_, u64, u64>) {
                for v in vs {
                    ctx.emit(k, v);
                }
            }
        }
        let engine = MapReduceEngine::local(3);
        let splits: Vec<InputSplit<u64, u64>> = (0..3)
            .map(|s| {
                InputSplit::new(
                    format!("s{s}"),
                    (0..100u64).rev().map(|i| (i * 7 % 50, i)).collect(),
                )
            })
            .collect();
        let cfg = JobConfig {
            n_reducers: 1,
            ..JobConfig::default()
        };
        let res = engine
            .run_job(cfg, &KeyEcho, &CollectOrdered, &HashPartitioner, splits)
            .unwrap();
        let keys: Vec<u64> = res.outputs[0].iter().map(|(k, _)| *k).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "reduce input must arrive key-sorted");
        assert_eq!(keys.len(), 300);
    }

    #[test]
    fn async_spill_outputs_match_sync() {
        // Flipping async_spill must not change job output — the drain
        // barrier keeps the merged segments byte-identical — but the
        // async run must actually route spills through the encoder pool.
        let run = |async_spill: bool| {
            let engine = MapReduceEngine::new(ClusterResources::uniform(2, 2, 4096));
            let cfg = JobConfig {
                n_reducers: 3,
                io_sort_bytes: 512, // force many spills per task
                async_spill,
                ..JobConfig::default()
            };
            let res = engine
                .run_job(cfg, &Tokenize, &Sum, &HashPartitioner, word_splits(5, 40))
                .unwrap();
            if async_spill {
                assert!(
                    res.counters.get(keys::SPILL_POOL_JOBS) > 0,
                    "async run must submit spills to the pool"
                );
                assert_eq!(
                    res.counters.get(keys::SPILL_POOL_JOBS),
                    res.counters.get(keys::MAP_SPILLS)
                );
                assert!(res.counters.get(keys::SPILL_POOL_BUSY_NANOS) > 0);
            } else {
                assert_eq!(res.counters.get(keys::SPILL_POOL_JOBS), 0);
            }
            let mut outs = res.outputs;
            for o in &mut outs {
                o.sort();
            }
            outs
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn idle_workers_park_on_condvar_not_busy_poll() {
        // One deliberately slow map task on a cluster with spare slots:
        // the idle workers must ride the condvar (counted wakeups or
        // timed-out beats), and the straggler machinery still works on
        // top of the timeouts.
        let engine = MapReduceEngine::new(ClusterResources::uniform(1, 4, 8192))
            .with_fault_plan(FaultPlan::seeded(7).slow_down(TaskKind::Map, 0, 0, 30));
        let cfg = JobConfig {
            n_reducers: 1,
            ..JobConfig::default()
        };
        let res = engine
            .run_job(cfg, &Tokenize, &Sum, &HashPartitioner, word_splits(3, 10))
            .unwrap();
        let beats = res.counters.get(keys::SCHED_IDLE_TIMEOUTS)
            + res.counters.get(keys::SCHED_WAKEUPS);
        assert!(
            beats > 0,
            "idle workers should have parked at least once while the slow task ran"
        );
    }

    #[test]
    fn dfs_transit_shuffle_matches_memory_path_and_cleans_up() {
        use gesall_dfs::DfsConfig;
        let run = |dfs: Option<Dfs>, via_dfs: bool| {
            let engine = MapReduceEngine::new(ClusterResources::uniform(3, 2, 4096));
            if let Some(dfs) = dfs {
                engine.set_shuffle_dfs(dfs);
            }
            let cfg = JobConfig {
                n_reducers: 4,
                io_sort_bytes: 512,
                shuffle_via_dfs: via_dfs,
                ..JobConfig::default()
            };
            let res = engine
                .run_job(cfg, &Tokenize, &Sum, &HashPartitioner, word_splits(6, 50))
                .unwrap();
            let mut outs = res.outputs;
            for o in &mut outs {
                o.sort();
            }
            (outs, res.counters)
        };
        let dfs = Dfs::new(DfsConfig {
            n_nodes: 3,
            block_size: 1 << 20,
            replication: 2,
            ..DfsConfig::default()
        });
        let (dfs_outs, dfs_counters) = run(Some(dfs.clone()), true);
        let (mem_outs, mem_counters) = run(None, false);
        assert_eq!(dfs_outs, mem_outs, "transit layer must not change results");
        // DFS transit carries every shuffled byte; nothing is handed
        // over as an in-memory segment reference, and vice versa.
        assert!(dfs_counters.get(keys::SHUFFLE_BYTES_DFS) > 0);
        assert_eq!(dfs_counters.get(keys::SHUFFLE_BYTES_MEMORY), 0);
        assert!(mem_counters.get(keys::SHUFFLE_BYTES_MEMORY) > 0);
        assert_eq!(mem_counters.get(keys::SHUFFLE_BYTES_DFS), 0);
        assert_eq!(
            dfs_counters.get(keys::SHUFFLE_BYTES_DFS),
            mem_counters.get(keys::SHUFFLE_BYTES_MEMORY),
            "both paths move the same wire bytes"
        );
        // The run's shuffle files are swept once reducers consumed them.
        assert!(
            dfs.list("/job/").is_empty(),
            "shuffle transit files must be cleaned up: {:?}",
            dfs.list("/job/")
        );
    }

    #[test]
    fn shuffle_via_dfs_flag_off_keeps_memory_path_despite_attached_dfs() {
        use gesall_dfs::DfsConfig;
        let dfs = Dfs::new(DfsConfig {
            n_nodes: 2,
            block_size: 1 << 20,
            replication: 1,
            ..DfsConfig::default()
        });
        let engine =
            MapReduceEngine::new(ClusterResources::uniform(2, 2, 4096)).with_shuffle_dfs(dfs);
        let cfg = JobConfig {
            n_reducers: 2,
            shuffle_via_dfs: false,
            ..JobConfig::default()
        };
        let res = engine
            .run_job(cfg, &Tokenize, &Sum, &HashPartitioner, word_splits(3, 20))
            .unwrap();
        assert_eq!(res.counters.get(keys::SHUFFLE_BYTES_DFS), 0);
        assert!(res.counters.get(keys::SHUFFLE_BYTES_MEMORY) > 0);
    }

    #[test]
    fn empty_job() {
        let engine = MapReduceEngine::local(2);
        let res = engine
            .run_job(
                JobConfig::default(),
                &Tokenize,
                &Sum,
                &HashPartitioner,
                Vec::new(),
            )
            .unwrap();
        assert_eq!(res.outputs.len(), 1);
        assert!(res.outputs[0].is_empty());
    }
}
