//! Map-output shipping: persisting merged map outputs into DFS and
//! fetching them back by reference for the shuffle.
//!
//! A map task's segments serialize into ONE DFS file: an index header
//! (`[n u64]` then `n` end offsets, relative to the frame area) followed
//! by `n` codec-tagged frames ([`write_frame`](crate::shuffle::write_frame)).
//! The reduce-side fetch resolves its partition through the index and
//! reads ONLY that frame's byte range
//! ([`Dfs::read_file_range_shared`]): for a range inside one block the
//! payload is a zero-copy window of the stored block — mmap'd when the
//! DFS persists blocks (`DfsConfig::block_store_dir`) — so a compressed
//! segment travels disk → shuffle → reduce merge as a refcount bump and
//! is decoded exactly once, and a reducer never materializes the other
//! R−1 partitions of a multi-block map output. The only memcpy on this
//! path is the store-side frame write, counted under `mem.bytes.copied`.

use crate::counters::{keys, Counters};
use crate::shuffle::{read_frame, write_frame, Segment, FRAME_HEADER_BYTES};
use gesall_dfs::{Dfs, DfsError, ReadAffinity};
use gesall_formats::wire::{put_u64, Cursor};
use gesall_formats::{Codec, FormatError, SharedBytes};
use std::fmt;

/// Errors on the map-output shipping path.
#[derive(Debug)]
pub enum ShipError {
    /// The DFS refused the read or write.
    Dfs(DfsError),
    /// A stored frame was corrupt or truncated.
    Format(FormatError),
}

impl ShipError {
    /// Is this failure worth re-attempting? Transient DFS errors
    /// (flaky reads, deadline expiries) are; corrupt-beyond-repair
    /// blocks, missing files, and malformed frames are not — retrying
    /// those only delays the attempt failure that triggers a re-run.
    pub fn is_retryable(&self) -> bool {
        match self {
            ShipError::Dfs(e) => e.is_retryable(),
            ShipError::Format(_) => false,
        }
    }
}

impl fmt::Display for ShipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShipError::Dfs(e) => write!(f, "shipping: {e}"),
            ShipError::Format(e) => write!(f, "shipping: {e}"),
        }
    }
}

impl std::error::Error for ShipError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShipError::Dfs(e) => Some(e),
            ShipError::Format(e) => Some(e),
        }
    }
}

impl From<DfsError> for ShipError {
    fn from(e: DfsError) -> ShipError {
        ShipError::Dfs(e)
    }
}

impl From<FormatError> for ShipError {
    fn from(e: FormatError) -> ShipError {
        ShipError::Format(e)
    }
}

/// Canonical DFS path of a map task's shuffle output.
pub fn map_output_path(job: &str, map_task: usize) -> String {
    format!("{job}/shuffle/map-{map_task:05}.segs")
}

/// Persist a map task's merged segments (one per reduce partition) as a
/// single DFS file: `[n u64]` and `n` frame-end offsets (relative to
/// the frame area), then the `n` frames. The frame write is the one
/// payload memcpy of the shipping path — the deliberate durability copy
/// of DFS transit, counted under `shuffle.ship.bytes.copied` (not the
/// zero-copy gauge `mem.bytes.copied`); compressed payloads are written
/// as-is, never re-encoded. Blocks are placed by `policy` — the engine pins a map
/// output to its mapper's node so locality (and node-loss semantics)
/// match the in-memory shuffle it replaces.
pub fn store_map_output_with_policy(
    dfs: &Dfs,
    path: &str,
    segments: &[Segment],
    policy: &dyn gesall_dfs::BlockPlacementPolicy,
    counters: &Counters,
) -> Result<(), ShipError> {
    let total: usize = segments
        .iter()
        .map(|s| FRAME_HEADER_BYTES + s.data.len())
        .sum();
    let header = 8 * (1 + segments.len());
    let mut out = Vec::with_capacity(header + total);
    put_u64(&mut out, segments.len() as u64);
    let mut end = 0u64;
    for s in segments {
        end += (FRAME_HEADER_BYTES + s.data.len()) as u64;
        put_u64(&mut out, end);
    }
    for s in segments {
        write_frame(s, &mut out);
        counters.add(keys::SHUFFLE_SHIP_BYTES_COPIED, s.data.len() as u64);
    }
    dfs.write_shared_with_policy(path, SharedBytes::from_vec(out), policy)?;
    Ok(())
}

/// [`store_map_output_with_policy`] with the DFS's default placement.
pub fn store_map_output(
    dfs: &Dfs,
    path: &str,
    segments: &[Segment],
    counters: &Counters,
) -> Result<(), ShipError> {
    store_map_output_with_policy(dfs, path, segments, &gesall_dfs::DefaultPlacement, counters)
}

/// Decode the index header of a stored map output: frame count and the
/// absolute byte range `[start, end)` of each frame within the file.
/// Index reads carry the same affinity hint as the frame read and fold
/// into the same local/remote tally.
fn read_index(
    dfs: &Dfs,
    path: &str,
    affinity: ReadAffinity,
    tally: &mut (u64, u64),
) -> Result<Vec<(usize, usize)>, ShipError> {
    let head = dfs.read_file_range_shared_at(path, 0, 8, affinity)?;
    tally.0 += head.local_bytes;
    tally.1 += head.remote_bytes;
    let n = Cursor::new(&head.bytes[..]).get_u64()? as usize;
    let idx = dfs.read_file_range_shared_at(path, 8, 8 * n, affinity)?;
    tally.0 += idx.local_bytes;
    tally.1 += idx.remote_bytes;
    let mut cur = Cursor::new(&idx.bytes[..]);
    let base = 8 * (1 + n);
    let mut ranges = Vec::with_capacity(n);
    let mut start = base;
    for _ in 0..n {
        let end = base + cur.get_u64()? as usize;
        ranges.push((start, end));
        start = end;
    }
    Ok(ranges)
}

/// Fetch every segment of a stored map output. Payloads are zero-copy
/// windows of the DFS block — mmap-backed when the store persists
/// blocks — and keep their codec tags, so compressed segments stay
/// compressed until the reduce-side merge decodes them.
pub fn fetch_map_output(dfs: &Dfs, path: &str) -> Result<Vec<Segment>, ShipError> {
    let bytes = dfs.read_file_shared(path)?;
    let buf: &[u8] = &bytes;
    let n = Cursor::new(buf).get_u64()? as usize;
    let mut cur = Cursor::new(&buf[8..]);
    let base = 8 * (1 + n);
    let mut offset = base;
    let mut segments = Vec::with_capacity(n);
    for _ in 0..n {
        let indexed_end = base + cur.get_u64()? as usize;
        let (seg, next) = read_frame(&bytes, offset)?;
        if next != indexed_end {
            return Err(FormatError::Bam(format!(
                "frame ends at {next} but index says {indexed_end}"
            ))
            .into());
        }
        segments.push(seg);
        offset = next;
    }
    if offset != buf.len() {
        return Err(FormatError::Bam(format!(
            "{} trailing bytes after {n} segment frames",
            buf.len() - offset
        ))
        .into());
    }
    Ok(segments)
}

/// Fetch just partition `r` of a stored map output — what one reducer
/// pulls from one map task. The index header resolves the frame's byte
/// range and only that range is read: inside one block this is a
/// zero-copy mapped window, and the other R−1 partitions are never
/// touched.
pub fn fetch_partition(dfs: &Dfs, path: &str, r: usize) -> Result<Segment, ShipError> {
    fetch_partition_at(dfs, path, r, ReadAffinity::NONE, &Counters::new())
}

/// [`fetch_partition`] with a [`ReadAffinity`] hint: every read on the
/// fetch (index header and partition frame) prefers the replica on the
/// reducer's own node, and the bytes served are split onto
/// [`keys::SHUFFLE_FETCH_BYTES_LOCAL`] /
/// [`keys::SHUFFLE_FETCH_BYTES_REMOTE`] by whether the serving replica
/// was that node — the locality half of the shuffle byte matrix.
pub fn fetch_partition_at(
    dfs: &Dfs,
    path: &str,
    r: usize,
    affinity: ReadAffinity,
    counters: &Counters,
) -> Result<Segment, ShipError> {
    let mut tally = (0u64, 0u64);
    let ranges = read_index(dfs, path, affinity, &mut tally)?;
    let fetched = (|| -> Result<Segment, ShipError> {
        let Some(&(start, end)) = ranges.get(r) else {
            return Err(FormatError::Bam(format!(
                "partition {r} out of range: map output has {} frames",
                ranges.len()
            ))
            .into());
        };
        let window = dfs.read_file_range_shared_at(path, start, end - start, affinity)?;
        tally.0 += window.local_bytes;
        tally.1 += window.remote_bytes;
        let (seg, consumed) = read_frame(&window.bytes, 0)?;
        if consumed != window.bytes.len() {
            return Err(FormatError::Bam(format!(
                "partition {r}: frame consumed {consumed} of {} indexed bytes",
                window.bytes.len()
            ))
            .into());
        }
        Ok(seg)
    })();
    // Bytes moved are charged even when the fetch then fails to frame —
    // the reads happened.
    counters.add(keys::SHUFFLE_FETCH_BYTES_LOCAL, tally.0);
    counters.add(keys::SHUFFLE_FETCH_BYTES_REMOTE, tally.1);
    fetched
}

/// Bring a fetched segment to the codec the consumer speaks. When the
/// codecs already match this is a pure refcount bump (`same_backing`
/// holds); a mismatch transcodes the payload, counting the copies under
/// `mem.bytes.copied`.
pub fn adapt_codec(seg: &Segment, want: Codec, counters: &Counters) -> Result<Segment, ShipError> {
    if seg.codec == want {
        return Ok(seg.clone());
    }
    // Registry dispatch both ways — decode under the segment's codec,
    // re-encode under `want` — so any pair of registered codecs
    // transcodes without this function enumerating them.
    let raw: std::borrow::Cow<'_, [u8]> = if seg.codec.is_compressed() {
        let v = seg.codec.decode(&seg.data)?;
        counters.add(keys::BYTES_COPIED, v.len() as u64);
        std::borrow::Cow::Owned(v)
    } else {
        std::borrow::Cow::Borrowed(&seg.data)
    };
    let data = if want.is_compressed() {
        let mut data = Vec::new();
        want.encode_append(&raw, &mut data);
        counters.add(keys::BYTES_COPIED, (raw.len() + data.len()) as u64);
        data
    } else {
        // `raw` is Owned here: a raw source with `want == Raw` returned
        // early above, so reaching this arm means the source decoded.
        raw.into_owned()
    };
    Ok(Segment {
        data: SharedBytes::from_vec(data),
        raw_len: seg.raw_len,
        records: seg.records,
        codec: want,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shuffle::CodecPolicy;
    use gesall_dfs::DfsConfig;

    fn segments() -> Vec<Segment> {
        vec![
            Segment::from_pairs(&[(1u64, 10u64), (2, 20)], false),
            Segment::from_pairs_with(
                &(0..400u64).map(|i| (i % 13, i)).collect::<Vec<_>>(),
                CodecPolicy::new(true, 16),
            ),
            Segment::empty(),
        ]
    }

    fn dfs(block_store: Option<std::path::PathBuf>) -> Dfs {
        Dfs::new(DfsConfig {
            n_nodes: 3,
            block_size: 1 << 20,
            replication: 2,
            block_store_dir: block_store,
            ..DfsConfig::default()
        })
    }

    #[test]
    fn store_and_fetch_roundtrip_by_reference() {
        let dfs = dfs(None);
        let counters = Counters::new();
        let segs = segments();
        assert!(segs[1].is_compressed());
        store_map_output(&dfs, "job/shuffle/map-00000.segs", &segs, &counters).unwrap();
        let fetched = fetch_map_output(&dfs, "job/shuffle/map-00000.segs").unwrap();
        assert_eq!(fetched.len(), 3);
        for (orig, got) in segs.iter().zip(&fetched) {
            assert_eq!(orig.codec, got.codec);
            assert_eq!(orig.records, got.records);
            assert_eq!(orig.raw_len, got.raw_len);
            assert_eq!(&orig.data[..], &got.data[..]);
        }
        // Every fetched payload windows the SAME block: the compressed
        // segment travelled by reference, not by copy.
        assert!(fetched[0].data.same_backing(&fetched[1].data));
        let p1 = fetch_partition(&dfs, "job/shuffle/map-00000.segs", 1).unwrap();
        assert!(p1.data.same_backing(&fetched[1].data));
        assert_eq!(p1.to_pairs::<u64, u64>(), segs[1].to_pairs::<u64, u64>());
    }

    #[test]
    fn persisted_store_serves_mapped_windows() {
        let dir = std::env::temp_dir().join(format!(
            "gesall-ship-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let dfs = dfs(Some(dir.clone()));
        let counters = Counters::new();
        let segs = segments();
        store_map_output(&dfs, "j/shuffle/map-00000.segs", &segs, &counters).unwrap();
        let a = fetch_partition(&dfs, "j/shuffle/map-00000.segs", 1).unwrap();
        let b = fetch_partition(&dfs, "j/shuffle/map-00000.segs", 1).unwrap();
        // Two fetches share the one file mapping — refcount bumps on the
        // mmap'd block, no payload copies.
        assert!(a.data.same_backing(&b.data));
        if gesall_formats::mapped::MMAP_COMPILED {
            assert!(a.data.is_mapped(), "persisted block must be served mmap'd");
        }
        assert_eq!(a.to_pairs::<u64, u64>(), segs[1].to_pairs::<u64, u64>());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn adapt_codec_matches_by_reference_and_transcode_mismatches() {
        let counters = Counters::new();
        let segs = segments();
        let compressed = &segs[1];
        // Same codec: refcount bump, zero copies counted.
        let same = adapt_codec(compressed, Codec::Lz, &counters).unwrap();
        assert!(same.data.same_backing(&compressed.data));
        assert_eq!(counters.get(keys::BYTES_COPIED), 0);
        // Mismatch: transcoded, copies counted, contents preserved.
        let raw = adapt_codec(compressed, Codec::Raw, &counters).unwrap();
        assert_eq!(raw.codec, Codec::Raw);
        assert!(!raw.data.same_backing(&compressed.data));
        assert!(counters.get(keys::BYTES_COPIED) > 0);
        assert_eq!(
            raw.to_pairs::<u64, u64>(),
            compressed.to_pairs::<u64, u64>()
        );
        let back = adapt_codec(&raw, Codec::Lz, &counters).unwrap();
        assert_eq!(back.codec, Codec::Lz);
        assert_eq!(back.to_pairs::<u64, u64>(), raw.to_pairs::<u64, u64>());
    }

    // Iterates the codec registry rather than naming codecs, so a newly
    // registered codec is covered (and its same-codec fast path pinned)
    // the day it lands.
    #[test]
    fn adapt_codec_transcodes_between_every_registered_pair() {
        let segs = segments();
        let compressed = &segs[1];
        let want_pairs = compressed.to_pairs::<u64, u64>();
        for &from in Codec::registry() {
            let counters = Counters::new();
            let src = adapt_codec(compressed, from, &counters).unwrap();
            for &to in Codec::registry() {
                let counters = Counters::new();
                let got = adapt_codec(&src, to, &counters).unwrap();
                assert_eq!(got.codec, to);
                if from == to {
                    assert!(
                        got.data.same_backing(&src.data),
                        "{from:?} -> {to:?} must be a refcount bump"
                    );
                    assert_eq!(counters.get(keys::BYTES_COPIED), 0);
                } else {
                    assert!(counters.get(keys::BYTES_COPIED) > 0);
                }
                assert_eq!(got.to_pairs::<u64, u64>(), want_pairs);
            }
        }
    }

    #[test]
    fn partition_fetch_from_multi_block_file_reads_only_its_range() {
        // Tiny blocks force the stored output across many blocks; each
        // partition still comes back intact via its indexed range, and
        // an in-block partition is served zero-copy.
        let dfs = Dfs::new(DfsConfig {
            n_nodes: 3,
            block_size: 256,
            replication: 1,
            ..DfsConfig::default()
        });
        let counters = Counters::new();
        let segs: Vec<Segment> = (0..5)
            .map(|p| {
                Segment::from_pairs(
                    &(0..60u64).map(|i| (i, i * 10 + p)).collect::<Vec<_>>(),
                    false,
                )
            })
            .collect();
        store_map_output(&dfs, "j/shuffle/map-00000.segs", &segs, &counters).unwrap();
        assert!(
            dfs.stat("j/shuffle/map-00000.segs").unwrap().blocks.len() > 1,
            "test needs a multi-block file"
        );
        for (p, s) in segs.iter().enumerate() {
            let got = fetch_partition(&dfs, "j/shuffle/map-00000.segs", p).unwrap();
            assert_eq!(got.records, s.records);
            assert_eq!(got.to_pairs::<u64, u64>(), s.to_pairs::<u64, u64>());
        }
        // And pinned placement keeps the whole output on one node.
        store_map_output_with_policy(
            &dfs,
            "j/shuffle/map-00001.segs",
            &segs,
            &gesall_dfs::PinnedPlacement(2),
            &counters,
        )
        .unwrap();
        let info = dfs.stat("j/shuffle/map-00001.segs").unwrap();
        assert_eq!(info.single_home(), Some(2));
    }

    #[test]
    fn fetch_errors_on_bad_partition_and_corrupt_file() {
        let dfs = dfs(None);
        let counters = Counters::new();
        store_map_output(&dfs, "j/m0", &segments(), &counters).unwrap();
        assert!(fetch_partition(&dfs, "j/m0", 3).is_err());
        dfs.write_file("j/corrupt", &[9u8; 4]).unwrap();
        assert!(fetch_map_output(&dfs, "j/corrupt").is_err());
        assert!(fetch_map_output(&dfs, "j/missing").is_err());
    }
}
