//! Map-output shipping: persisting merged map outputs into DFS and
//! fetching them back by reference for the shuffle.
//!
//! A map task's segments serialize into ONE DFS file of codec-tagged
//! frames ([`write_frame`](crate::shuffle::write_frame)). The reduce-side
//! fetch reads the file as a [`SharedBytes`] and slices each frame's
//! payload out of it zero-copy — when the DFS persists blocks
//! (`DfsConfig::block_store_dir`), the window is a view into the mmap'd
//! block file, so a compressed segment travels disk → shuffle → reduce
//! merge as a refcount bump and is decoded exactly once. The only
//! memcpy on this path is the store-side frame write, which is counted
//! under `mem.bytes.copied`.

use crate::counters::{keys, Counters};
use crate::shuffle::{read_frame, write_frame, Segment, FRAME_HEADER_BYTES};
use gesall_dfs::{Dfs, DfsError};
use gesall_formats::compress::{compress_append, decompress};
use gesall_formats::wire::{put_u64, Cursor};
use gesall_formats::{Codec, FormatError, SharedBytes};
use std::fmt;

/// Errors on the map-output shipping path.
#[derive(Debug)]
pub enum ShipError {
    /// The DFS refused the read or write.
    Dfs(DfsError),
    /// A stored frame was corrupt or truncated.
    Format(FormatError),
}

impl fmt::Display for ShipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShipError::Dfs(e) => write!(f, "shipping: {e}"),
            ShipError::Format(e) => write!(f, "shipping: {e}"),
        }
    }
}

impl std::error::Error for ShipError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShipError::Dfs(e) => Some(e),
            ShipError::Format(e) => Some(e),
        }
    }
}

impl From<DfsError> for ShipError {
    fn from(e: DfsError) -> ShipError {
        ShipError::Dfs(e)
    }
}

impl From<FormatError> for ShipError {
    fn from(e: FormatError) -> ShipError {
        ShipError::Format(e)
    }
}

/// Canonical DFS path of a map task's shuffle output.
pub fn map_output_path(job: &str, map_task: usize) -> String {
    format!("{job}/shuffle/map-{map_task:05}.segs")
}

/// Persist a map task's merged segments (one per reduce partition) as a
/// single DFS file: `[n u64]` then `n` frames. The frame write is the
/// one payload memcpy of the shipping path and is counted under
/// `mem.bytes.copied`; compressed payloads are written as-is, never
/// re-encoded.
pub fn store_map_output(
    dfs: &Dfs,
    path: &str,
    segments: &[Segment],
    counters: &Counters,
) -> Result<(), ShipError> {
    let total: usize = segments
        .iter()
        .map(|s| FRAME_HEADER_BYTES + s.data.len())
        .sum();
    let mut out = Vec::with_capacity(8 + total);
    put_u64(&mut out, segments.len() as u64);
    for s in segments {
        write_frame(s, &mut out);
        counters.add(keys::BYTES_COPIED, s.data.len() as u64);
    }
    dfs.write_file_shared(path, SharedBytes::from_vec(out))?;
    Ok(())
}

/// Fetch every segment of a stored map output. Payloads are zero-copy
/// windows of the DFS block — mmap-backed when the store persists
/// blocks — and keep their codec tags, so compressed segments stay
/// compressed until the reduce-side merge decodes them.
pub fn fetch_map_output(dfs: &Dfs, path: &str) -> Result<Vec<Segment>, ShipError> {
    let bytes = dfs.read_file_shared(path)?;
    let buf: &[u8] = &bytes;
    let n = Cursor::new(buf).get_u64()? as usize;
    let mut offset = 8;
    let mut segments = Vec::with_capacity(n);
    for _ in 0..n {
        let (seg, next) = read_frame(&bytes, offset)?;
        segments.push(seg);
        offset = next;
    }
    if offset != buf.len() {
        return Err(FormatError::Bam(format!(
            "{} trailing bytes after {n} segment frames",
            buf.len() - offset
        ))
        .into());
    }
    Ok(segments)
}

/// Fetch just partition `r` of a stored map output — what one reducer
/// pulls from one map task. Frames are skipped by their header lengths,
/// so unfetched partitions are never touched beyond 25 header bytes.
pub fn fetch_partition(dfs: &Dfs, path: &str, r: usize) -> Result<Segment, ShipError> {
    let bytes = dfs.read_file_shared(path)?;
    let buf: &[u8] = &bytes;
    let n = Cursor::new(buf).get_u64()? as usize;
    if r >= n {
        return Err(FormatError::Bam(format!(
            "partition {r} out of range: map output has {n} frames"
        ))
        .into());
    }
    let mut offset = 8;
    for _ in 0..r {
        let (_, next) = read_frame(&bytes, offset)?;
        offset = next;
    }
    let (seg, _) = read_frame(&bytes, offset)?;
    Ok(seg)
}

/// Bring a fetched segment to the codec the consumer speaks. When the
/// codecs already match this is a pure refcount bump (`same_backing`
/// holds); a mismatch transcodes the payload, counting the copies under
/// `mem.bytes.copied`.
pub fn adapt_codec(seg: &Segment, want: Codec, counters: &Counters) -> Result<Segment, ShipError> {
    if seg.codec == want {
        return Ok(seg.clone());
    }
    match want {
        Codec::Raw => {
            let raw = decompress(&seg.data)?;
            counters.add(keys::BYTES_COPIED, raw.len() as u64);
            Ok(Segment {
                data: SharedBytes::from_vec(raw),
                raw_len: seg.raw_len,
                records: seg.records,
                codec: Codec::Raw,
            })
        }
        Codec::Lz => {
            let mut data = Vec::new();
            compress_append(&seg.data, &mut data);
            counters.add(keys::BYTES_COPIED, (seg.raw_len + data.len()) as u64);
            Ok(Segment {
                data: SharedBytes::from_vec(data),
                raw_len: seg.raw_len,
                records: seg.records,
                codec: Codec::Lz,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shuffle::CodecPolicy;
    use gesall_dfs::DfsConfig;

    fn segments() -> Vec<Segment> {
        vec![
            Segment::from_pairs(&[(1u64, 10u64), (2, 20)], false),
            Segment::from_pairs_with(
                &(0..400u64).map(|i| (i % 13, i)).collect::<Vec<_>>(),
                CodecPolicy::new(true, 16),
            ),
            Segment::empty(),
        ]
    }

    fn dfs(block_store: Option<std::path::PathBuf>) -> Dfs {
        Dfs::new(DfsConfig {
            n_nodes: 3,
            block_size: 1 << 20,
            replication: 2,
            block_store_dir: block_store,
        })
    }

    #[test]
    fn store_and_fetch_roundtrip_by_reference() {
        let dfs = dfs(None);
        let counters = Counters::new();
        let segs = segments();
        assert!(segs[1].is_compressed());
        store_map_output(&dfs, "job/shuffle/map-00000.segs", &segs, &counters).unwrap();
        let fetched = fetch_map_output(&dfs, "job/shuffle/map-00000.segs").unwrap();
        assert_eq!(fetched.len(), 3);
        for (orig, got) in segs.iter().zip(&fetched) {
            assert_eq!(orig.codec, got.codec);
            assert_eq!(orig.records, got.records);
            assert_eq!(orig.raw_len, got.raw_len);
            assert_eq!(&orig.data[..], &got.data[..]);
        }
        // Every fetched payload windows the SAME block: the compressed
        // segment travelled by reference, not by copy.
        assert!(fetched[0].data.same_backing(&fetched[1].data));
        let p1 = fetch_partition(&dfs, "job/shuffle/map-00000.segs", 1).unwrap();
        assert!(p1.data.same_backing(&fetched[1].data));
        assert_eq!(p1.to_pairs::<u64, u64>(), segs[1].to_pairs::<u64, u64>());
    }

    #[test]
    fn persisted_store_serves_mapped_windows() {
        let dir = std::env::temp_dir().join(format!(
            "gesall-ship-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let dfs = dfs(Some(dir.clone()));
        let counters = Counters::new();
        let segs = segments();
        store_map_output(&dfs, "j/shuffle/map-00000.segs", &segs, &counters).unwrap();
        let a = fetch_partition(&dfs, "j/shuffle/map-00000.segs", 1).unwrap();
        let b = fetch_partition(&dfs, "j/shuffle/map-00000.segs", 1).unwrap();
        // Two fetches share the one file mapping — refcount bumps on the
        // mmap'd block, no payload copies.
        assert!(a.data.same_backing(&b.data));
        if gesall_formats::mapped::MMAP_COMPILED {
            assert!(a.data.is_mapped(), "persisted block must be served mmap'd");
        }
        assert_eq!(a.to_pairs::<u64, u64>(), segs[1].to_pairs::<u64, u64>());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn adapt_codec_matches_by_reference_and_transcode_mismatches() {
        let counters = Counters::new();
        let segs = segments();
        let compressed = &segs[1];
        // Same codec: refcount bump, zero copies counted.
        let same = adapt_codec(compressed, Codec::Lz, &counters).unwrap();
        assert!(same.data.same_backing(&compressed.data));
        assert_eq!(counters.get(keys::BYTES_COPIED), 0);
        // Mismatch: transcoded, copies counted, contents preserved.
        let raw = adapt_codec(compressed, Codec::Raw, &counters).unwrap();
        assert_eq!(raw.codec, Codec::Raw);
        assert!(!raw.data.same_backing(&compressed.data));
        assert!(counters.get(keys::BYTES_COPIED) > 0);
        assert_eq!(
            raw.to_pairs::<u64, u64>(),
            compressed.to_pairs::<u64, u64>()
        );
        let back = adapt_codec(&raw, Codec::Lz, &counters).unwrap();
        assert_eq!(back.codec, Codec::Lz);
        assert_eq!(back.to_pairs::<u64, u64>(), raw.to_pairs::<u64, u64>());
    }

    #[test]
    fn fetch_errors_on_bad_partition_and_corrupt_file() {
        let dfs = dfs(None);
        let counters = Counters::new();
        store_map_output(&dfs, "j/m0", &segments(), &counters).unwrap();
        assert!(fetch_partition(&dfs, "j/m0", 3).is_err());
        dfs.write_file("j/corrupt", &[9u8; 4]).unwrap();
        assert!(fetch_map_output(&dfs, "j/corrupt").is_err());
        assert!(fetch_map_output(&dfs, "j/missing").is_err());
    }
}
