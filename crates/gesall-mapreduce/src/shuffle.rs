//! The sort-spill-merge pipeline.
//!
//! Map side: emitted records serialize into a bounded **sort buffer**
//! (`io.sort.mb`). A full buffer is sorted by (partition, key) and
//! spilled; when the map function finishes, all spills are merged into a
//! single sorted, partitioned output (the *map-side merge* whose disk
//! contention dominates Fig. 5(b) at large partition sizes).
//!
//! Reduce side: each reducer fetches its partition's segment from every
//! map output and runs a **multipass merge** bounded by `merge_factor`
//! — the quadratic-in-data-per-disk behaviour of Li et al. [15] that
//! explains the paper's disk findings (Appendix B.1).

use crate::counters::{keys, Counters};
use crate::task::Partitioner;
use gesall_formats::compress::{compress_append, decompress};
use gesall_formats::wire::{Cursor, Wire};
use gesall_formats::SharedBytes;
use gesall_telemetry::Phase;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

/// Payloads smaller than this stay uncompressed even when the job asks
/// for compression: the codec container + dictionary warm-up costs more
/// than it saves on tiny segments, and skipping it keeps the map-side
/// merge a single pass over the output backing.
pub const COMPRESS_MIN_BYTES: usize = 1024;

/// One sorted run of encoded (key, value) records.
///
/// The payload is a [`SharedBytes`] window, so a reduce-side fetch of a
/// map output clones a reference into the map task's single output
/// backing instead of memcpy'ing the bytes (assert with
/// [`SharedBytes::same_backing`]).
#[derive(Debug, Clone)]
pub struct Segment {
    /// Possibly-compressed payload, shared with its siblings from the
    /// same map task.
    pub data: SharedBytes,
    /// Uncompressed payload length.
    pub raw_len: usize,
    /// Record count.
    pub records: u64,
    /// Was [`Segment::data`] compressed?
    pub compressed: bool,
}

impl Segment {
    pub fn empty() -> Segment {
        Segment {
            data: SharedBytes::new(),
            raw_len: 0,
            records: 0,
            compressed: false,
        }
    }

    /// Serialize a sorted run of typed pairs. The encode buffer is
    /// pre-sized from [`Wire::encoded_len`], and payloads under
    /// [`COMPRESS_MIN_BYTES`] skip compression regardless of the flag.
    pub fn from_pairs<K: Wire, V: Wire>(pairs: &[(K, V)], use_compression: bool) -> Segment {
        let raw_len: usize = pairs
            .iter()
            .map(|(k, v)| k.encoded_len() + v.encoded_len())
            .sum();
        let mut raw = Vec::with_capacity(raw_len);
        for (k, v) in pairs {
            k.encode(&mut raw);
            v.encode(&mut raw);
        }
        debug_assert_eq!(raw.len(), raw_len, "encoded_len must be exact");
        if use_compression && raw_len >= COMPRESS_MIN_BYTES {
            let mut data = Vec::new();
            compress_append(&raw, &mut data);
            Segment {
                data: SharedBytes::from_vec(data),
                raw_len,
                records: pairs.len() as u64,
                compressed: true,
            }
        } else {
            Segment {
                data: SharedBytes::from_vec(raw),
                raw_len,
                records: pairs.len() as u64,
                compressed: false,
            }
        }
    }

    /// Decode back into typed pairs.
    pub fn to_pairs<K: Wire, V: Wire>(&self) -> Vec<(K, V)> {
        let raw_storage;
        let raw: &[u8] = if self.compressed {
            raw_storage = decompress(&self.data).expect("segment payload corrupt");
            &raw_storage
        } else {
            &self.data
        };
        let mut cur = Cursor::new(raw);
        let mut out = Vec::with_capacity(self.records as usize);
        for _ in 0..self.records {
            let k = K::decode(&mut cur).expect("segment key corrupt");
            let v = V::decode(&mut cur).expect("segment value corrupt");
            out.push((k, v));
        }
        assert!(cur.is_empty(), "trailing bytes in segment");
        out
    }

    /// Bytes that travel over the wire for this segment.
    pub fn wire_len(&self) -> usize {
        self.data.len()
    }
}

/// Stable k-way merge of sorted runs by key (ties broken by run order,
/// then intra-run order — deterministic).
pub fn merge_runs<K: Wire + Ord + Clone, V: Wire>(runs: Vec<Vec<(K, V)>>) -> Vec<(K, V)> {
    let total: usize = runs.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    // Heap of (key, run_idx) → pop smallest; stability from run_idx order.
    let mut iters: Vec<std::vec::IntoIter<(K, V)>> =
        runs.into_iter().map(|r| r.into_iter()).collect();
    let mut heap: BinaryHeap<Reverse<(K, usize)>> = BinaryHeap::new();
    let mut heads: Vec<Option<V>> = Vec::with_capacity(iters.len());
    for (i, it) in iters.iter_mut().enumerate() {
        match it.next() {
            Some((k, v)) => {
                heap.push(Reverse((k, i)));
                heads.push(Some(v));
            }
            None => heads.push(None),
        }
    }
    while let Some(Reverse((k, i))) = heap.pop() {
        let v = heads[i].take().expect("head value present for popped run");
        out.push((k, v));
        if let Some((nk, nv)) = iters[i].next() {
            heap.push(Reverse((nk, i)));
            heads[i] = Some(nv);
        }
    }
    out
}

/// Recycled spill-scratch memory: a free-list of encode buffers so a
/// map task's merge serializes every partition through the same
/// allocation instead of growing a fresh `Vec` per partition (or, in
/// the old path, per record). [`SpillArena::acquire`] counts every
/// hand-out under [`keys::SPILL_ALLOCS`] and recycled ones under
/// [`keys::SPILL_REUSED`], so the bench report can show the reuse
/// ratio.
pub struct SpillArena {
    free: Vec<Vec<u8>>,
    counters: Counters,
}

impl SpillArena {
    pub fn new(counters: Counters) -> SpillArena {
        SpillArena {
            free: Vec::new(),
            counters,
        }
    }

    /// Check out a cleared buffer with at least `cap` capacity,
    /// recycling a released one when available.
    pub fn acquire(&mut self, cap: usize) -> Vec<u8> {
        self.counters.add(keys::SPILL_ALLOCS, 1);
        match self.free.pop() {
            Some(mut buf) => {
                self.counters.add(keys::SPILL_REUSED, 1);
                buf.clear();
                buf.reserve(cap);
                buf
            }
            None => Vec::with_capacity(cap),
        }
    }

    /// Return a buffer to the free-list for the next `acquire`.
    pub fn release(&mut self, buf: Vec<u8>) {
        self.free.push(buf);
    }
}

/// The map-side sort buffer.
pub struct SortSpillBuffer<'a, K: Wire + Ord + Clone, V: Wire> {
    io_sort_bytes: usize,
    n_partitions: usize,
    partitioner: &'a dyn Partitioner<K>,
    use_compression: bool,
    current: Vec<(usize, K, V)>,
    current_bytes: usize,
    /// Each spill holds one sorted run per partition.
    spills: Vec<Vec<Vec<(K, V)>>>,
    counters: Counters,
}

impl<'a, K: Wire + Ord + Clone, V: Wire> SortSpillBuffer<'a, K, V> {
    pub fn new(
        io_sort_bytes: usize,
        n_partitions: usize,
        partitioner: &'a dyn Partitioner<K>,
        use_compression: bool,
        counters: Counters,
    ) -> Self {
        SortSpillBuffer {
            io_sort_bytes: io_sort_bytes.max(1),
            n_partitions: n_partitions.max(1),
            partitioner,
            use_compression,
            current: Vec::new(),
            current_bytes: 0,
            spills: Vec::new(),
            counters,
        }
    }

    /// Buffer one record by move; spill when full. Sizing comes from
    /// [`Wire::encoded_len`], so nothing is serialized (or copied) until
    /// [`SortSpillBuffer::finish`] writes the single output backing.
    pub fn emit(&mut self, key: K, value: V) {
        let sz = key.encoded_len() + value.encoded_len();
        self.current_bytes += sz;
        self.counters.add(keys::MAP_OUTPUT_BYTES, sz as u64);
        self.counters.add(keys::MAP_OUTPUT_RECORDS, 1);
        let p = self.partitioner.partition(&key, self.n_partitions);
        self.current.push((p, key, value));
        if self.current_bytes >= self.io_sort_bytes {
            self.spill();
        }
    }

    fn spill(&mut self) {
        if self.current.is_empty() {
            return;
        }
        let t0 = Instant::now();
        let mut batch = std::mem::take(&mut self.current);
        self.current_bytes = 0;
        batch.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
        let mut runs: Vec<Vec<(K, V)>> = (0..self.n_partitions).map(|_| Vec::new()).collect();
        for (p, k, v) in batch {
            runs[p].push((k, v));
        }
        self.spills.push(runs);
        self.counters.add(keys::MAP_SPILLS, 1);
        self.counters
            .add(Phase::SortSpill.counter_key(), t0.elapsed().as_nanos() as u64);
    }

    /// Finish the map task: merge all spills into one sorted segment per
    /// partition.
    pub fn finish(mut self) -> Vec<Segment> {
        self.spill();
        let t0 = Instant::now();
        let n_spills = self.spills.len();
        if n_spills > 1 {
            self.counters
                .add(keys::MAP_MERGE_SEGMENTS, n_spills as u64);
        }
        let mut per_partition: Vec<Vec<Vec<(K, V)>>> =
            (0..self.n_partitions).map(|_| Vec::new()).collect();
        for spill in self.spills {
            for (p, run) in spill.into_iter().enumerate() {
                if !run.is_empty() {
                    per_partition[p].push(run);
                }
            }
        }
        // Serialize every partition into ONE backing buffer; the
        // returned segments are O(1) slices of it, so reduce-side
        // fetches share the allocation instead of copying. Compressed
        // partitions encode raw into an arena-recycled scratch first
        // (one real allocation per task, reused across partitions),
        // then the codec appends to the backing.
        let mut arena = SpillArena::new(self.counters.clone());
        let mut backing: Vec<u8> = Vec::new();
        let mut metas: Vec<(usize, usize, usize, u64, bool)> = Vec::new();
        for runs in per_partition {
            let merged = if runs.len() == 1 {
                runs.into_iter().next().unwrap()
            } else {
                merge_runs(runs)
            };
            let raw_len: usize = merged
                .iter()
                .map(|(k, v)| k.encoded_len() + v.encoded_len())
                .sum();
            let start = backing.len();
            let compressed = self.use_compression && raw_len >= COMPRESS_MIN_BYTES;
            if compressed {
                let mut scratch = arena.acquire(raw_len);
                for (k, v) in &merged {
                    k.encode(&mut scratch);
                    v.encode(&mut scratch);
                }
                compress_append(&scratch, &mut backing);
                arena.release(scratch);
                // Raw encode into scratch + the compressor's write.
                let copied = raw_len + (backing.len() - start);
                self.counters.add(keys::BYTES_COPIED, copied as u64);
            } else {
                backing.reserve(raw_len);
                for (k, v) in &merged {
                    k.encode(&mut backing);
                    v.encode(&mut backing);
                }
                self.counters.add(keys::BYTES_COPIED, raw_len as u64);
            }
            metas.push((start, backing.len(), raw_len, merged.len() as u64, compressed));
        }
        let backing = SharedBytes::from_vec(backing);
        let segments: Vec<Segment> = metas
            .into_iter()
            .map(|(start, end, raw_len, records, compressed)| Segment {
                data: backing.slice(start..end),
                raw_len,
                records,
                compressed,
            })
            .collect();
        self.counters
            .add(Phase::MapMerge.counter_key(), t0.elapsed().as_nanos() as u64);
        segments
    }
}

/// Reduce-side shuffle + multipass merge: fetch one segment per map task,
/// merge them down to a single grouped stream.
pub fn reduce_merge<K: Wire + Ord + Clone, V: Wire>(
    segments: Vec<Segment>,
    merge_factor: usize,
    counters: &Counters,
) -> Vec<(K, Vec<V>)> {
    let merge_factor = merge_factor.max(2);
    // Fetch + decode of every map-output segment is the shuffle phase.
    let t0 = Instant::now();
    for s in &segments {
        counters.add(keys::SHUFFLE_RECORDS, s.records);
        counters.add(keys::SHUFFLE_BYTES, s.wire_len() as u64);
        counters.add(keys::SHUFFLE_BYTES_RAW, s.raw_len as u64);
        // Decode into owned pairs, plus the decompressor's write.
        let copied = s.raw_len + if s.compressed { s.raw_len } else { 0 };
        counters.add(keys::BYTES_COPIED, copied as u64);
    }
    let mut runs: std::collections::VecDeque<Vec<(K, V)>> = segments
        .iter()
        .filter(|s| s.records > 0)
        .map(|s| s.to_pairs())
        .collect();
    counters.add(Phase::Shuffle.counter_key(), t0.elapsed().as_nanos() as u64);
    let t0 = Instant::now();
    // Intermediate passes: merge `merge_factor` runs at a time, rewriting
    // the merged run to "disk" (accounted via REDUCE_MERGE_BYTES).
    while runs.len() > merge_factor {
        let take = merge_factor.min(runs.len());
        let batch: Vec<Vec<(K, V)>> = (0..take).map(|_| runs.pop_front().unwrap()).collect();
        let merged = merge_runs(batch);
        // The intermediate pass moves typed records by ownership;
        // account the run it would rewrite to disk via encoded_len
        // instead of actually re-serializing it (the old path encoded —
        // and when compressing, compressed — the whole run here just to
        // measure it).
        let rewritten: usize = merged
            .iter()
            .map(|(k, v)| k.encoded_len() + v.encoded_len())
            .sum();
        counters.add(keys::REDUCE_MERGE_PASSES, 1);
        counters.add(keys::REDUCE_MERGE_BYTES, rewritten as u64);
        runs.push_back(merged);
    }
    let merged = merge_runs(runs.into_iter().collect());
    // Group consecutive equal keys.
    let mut out: Vec<(K, Vec<V>)> = Vec::new();
    for (k, v) in merged {
        match out.last_mut() {
            Some((lk, vs)) if *lk == k => vs.push(v),
            _ => out.push((k, vec![v])),
        }
    }
    counters.add(keys::REDUCE_INPUT_GROUPS, out.len() as u64);
    counters.add(
        Phase::ReduceMerge.counter_key(),
        t0.elapsed().as_nanos() as u64,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::HashPartitioner;

    #[test]
    fn segment_roundtrip_compressed_and_raw() {
        let pairs: Vec<(String, u64)> = (0..500)
            .map(|i| (format!("key{:04}", i % 50), i))
            .collect();
        for comp in [false, true] {
            let seg = Segment::from_pairs(&pairs, comp);
            assert_eq!(seg.records, 500);
            assert_eq!(seg.compressed, comp);
            let back: Vec<(String, u64)> = seg.to_pairs();
            assert_eq!(back, pairs);
            if comp {
                assert!(seg.wire_len() < seg.raw_len, "repetitive keys compress");
            }
        }
    }

    #[test]
    fn merge_runs_is_sorted_and_stable() {
        let a = vec![("a".to_string(), 1u64), ("c".into(), 2), ("e".into(), 3)];
        let b = vec![("a".to_string(), 10u64), ("b".into(), 11)];
        let merged = merge_runs(vec![a, b]);
        let keys: Vec<&str> = merged.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["a", "a", "b", "c", "e"]);
        // Stability: run 0's "a" precedes run 1's.
        assert_eq!(merged[0].1, 1);
        assert_eq!(merged[1].1, 10);
    }

    #[test]
    fn merge_runs_empty_inputs() {
        let merged: Vec<(u64, u64)> = merge_runs(vec![]);
        assert!(merged.is_empty());
        let merged: Vec<(u64, u64)> = merge_runs(vec![vec![], vec![(1, 2)], vec![]]);
        assert_eq!(merged, vec![(1, 2)]);
    }

    #[test]
    fn sort_buffer_spills_when_full() {
        let counters = Counters::new();
        let p = HashPartitioner;
        let mut buf: SortSpillBuffer<'_, u64, u64> =
            SortSpillBuffer::new(256, 2, &p, false, counters.clone());
        for i in 0..200u64 {
            buf.emit(i % 37, i);
        }
        let segs = buf.finish();
        assert_eq!(segs.len(), 2);
        assert!(counters.get(keys::MAP_SPILLS) > 1, "tiny buffer must spill");
        assert_eq!(counters.get(keys::MAP_OUTPUT_RECORDS), 200);
        // All records preserved, each segment sorted.
        let mut n = 0;
        for s in &segs {
            let pairs: Vec<(u64, u64)> = s.to_pairs();
            assert!(pairs.windows(2).all(|w| w[0].0 <= w[1].0));
            n += pairs.len();
        }
        assert_eq!(n, 200);
    }

    #[test]
    fn partitioning_respects_partitioner() {
        let counters = Counters::new();
        let p = crate::task::FnPartitioner::new(|k: &u64, n| (*k as usize) % n);
        let mut buf: SortSpillBuffer<'_, u64, String> =
            SortSpillBuffer::new(1 << 20, 3, &p, false, counters);
        for i in 0..60u64 {
            buf.emit(i, format!("v{i}"));
        }
        let segs = buf.finish();
        for (pi, s) in segs.iter().enumerate() {
            for (k, _) in s.to_pairs::<u64, String>() {
                assert_eq!(k as usize % 3, pi);
            }
        }
    }

    #[test]
    fn reduce_merge_groups_by_key() {
        let counters = Counters::new();
        let seg1 = Segment::from_pairs(&[(1u64, 10u64), (2, 20)], false);
        let seg2 = Segment::from_pairs(&[(1u64, 11u64), (3, 30)], false);
        let grouped = reduce_merge::<u64, u64>(vec![seg1, seg2], 10, &counters);
        assert_eq!(
            grouped,
            vec![(1, vec![10, 11]), (2, vec![20]), (3, vec![30])]
        );
        assert_eq!(counters.get(keys::SHUFFLE_RECORDS), 4);
        assert_eq!(counters.get(keys::REDUCE_INPUT_GROUPS), 3);
        assert_eq!(counters.get(keys::REDUCE_MERGE_PASSES), 0);
    }

    #[test]
    fn reduce_merge_multipass_when_many_segments() {
        let counters = Counters::new();
        let segments: Vec<Segment> = (0..20u64)
            .map(|s| Segment::from_pairs(&[(s, s * 100), (s + 100, s)], false))
            .collect();
        let grouped = reduce_merge::<u64, u64>(segments, 4, &counters);
        assert_eq!(grouped.len(), 40);
        assert!(
            counters.get(keys::REDUCE_MERGE_PASSES) >= 4,
            "20 segments at factor 4 need multiple passes, got {}",
            counters.get(keys::REDUCE_MERGE_PASSES)
        );
        assert!(counters.get(keys::REDUCE_MERGE_BYTES) > 0);
        // Sorted overall.
        let ks: Vec<u64> = grouped.iter().map(|(k, _)| *k).collect();
        let mut sorted = ks.clone();
        sorted.sort_unstable();
        assert_eq!(ks, sorted);
    }

    #[test]
    fn fewer_segments_than_factor_means_no_extra_pass() {
        let counters = Counters::new();
        let segments: Vec<Segment> = (0..5u64)
            .map(|s| Segment::from_pairs(&[(s, s)], false))
            .collect();
        let _ = reduce_merge::<u64, u64>(segments, 10, &counters);
        assert_eq!(counters.get(keys::REDUCE_MERGE_PASSES), 0);
    }

    #[test]
    fn finish_partitions_share_one_backing() {
        // The zero-copy contract of the shuffle: a map task's segments
        // are windows of ONE backing, and the reduce-side fetch (a
        // segment clone) shares it — pointer identity, no payload copy.
        let counters = Counters::new();
        let p = crate::task::FnPartitioner::new(|k: &u64, n| (*k as usize) % n);
        let mut buf: SortSpillBuffer<'_, u64, u64> =
            SortSpillBuffer::new(256, 4, &p, false, counters);
        for i in 0..300u64 {
            buf.emit(i, i * 7);
        }
        let segs = buf.finish();
        assert_eq!(segs.len(), 4);
        for pair in segs.windows(2) {
            assert!(
                pair[0].data.same_backing(&pair[1].data),
                "partition segments must slice one backing"
            );
        }
        let fetched = segs[0].clone();
        assert!(
            fetched.data.same_backing(&segs[0].data),
            "reduce-side fetch must not copy the payload"
        );
    }

    #[test]
    fn spill_arena_recycles_buffers() {
        let counters = Counters::new();
        let mut arena = SpillArena::new(counters.clone());
        let a = arena.acquire(1024);
        arena.release(a);
        let b = arena.acquire(512);
        arena.release(b);
        let _c = arena.acquire(2048);
        assert_eq!(counters.get(keys::SPILL_ALLOCS), 3);
        assert_eq!(counters.get(keys::SPILL_REUSED), 2);
    }

    #[test]
    fn shuffle_roundtrip_compression_on_off() {
        // End-to-end sort-spill-merge → reduce fetch, with the codec on
        // and off: grouped output must be identical either way.
        let p = HashPartitioner;
        let mut outputs = Vec::new();
        for comp in [false, true] {
            let counters = Counters::new();
            let mut buf: SortSpillBuffer<'_, String, u64> =
                SortSpillBuffer::new(512, 3, &p, comp, counters.clone());
            for i in 0..400u64 {
                buf.emit(format!("key{:03}", i % 40), i);
            }
            let segs = buf.finish();
            if comp {
                assert!(
                    segs.iter().any(|s| s.compressed),
                    "repetitive keys above the threshold must compress"
                );
            } else {
                assert!(segs.iter().all(|s| !s.compressed));
            }
            let mut grouped = Vec::new();
            for seg in segs {
                grouped.extend(reduce_merge::<String, u64>(vec![seg], 4, &counters));
            }
            grouped.sort();
            assert_eq!(counters.get(keys::SHUFFLE_RECORDS), 400);
            outputs.push(grouped);
        }
        assert_eq!(outputs[0], outputs[1]);
        assert_eq!(outputs[0].len(), 40);
    }
}
