//! The sort-spill-merge pipeline.
//!
//! Map side: emitted records serialize into a bounded **sort buffer**
//! (`io.sort.mb`). A full buffer is sorted by (partition, key) and
//! spilled; when the map function finishes, all spills are merged into a
//! single sorted, partitioned output (the *map-side merge* whose disk
//! contention dominates Fig. 5(b) at large partition sizes). With a
//! [`SpillPool`] attached, the sort-and-bucket work of each spill runs on
//! a background encoder while the mapper keeps buffering, and
//! [`SortSpillBuffer::finish`] becomes a drain-and-merge barrier — the
//! merged output is byte-identical to the synchronous path because spills
//! land in submission order and the final encode still happens in one
//! place.
//!
//! Reduce side: each reducer fetches its partition's segment from every
//! map output and runs a **multipass merge** bounded by `merge_factor`
//! — the quadratic-in-data-per-disk behaviour of Li et al. [15] that
//! explains the paper's disk findings (Appendix B.1).

use crate::counters::{keys, Counters};
use crate::spillpool::SpillPool;
use crate::task::Partitioner;
use gesall_formats::wire::{put_u64, Cursor, Wire};
use gesall_formats::{Codec, FormatError, SharedBytes};
use gesall_telemetry::{kernel_keys, Phase};
use parking_lot::{Condvar, Mutex};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::Instant;

/// Default compression threshold: payloads smaller than this stay
/// uncompressed even when the job asks for compression — the codec
/// container + dictionary warm-up costs more than it saves on tiny
/// segments. Jobs can override it via
/// [`JobConfig::compress_min_bytes`](crate::runtime::JobConfig).
pub const COMPRESS_MIN_BYTES: usize = 1024;

/// Free-list cap for [`SpillArena`]: holding more released scratch
/// buffers than this drops them (counted under [`keys::SPILL_EVICTED`])
/// instead of growing the list without bound.
pub const SPILL_ARENA_MAX_FREE: usize = 8;

/// How a job picks the codec for each map-output partition: compression
/// on/off, the minimum payload size worth compressing, and which
/// registered codec compressed payloads travel under (per key-type —
/// genomic record streams hint [`Codec::Seq`] via
/// [`Wire::codec_hint`], everything else defaults to LZ).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodecPolicy {
    /// Compress at all?
    pub compress: bool,
    /// Smallest raw payload the codec is applied to.
    pub min_bytes: usize,
    /// The compressed codec applied when a payload qualifies.
    pub codec: Codec,
}

impl CodecPolicy {
    pub fn new(compress: bool, min_bytes: usize) -> CodecPolicy {
        CodecPolicy {
            compress,
            // A floor of 1 keeps empty partitions raw, so zero-length
            // segments never carry a codec container.
            min_bytes: min_bytes.max(1),
            codec: Codec::Lz,
        }
    }

    /// Use `codec` for qualifying payloads instead of the LZ default.
    /// `Codec::Raw` here is a configuration error; it is coerced to
    /// "compression off".
    pub fn with_codec(mut self, codec: Codec) -> CodecPolicy {
        if codec.is_compressed() {
            self.codec = codec;
        } else {
            self.compress = false;
        }
        self
    }

    /// The codec a payload of `raw_len` bytes travels under.
    pub fn choose(&self, raw_len: usize) -> Codec {
        if self.compress && raw_len >= self.min_bytes {
            self.codec
        } else {
            Codec::Raw
        }
    }
}

impl Default for CodecPolicy {
    fn default() -> CodecPolicy {
        CodecPolicy::new(false, COMPRESS_MIN_BYTES)
    }
}

/// One sorted run of encoded (key, value) records.
///
/// The payload is a [`SharedBytes`] window, so a reduce-side fetch of a
/// map output clones a reference into the map task's single output
/// backing instead of memcpy'ing the bytes (assert with
/// [`SharedBytes::same_backing`]). The codec tag travels with the
/// window: a compressed segment ships by reference end-to-end and is
/// decoded exactly once, at the reduce-side merge.
#[derive(Debug, Clone)]
pub struct Segment {
    /// Possibly-compressed payload, shared with its siblings from the
    /// same map task.
    pub data: SharedBytes,
    /// Uncompressed payload length.
    pub raw_len: usize,
    /// Record count.
    pub records: u64,
    /// Codec [`Segment::data`] is encoded under.
    pub codec: Codec,
}

impl Segment {
    pub fn empty() -> Segment {
        Segment {
            data: SharedBytes::new(),
            raw_len: 0,
            records: 0,
            codec: Codec::Raw,
        }
    }

    /// Serialize a sorted run of typed pairs under the default
    /// [`COMPRESS_MIN_BYTES`] threshold.
    pub fn from_pairs<K: Wire, V: Wire>(pairs: &[(K, V)], use_compression: bool) -> Segment {
        Segment::from_pairs_with(pairs, CodecPolicy::new(use_compression, COMPRESS_MIN_BYTES))
    }

    /// Serialize a sorted run of typed pairs. The encode buffer is
    /// pre-sized from [`Wire::encoded_len`]; the policy picks the codec
    /// from the raw payload size.
    pub fn from_pairs_with<K: Wire, V: Wire>(pairs: &[(K, V)], policy: CodecPolicy) -> Segment {
        let raw_len: usize = pairs
            .iter()
            .map(|(k, v)| k.encoded_len() + v.encoded_len())
            .sum();
        let mut raw = Vec::with_capacity(raw_len);
        for (k, v) in pairs {
            k.encode(&mut raw);
            v.encode(&mut raw);
        }
        debug_assert_eq!(raw.len(), raw_len, "encoded_len must be exact");
        let codec = policy.choose(raw_len);
        let data = if codec.is_compressed() {
            let mut data = Vec::new();
            codec.encode_append(&raw, &mut data);
            data
        } else {
            raw
        };
        Segment {
            data: SharedBytes::from_vec(data),
            raw_len,
            records: pairs.len() as u64,
            codec,
        }
    }

    /// Decode back into typed pairs.
    pub fn to_pairs<K: Wire, V: Wire>(&self) -> Vec<(K, V)> {
        let raw_storage;
        let raw: &[u8] = if self.codec.is_compressed() {
            raw_storage = self.codec.decode(&self.data).expect("segment payload corrupt");
            &raw_storage
        } else {
            &self.data
        };
        let mut cur = Cursor::new(raw);
        let mut out = Vec::with_capacity(self.records as usize);
        for _ in 0..self.records {
            let k = K::decode(&mut cur).expect("segment key corrupt");
            let v = V::decode(&mut cur).expect("segment value corrupt");
            out.push((k, v));
        }
        assert!(cur.is_empty(), "trailing bytes in segment");
        out
    }

    /// Bytes that travel over the wire for this segment.
    pub fn wire_len(&self) -> usize {
        self.data.len()
    }

    /// Does [`Segment::data`] need decoding before use?
    pub fn is_compressed(&self) -> bool {
        self.codec.is_compressed()
    }
}

/// Bytes a segment frame's header occupies on the wire:
/// `[codec tag u8][records u64][raw_len u64][data_len u64]`.
pub const FRAME_HEADER_BYTES: usize = 1 + 8 + 8 + 8;

/// Append a segment's wire frame — header plus payload — to `out`.
/// This is the one place a map output's payload is memcpy'd on its way
/// into DFS; the caller accounts the copy.
pub fn write_frame(seg: &Segment, out: &mut Vec<u8>) {
    out.push(seg.codec.tag());
    put_u64(out, seg.records);
    put_u64(out, seg.raw_len as u64);
    put_u64(out, seg.data.len() as u64);
    out.extend_from_slice(&seg.data);
}

/// Parse the segment frame starting at `offset` in `bytes`, returning
/// the segment and the offset just past it. The payload is a zero-copy
/// window of `bytes` — `same_backing` holds between the returned
/// segment and the enclosing buffer, so a compressed frame read out of
/// a (possibly mmap-backed) DFS block travels onward as a refcount
/// bump.
pub fn read_frame(bytes: &SharedBytes, offset: usize) -> gesall_formats::Result<(Segment, usize)> {
    let buf: &[u8] = bytes;
    if buf.len() < offset + FRAME_HEADER_BYTES {
        return Err(FormatError::Bam(format!(
            "truncated segment frame header at offset {offset} (buffer {} bytes)",
            buf.len()
        )));
    }
    let codec = Codec::from_tag(buf[offset])?;
    let mut cur = Cursor::new(&buf[offset + 1..offset + FRAME_HEADER_BYTES]);
    let records = cur.get_u64()?;
    let raw_len = cur.get_u64()? as usize;
    let data_len = cur.get_u64()? as usize;
    let data_start = offset + FRAME_HEADER_BYTES;
    if buf.len() < data_start + data_len {
        return Err(FormatError::Bam(format!(
            "truncated segment frame payload: wanted {data_len} bytes at {data_start}, buffer {}",
            buf.len()
        )));
    }
    let seg = Segment {
        data: bytes.slice(data_start..data_start + data_len),
        raw_len,
        records,
        codec,
    };
    Ok((seg, data_start + data_len))
}

/// A tournament (loser) tree over keyed leaves, the k-way merge kernel
/// (DESIGN.md §5): internal nodes remember the *loser* of their match,
/// so replacing the winner and finding the next one replays only the
/// leaf-to-root path — `log₂ k` comparisons per record, against the
/// binary heap's pop **and** push (each `log k`, plus the tuple moves).
/// `None` keys are +∞ (exhausted leaves); ties go to the lower leaf
/// index, which is exactly [`merge_runs`]' documented stable order.
struct LoserTree<K: Ord> {
    /// `tree[1..cap]` hold the loser leaf of each internal match;
    /// `tree[0]` holds the overall winner.
    tree: Vec<usize>,
    keys: Vec<Option<K>>,
    /// Leaf count, padded to a power of two with `None` leaves.
    cap: usize,
}

impl<K: Ord> LoserTree<K> {
    fn new(mut keys: Vec<Option<K>>) -> LoserTree<K> {
        let cap = keys.len().max(1).next_power_of_two();
        keys.resize_with(cap, || None);
        let mut lt = LoserTree {
            tree: vec![0; cap],
            keys,
            cap,
        };
        // One bottom-up pass: winners bubble up, losers park in `tree`.
        let mut winners = vec![0usize; 2 * cap];
        for i in 0..cap {
            winners[cap + i] = i;
        }
        for node in (1..cap).rev() {
            let (a, b) = (winners[2 * node], winners[2 * node + 1]);
            let (w, l) = if lt.beats(a, b) { (a, b) } else { (b, a) };
            winners[node] = w;
            lt.tree[node] = l;
        }
        lt.tree[0] = winners[1];
        lt
    }

    /// Does leaf `a` come before leaf `b`? `None` = +∞; ties → lower
    /// leaf index (run submission order — the stability contract).
    fn beats(&self, a: usize, b: usize) -> bool {
        match (&self.keys[a], &self.keys[b]) {
            (Some(ka), Some(kb)) => match ka.cmp(kb) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Greater => false,
                std::cmp::Ordering::Equal => a < b,
            },
            (Some(_), None) => true,
            (None, _) => a < b && self.keys[b].is_none(),
        }
    }

    /// Current winner leaf, or `None` once every leaf is exhausted.
    fn winner(&self) -> Option<usize> {
        let w = self.tree[0];
        self.keys[w].is_some().then_some(w)
    }

    /// Swap the winner leaf's key for `next` (its run's next head) and
    /// replay its path to the root; returns the displaced key.
    fn replace_winner(&mut self, leaf: usize, next: Option<K>) -> Option<K> {
        debug_assert_eq!(leaf, self.tree[0], "only the winner may be replaced");
        let prev = std::mem::replace(&mut self.keys[leaf], next);
        let mut winner = leaf;
        let mut node = (self.cap + leaf) / 2;
        while node >= 1 {
            let loser = self.tree[node];
            if self.beats(loser, winner) {
                self.tree[node] = winner;
                winner = loser;
            }
            node /= 2;
        }
        self.tree[0] = winner;
        prev
    }
}

/// Stable k-way merge of sorted runs by key (ties broken by run order,
/// then intra-run order — deterministic). Runs on the [`LoserTree`]
/// kernel; [`merge_runs_heap`] is the binary-heap twin it is pinned to.
pub fn merge_runs<K: Wire + Ord + Clone, V: Wire>(runs: Vec<Vec<(K, V)>>) -> Vec<(K, V)> {
    let total: usize = runs.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    let mut iters: Vec<std::vec::IntoIter<(K, V)>> =
        runs.into_iter().map(|r| r.into_iter()).collect();
    let mut heads: Vec<Option<V>> = Vec::with_capacity(iters.len());
    let mut keys: Vec<Option<K>> = Vec::with_capacity(iters.len());
    for it in iters.iter_mut() {
        match it.next() {
            Some((k, v)) => {
                keys.push(Some(k));
                heads.push(Some(v));
            }
            None => {
                keys.push(None);
                heads.push(None);
            }
        }
    }
    let mut lt = LoserTree::new(keys);
    while let Some(i) = lt.winner() {
        let v = heads[i].take().expect("head value present for winner run");
        let next = match iters[i].next() {
            Some((nk, nv)) => {
                heads[i] = Some(nv);
                Some(nk)
            }
            None => None,
        };
        let k = lt
            .replace_winner(i, next)
            .expect("winner leaf holds a key");
        out.push((k, v));
    }
    out
}

/// The binary-heap twin of [`merge_runs`], retained as its order oracle
/// (and as the merge under [`reduce_merge_materialized`], keeping that
/// oracle fully independent of the loser-tree kernel).
pub fn merge_runs_heap<K: Wire + Ord + Clone, V: Wire>(runs: Vec<Vec<(K, V)>>) -> Vec<(K, V)> {
    let total: usize = runs.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    // Heap of (key, run_idx) → pop smallest; stability from run_idx order.
    let mut iters: Vec<std::vec::IntoIter<(K, V)>> =
        runs.into_iter().map(|r| r.into_iter()).collect();
    let mut heap: BinaryHeap<Reverse<(K, usize)>> = BinaryHeap::new();
    let mut heads: Vec<Option<V>> = Vec::with_capacity(iters.len());
    for (i, it) in iters.iter_mut().enumerate() {
        match it.next() {
            Some((k, v)) => {
                heap.push(Reverse((k, i)));
                heads.push(Some(v));
            }
            None => heads.push(None),
        }
    }
    while let Some(Reverse((k, i))) = heap.pop() {
        let v = heads[i].take().expect("head value present for popped run");
        out.push((k, v));
        if let Some((nk, nv)) = iters[i].next() {
            heap.push(Reverse((nk, i)));
            heads[i] = Some(nv);
        }
    }
    out
}

/// Recycled spill-scratch memory: a free-list of encode buffers so a
/// map task's merge serializes every partition through the same
/// allocation instead of growing a fresh `Vec` per partition (or, in
/// the old path, per record). [`SpillArena::acquire`] counts every
/// hand-out under [`keys::SPILL_ALLOCS`] and recycled ones under
/// [`keys::SPILL_REUSED`]. The free-list is capped: releases past
/// [`SPILL_ARENA_MAX_FREE`] drop the buffer and count under
/// [`keys::SPILL_EVICTED`], so arena memory stays bounded no matter how
/// many buffers cycle through.
pub struct SpillArena {
    free: Vec<Vec<u8>>,
    max_free: usize,
    counters: Counters,
}

impl SpillArena {
    pub fn new(counters: Counters) -> SpillArena {
        SpillArena::with_cap(counters, SPILL_ARENA_MAX_FREE)
    }

    /// An arena whose free-list holds at most `max_free` buffers.
    pub fn with_cap(counters: Counters, max_free: usize) -> SpillArena {
        SpillArena {
            free: Vec::new(),
            max_free,
            counters,
        }
    }

    /// Check out a cleared buffer with at least `cap` capacity,
    /// recycling a released one when available.
    pub fn acquire(&mut self, cap: usize) -> Vec<u8> {
        self.counters.add(keys::SPILL_ALLOCS, 1);
        match self.free.pop() {
            Some(mut buf) => {
                self.counters.add(keys::SPILL_REUSED, 1);
                buf.clear();
                buf.reserve(cap);
                buf
            }
            None => Vec::with_capacity(cap),
        }
    }

    /// Return a buffer for the next `acquire`; dropped (and counted)
    /// when the free-list is already at capacity.
    pub fn release(&mut self, buf: Vec<u8>) {
        if self.free.len() >= self.max_free {
            self.counters.add(keys::SPILL_EVICTED, 1);
            return;
        }
        self.free.push(buf);
    }
}

/// Runs shorter than this skip the radix machinery — a stable
/// comparison sort wins outright on tiny inputs.
const RADIX_MIN_RUN: usize = 64;

/// LSD radix sort of one partition's run, stable, keyed on
/// [`Wire::sort_prefix`] (DESIGN.md §5). The permutation is computed
/// over 16-byte `(prefix, index)` items — the typed pairs move exactly
/// once, at the end — and constant prefix bytes skip their pass
/// entirely. Because `sort_prefix` is order-consistent
/// (`k₁ < k₂ ⇒ prefix(k₁) ≤ prefix(k₂)`), equal-prefix items end up
/// contiguous; each such tie run that isn't already key-ordered gets a
/// stable comparison sort, so the final order — including stability
/// across equal keys — is exactly `sort_by(key)`'s. Types that keep the
/// default prefix of 0 degenerate to one big tie run (correct, just not
/// faster). Returns (radix passes executed, comparison fallbacks).
fn radix_sort_run<K: Wire + Ord, V: Wire>(run: &mut Vec<(K, V)>) -> (u64, u64) {
    let n = run.len();
    if n <= 1 {
        return (0, 0);
    }
    if n < RADIX_MIN_RUN {
        run.sort_by(|a, b| a.0.cmp(&b.0));
        return (0, 1);
    }
    let mut items: Vec<(u64, u32)> = run
        .iter()
        .enumerate()
        .map(|(i, (k, _))| (k.sort_prefix(), i as u32))
        .collect();
    let mut scratch: Vec<(u64, u32)> = vec![(0, 0); n];
    let mut passes = 0u64;
    for byte in 0..8 {
        let shift = byte * 8;
        let mut counts = [0usize; 256];
        for &(p, _) in &items {
            counts[((p >> shift) & 0xff) as usize] += 1;
        }
        if counts.contains(&n) {
            continue; // constant byte — this pass would be the identity
        }
        passes += 1;
        let mut offsets = [0usize; 256];
        let mut acc = 0usize;
        for (o, &c) in offsets.iter_mut().zip(&counts) {
            *o = acc;
            acc += c;
        }
        for &(p, i) in &items {
            let b = ((p >> shift) & 0xff) as usize;
            scratch[offsets[b]] = (p, i);
            offsets[b] += 1;
        }
        std::mem::swap(&mut items, &mut scratch);
    }
    // Move the typed pairs into prefix order (their one move).
    let mut src: Vec<Option<(K, V)>> = run.drain(..).map(Some).collect();
    run.extend(
        items
            .iter()
            .map(|&(_, i)| src[i as usize].take().expect("permutation visits each index once")),
    );
    // Settle equal-prefix tie runs with a stable comparison sort.
    let mut fallbacks = 0u64;
    let mut start = 0usize;
    while start < n {
        let prefix = items[start].0;
        let mut end = start + 1;
        while end < n && items[end].0 == prefix {
            end += 1;
        }
        if end - start > 1 && run[start..end].windows(2).any(|w| w[0].0 > w[1].0) {
            run[start..end].sort_by(|a, b| a.0.cmp(&b.0));
            fallbacks += 1;
        }
        start = end;
    }
    (passes, fallbacks)
}

/// Sort a spill batch by (partition, key) and bucket it into one sorted
/// run per partition — the unit of work a spill encoder executes. The
/// radix path buckets by partition with a stable counting scatter, then
/// radix-sorts each run ([`radix_sort_run`]); pass/fallback activity
/// lands on the `kernel.sort.*` counters.
fn sort_and_bucket<K: Wire + Ord, V: Wire>(
    batch: Vec<(usize, K, V)>,
    n_partitions: usize,
    radix: bool,
    counters: &Counters,
) -> Vec<Vec<(K, V)>> {
    if !radix {
        return sort_and_bucket_comparison(batch, n_partitions);
    }
    let mut counts = vec![0usize; n_partitions];
    for (p, _, _) in &batch {
        counts[*p] += 1;
    }
    let mut runs: Vec<Vec<(K, V)>> = counts.into_iter().map(Vec::with_capacity).collect();
    for (p, k, v) in batch {
        runs[p].push((k, v));
    }
    let mut passes = 0u64;
    let mut fallbacks = 0u64;
    for run in &mut runs {
        let (p, f) = radix_sort_run(run);
        passes += p;
        fallbacks += f;
    }
    if passes > 0 {
        counters.add(kernel_keys::SORT_RADIX_PASSES, passes);
    }
    if fallbacks > 0 {
        counters.add(kernel_keys::SORT_COMPARISON_FALLBACKS, fallbacks);
    }
    runs
}

/// The comparison-sort twin of [`sort_and_bucket`] — the oracle the
/// radix path is pinned to (identical runs for any batch, proptested).
fn sort_and_bucket_comparison<K: Wire + Ord, V: Wire>(
    mut batch: Vec<(usize, K, V)>,
    n_partitions: usize,
) -> Vec<Vec<(K, V)>> {
    batch.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
    let mut runs: Vec<Vec<(K, V)>> = (0..n_partitions).map(|_| Vec::new()).collect();
    for (p, k, v) in batch {
        runs[p].push((k, v));
    }
    runs
}

/// One spill's output: a sorted run per reduce partition.
type SpillRuns<K, V> = Vec<Vec<(K, V)>>;

/// Sequence-ordered slots the spill encoders fill: slot `i` holds the
/// runs of the `i`-th submitted spill, so the drain barrier hands the
/// merge the same spill order the synchronous path would have produced.
struct SpillSlots<K, V> {
    filled: Mutex<Vec<Option<SpillRuns<K, V>>>>,
    done: Condvar,
}

/// The map-side sort buffer.
pub struct SortSpillBuffer<'a, K: Wire + Ord + Clone, V: Wire> {
    io_sort_bytes: usize,
    n_partitions: usize,
    partitioner: &'a dyn Partitioner<K>,
    policy: CodecPolicy,
    current: Vec<(usize, K, V)>,
    current_bytes: usize,
    /// Each spill holds one sorted run per partition (synchronous path).
    spills: Vec<Vec<Vec<(K, V)>>>,
    /// When set, spills sort on these background encoders instead.
    pool: Option<Arc<SpillPool>>,
    slots: Arc<SpillSlots<K, V>>,
    counters: Counters,
    /// Radix-sort spill batches (default); off = comparison-sort twin.
    radix: bool,
}

impl<'a, K, V> SortSpillBuffer<'a, K, V>
where
    K: Wire + Ord + Clone + Send + 'static,
    V: Wire + Send + 'static,
{
    pub fn new(
        io_sort_bytes: usize,
        n_partitions: usize,
        partitioner: &'a dyn Partitioner<K>,
        use_compression: bool,
        counters: Counters,
    ) -> Self {
        SortSpillBuffer {
            io_sort_bytes: io_sort_bytes.max(1),
            n_partitions: n_partitions.max(1),
            partitioner,
            policy: CodecPolicy::new(use_compression, COMPRESS_MIN_BYTES),
            current: Vec::new(),
            current_bytes: 0,
            spills: Vec::new(),
            pool: None,
            slots: Arc::new(SpillSlots {
                filled: Mutex::new(Vec::new()),
                done: Condvar::new(),
            }),
            counters,
            radix: true,
        }
    }

    /// Choose the spill-sort kernel: radix on [`Wire::sort_prefix`]
    /// (default) or the comparison-sort twin. Output is identical either
    /// way; only speed changes.
    pub fn with_radix(mut self, radix: bool) -> Self {
        self.radix = radix;
        self
    }

    /// Run spills on `pool`'s background encoders; the mapper keeps
    /// buffering while previous spills sort, and
    /// [`SortSpillBuffer::finish`] drains before merging.
    pub fn with_pool(mut self, pool: Arc<SpillPool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Override the compression threshold (the `JobConfig` knob).
    pub fn with_min_compress_bytes(mut self, min_bytes: usize) -> Self {
        self.policy = CodecPolicy::new(self.policy.compress, min_bytes).with_codec(self.policy.codec);
        self
    }

    /// Use `codec` for qualifying partitions instead of the LZ default
    /// (the per-key-type [`Wire::codec_hint`] or the job override).
    pub fn with_codec(mut self, codec: Codec) -> Self {
        self.policy = self.policy.with_codec(codec);
        self
    }

    /// Buffer one record by move; spill when full. Sizing comes from
    /// [`Wire::encoded_len`], so nothing is serialized (or copied) until
    /// [`SortSpillBuffer::finish`] writes the single output backing.
    pub fn emit(&mut self, key: K, value: V) {
        let sz = key.encoded_len() + value.encoded_len();
        self.current_bytes += sz;
        self.counters.add(keys::MAP_OUTPUT_BYTES, sz as u64);
        self.counters.add(keys::MAP_OUTPUT_RECORDS, 1);
        let p = self.partitioner.partition(&key, self.n_partitions);
        self.current.push((p, key, value));
        if self.current_bytes >= self.io_sort_bytes {
            self.spill();
        }
    }

    fn spill(&mut self) {
        if self.current.is_empty() {
            return;
        }
        let batch = std::mem::take(&mut self.current);
        self.current_bytes = 0;
        self.counters.add(keys::MAP_SPILLS, 1);
        match &self.pool {
            Some(pool) => {
                // Reserve the next sequence slot, then hand the sort to
                // an encoder. The partition index was computed at emit
                // time, so the job captures only owned data.
                let idx = {
                    let mut slots = self.slots.filled.lock();
                    slots.push(None);
                    slots.len() - 1
                };
                self.counters.add(keys::SPILL_POOL_JOBS, 1);
                let n = self.n_partitions;
                let radix = self.radix;
                let slots = self.slots.clone();
                let counters = self.counters.clone();
                pool.submit(Box::new(move || {
                    let t0 = Instant::now();
                    let runs = sort_and_bucket(batch, n, radix, &counters);
                    counters.add(Phase::SortSpill.counter_key(), t0.elapsed().as_nanos() as u64);
                    let mut filled = slots.filled.lock();
                    filled[idx] = Some(runs);
                    slots.done.notify_all();
                }));
            }
            None => {
                let t0 = Instant::now();
                let runs =
                    sort_and_bucket(batch, self.n_partitions, self.radix, &self.counters);
                self.spills.push(runs);
                self.counters
                    .add(Phase::SortSpill.counter_key(), t0.elapsed().as_nanos() as u64);
            }
        }
    }

    /// Finish the map task: merge all spills into one sorted segment per
    /// partition. With a pool attached this is the drain-and-merge
    /// barrier — it waits for outstanding background spills (the wait is
    /// counted under [`keys::SPILL_POOL_DRAIN_WAIT_NANOS`]) and then
    /// merges them in submission order, producing output byte-identical
    /// to the synchronous path.
    pub fn finish(mut self) -> Vec<Segment> {
        self.spill();
        let spills: Vec<Vec<Vec<(K, V)>>> = if self.pool.is_some() {
            let t0 = Instant::now();
            let mut filled = self.slots.filled.lock();
            while filled.iter().any(|s| s.is_none()) {
                self.slots.done.wait(&mut filled);
            }
            let drained: Vec<_> = filled
                .drain(..)
                .map(|s| s.expect("drain barrier saw all slots filled"))
                .collect();
            drop(filled);
            self.counters.add(
                keys::SPILL_POOL_DRAIN_WAIT_NANOS,
                t0.elapsed().as_nanos() as u64,
            );
            drained
        } else {
            std::mem::take(&mut self.spills)
        };
        let t0 = Instant::now();
        let n_spills = spills.len();
        if n_spills > 1 {
            self.counters
                .add(keys::MAP_MERGE_SEGMENTS, n_spills as u64);
        }
        let mut per_partition: Vec<Vec<Vec<(K, V)>>> =
            (0..self.n_partitions).map(|_| Vec::new()).collect();
        for spill in spills {
            for (p, run) in spill.into_iter().enumerate() {
                if !run.is_empty() {
                    per_partition[p].push(run);
                }
            }
        }
        // Serialize every partition into ONE backing buffer; the
        // returned segments are O(1) slices of it, so reduce-side
        // fetches share the allocation instead of copying. Compressed
        // partitions encode raw into an arena-recycled scratch first
        // (one real allocation per task, reused across partitions),
        // then the codec appends to the backing.
        let mut arena = SpillArena::new(self.counters.clone());
        let mut backing: Vec<u8> = Vec::new();
        let mut metas: Vec<(usize, usize, usize, u64, Codec)> = Vec::new();
        for runs in per_partition {
            let merged = if runs.len() == 1 {
                runs.into_iter().next().unwrap()
            } else {
                merge_runs(runs)
            };
            let raw_len: usize = merged
                .iter()
                .map(|(k, v)| k.encoded_len() + v.encoded_len())
                .sum();
            let start = backing.len();
            let codec = self.policy.choose(raw_len);
            if codec.is_compressed() {
                let mut scratch = arena.acquire(raw_len);
                for (k, v) in &merged {
                    k.encode(&mut scratch);
                    v.encode(&mut scratch);
                }
                codec.encode_append(&scratch, &mut backing);
                arena.release(scratch);
                // Raw encode into scratch + the compressor's write.
                let copied = raw_len + (backing.len() - start);
                self.counters.add(keys::BYTES_COPIED, copied as u64);
            } else {
                backing.reserve(raw_len);
                for (k, v) in &merged {
                    k.encode(&mut backing);
                    v.encode(&mut backing);
                }
                self.counters.add(keys::BYTES_COPIED, raw_len as u64);
            }
            metas.push((start, backing.len(), raw_len, merged.len() as u64, codec));
        }
        let backing = SharedBytes::from_vec(backing);
        let segments: Vec<Segment> = metas
            .into_iter()
            .map(|(start, end, raw_len, records, codec)| Segment {
                data: backing.slice(start..end),
                raw_len,
                records,
                codec,
            })
            .collect();
        self.counters
            .add(Phase::MapMerge.counter_key(), t0.elapsed().as_nanos() as u64);
        segments
    }
}

/// Tracks the decoded-side resident bytes of a streaming merge: what is
/// charged here is materialized working memory (Lz decompress scratch,
/// the ≤ `merge_factor` head records under the heap) — the encoded run
/// storage (source segment windows, arena-recycled rewrite buffers) is
/// the engine's "disk" layer and is accounted under
/// [`keys::REDUCE_MERGE_BYTES`] instead. The peak lands on
/// [`keys::REDUCE_PEAK_RESIDENT`] and is bounded by `merge_factor` ×
/// source-run size, independent of how many runs feed the merge.
#[derive(Debug, Default)]
struct ResidentGauge {
    current: u64,
    peak: u64,
}

impl ResidentGauge {
    fn charge(&mut self, bytes: u64) {
        self.current += bytes;
        self.peak = self.peak.max(self.current);
    }

    fn release(&mut self, bytes: u64) {
        self.current = self.current.saturating_sub(bytes);
    }
}

/// One sorted run awaiting its turn in the multipass merge: either a
/// still-encoded shuffle segment or a run an earlier pass re-encoded
/// into an arena buffer (raw wire encoding, the in-process stand-in for
/// Hadoop's on-disk intermediate run files).
enum StreamRun {
    Pending(Segment),
    Rewritten { buf: Vec<u8>, records: u64 },
}

/// Where an active run cursor decodes from.
enum RunBuf {
    /// Zero-copy window of the source segment (raw codec) — shares the
    /// map output's backing or the DFS block mapping; nothing new is
    /// resident.
    Shared(SharedBytes),
    /// Owned decode buffer: an Lz segment's decompressed payload
    /// (charged on the gauge) or a rewritten run's arena buffer
    /// (storage-layer, returned to the arena on exhaustion).
    Owned { buf: Vec<u8>, charged: u64 },
}

/// A lazily-decoding cursor over one sorted run: records decode one at
/// a time from the run's byte window, so an active run holds at most
/// its head record in typed form.
struct RunCursor<K, V> {
    buf: RunBuf,
    pos: usize,
    remaining: u64,
    _pd: std::marker::PhantomData<(K, V)>,
}

impl<K: Wire + Ord + Clone, V: Wire> RunCursor<K, V> {
    /// Activate a run for merging. An Lz source decompresses once into
    /// an owned scratch (the one materialization, charged on `gauge`
    /// and timed as shuffle work — it is the deferred half of the
    /// fetch-and-decode the old path did eagerly); raw sources and
    /// rewritten runs decode in place.
    fn activate(
        run: StreamRun,
        gauge: &mut ResidentGauge,
        shuffle_nanos: &mut u64,
    ) -> RunCursor<K, V> {
        match run {
            StreamRun::Pending(seg) => {
                let remaining = seg.records;
                let buf = if seg.is_compressed() {
                    let t0 = Instant::now();
                    let raw = seg.codec.decode(&seg.data).expect("segment payload corrupt");
                    *shuffle_nanos += t0.elapsed().as_nanos() as u64;
                    let charged = raw.len() as u64;
                    gauge.charge(charged);
                    RunBuf::Owned { buf: raw, charged }
                } else {
                    RunBuf::Shared(seg.data)
                };
                RunCursor {
                    buf,
                    pos: 0,
                    remaining,
                    _pd: std::marker::PhantomData,
                }
            }
            StreamRun::Rewritten { buf, records } => RunCursor {
                buf: RunBuf::Owned {
                    buf,
                    charged: 0, // storage-layer bytes, not decode scratch
                },
                pos: 0,
                remaining: records,
                _pd: std::marker::PhantomData,
            },
        }
    }

    /// Decode the next record; returns the pair and its encoded size
    /// (charged on `gauge` until the caller sinks it).
    fn next(&mut self, gauge: &mut ResidentGauge) -> Option<(K, V, u64)> {
        if self.remaining == 0 {
            return None;
        }
        let slice: &[u8] = match &self.buf {
            RunBuf::Shared(b) => b,
            RunBuf::Owned { buf, .. } => buf,
        };
        let tail = &slice[self.pos..];
        let mut cur = Cursor::new(tail);
        let k = K::decode(&mut cur).expect("run key corrupt");
        let v = V::decode(&mut cur).expect("run value corrupt");
        let consumed = (tail.len() - cur.remaining()) as u64;
        self.pos += consumed as usize;
        self.remaining -= 1;
        if self.remaining == 0 {
            assert_eq!(self.pos, slice.len(), "trailing bytes in run");
        }
        gauge.charge(consumed);
        Some((k, v, consumed))
    }

    /// Release an exhausted cursor: uncharge its scratch and return the
    /// owned buffer to the arena for the next rewrite pass.
    fn retire(&mut self, arena: &mut SpillArena, gauge: &mut ResidentGauge) {
        if let RunBuf::Owned { buf, charged } =
            std::mem::replace(&mut self.buf, RunBuf::Shared(SharedBytes::new()))
        {
            gauge.release(charged);
            arena.release(buf);
        }
    }
}

/// Stable streaming k-way merge over run cursors, identical in order to
/// [`merge_runs`] (ties break by cursor index, then intra-run order).
/// At most one head record per cursor is typed-resident at any moment.
/// Runs on the [`LoserTree`] kernel; the byte-identity proptest against
/// [`reduce_merge_materialized`] (whose merge is the heap twin) pins the
/// order down.
fn merge_streams<K: Wire + Ord + Clone, V: Wire>(
    mut cursors: Vec<RunCursor<K, V>>,
    arena: &mut SpillArena,
    gauge: &mut ResidentGauge,
    mut sink: impl FnMut(K, V),
) {
    let mut heads: Vec<Option<V>> = Vec::with_capacity(cursors.len());
    let mut keys: Vec<Option<K>> = Vec::with_capacity(cursors.len());
    let mut head_bytes: Vec<u64> = vec![0; cursors.len()];
    for i in 0..cursors.len() {
        match cursors[i].next(gauge) {
            Some((k, v, sz)) => {
                keys.push(Some(k));
                heads.push(Some(v));
                head_bytes[i] = sz;
            }
            None => {
                cursors[i].retire(arena, gauge);
                keys.push(None);
                heads.push(None);
            }
        }
    }
    let mut lt = LoserTree::new(keys);
    while let Some(i) = lt.winner() {
        let v = heads[i].take().expect("head value present for winner run");
        gauge.release(head_bytes[i]);
        let next = match cursors[i].next(gauge) {
            Some((nk, nv, sz)) => {
                heads[i] = Some(nv);
                head_bytes[i] = sz;
                Some(nk)
            }
            None => {
                cursors[i].retire(arena, gauge);
                None
            }
        };
        let k = lt
            .replace_winner(i, next)
            .expect("winner leaf holds a key");
        sink(k, v);
    }
}

/// Reduce-side shuffle + streaming multipass merge: fetch one segment
/// per map task, merge them down to a single grouped stream.
///
/// Runs are consumed through lazy [`RunCursor`]s that decode one record
/// at a time from the segment's (possibly mmap-backed) byte window, so
/// at most `merge_factor` run heads — plus the output run an
/// intermediate pass is writing — are in flight at once; the old path
/// materialized every run as typed pairs up front, making reducer peak
/// memory linear in input size. Intermediate passes re-encode their
/// merged run through the [`SpillArena`] (raw wire encoding, counted
/// under [`keys::REDUCE_MERGE_BYTES`] exactly as before) and queue it as
/// storage-layer bytes. The decoded-side peak lands on
/// [`keys::REDUCE_PEAK_RESIDENT`]; see [`ResidentGauge`] for what
/// counts. Output is byte-identical to [`reduce_merge_materialized`],
/// which the equivalence proptest pins down.
pub fn reduce_merge<K: Wire + Ord + Clone, V: Wire>(
    segments: Vec<Segment>,
    merge_factor: usize,
    counters: &Counters,
) -> Vec<(K, Vec<V>)> {
    let n_runs = segments.iter().filter(|s| s.records > 0).count();
    let mut it = segments.into_iter();
    reduce_merge_streamed(n_runs, move || it.next(), merge_factor, counters)
}

/// [`reduce_merge`] with the segment supply inverted: the caller
/// promises `n_runs` nonempty source runs up front (from the shipped
/// `SegMeta` record counts) and hands over a `next_segment` supplier
/// that yields them — possibly blocking on a prefetch channel — in map
/// order, so partition fetches pipeline with the merge instead of all
/// completing before it starts.
///
/// `n_runs` must be promised because the multipass queue discipline
/// (pop `merge_factor` runs from the front, append the rewritten run at
/// the back) makes equal-key output order depend on the number of
/// nonempty runs: knowing the count up front lets the streamed path
/// reproduce [`reduce_merge`]'s pass structure — and therefore
/// byte-identical output — while only pulling a source run at the
/// moment a pass activates it. Empty segments are skipped as merge
/// inputs (exactly as the batch path filters them) but still accounted;
/// any left after the last nonempty run are drained at the end.
pub fn reduce_merge_streamed<K: Wire + Ord + Clone, V: Wire>(
    n_runs: usize,
    mut next_segment: impl FnMut() -> Option<Segment>,
    merge_factor: usize,
    counters: &Counters,
) -> Vec<(K, Vec<V>)> {
    let merge_factor = merge_factor.max(2);
    let t0 = Instant::now();
    // Per-segment shuffle accounting is unchanged from the batch path:
    // the decode copies still happen (lazily, in the merge), so the
    // same bytes are charged — just as each segment arrives.
    let account = |s: &Segment| {
        counters.add(keys::SHUFFLE_RECORDS, s.records);
        counters.add(keys::SHUFFLE_BYTES, s.wire_len() as u64);
        counters.add(keys::SHUFFLE_BYTES_RAW, s.raw_len as u64);
        if s.is_compressed() {
            counters.add(keys::SHUFFLE_SEGMENTS_COMPRESSED, 1);
        } else {
            counters.add(keys::SHUFFLE_SEGMENTS_RAW, 1);
        }
        // Decode into typed records, plus the decompressor's write.
        let copied = s.raw_len + if s.is_compressed() { s.raw_len } else { 0 };
        counters.add(keys::BYTES_COPIED, copied as u64);
    };
    // The logical multipass queue: `pending` not-yet-pulled source runs
    // at the front, rewritten runs behind them. Source runs are only
    // materialized (pulled from the supplier) when a pass activates
    // them.
    let mut pending = n_runs;
    let mut rewritten: std::collections::VecDeque<StreamRun> = std::collections::VecDeque::new();
    // Lazy decode work (codec decode at cursor activation) and time
    // spent waiting on the supplier (a blocking fetch the prefetch
    // didn't hide) are shuffle-phase time; both accumulate here and are
    // attributed at the end so the merge phase doesn't double-count
    // them.
    let mut shuffle_nanos = 0u64;
    let mut pull = |shuffle_nanos: &mut u64| -> StreamRun {
        loop {
            let ta = Instant::now();
            let s = next_segment().expect("supplier ended before promised run count");
            account(&s);
            *shuffle_nanos += ta.elapsed().as_nanos() as u64;
            if s.records > 0 {
                return StreamRun::Pending(s);
            }
        }
    };
    let mut arena = SpillArena::new(counters.clone());
    let mut gauge = ResidentGauge::default();
    // Intermediate passes: merge `merge_factor` runs at a time,
    // re-encoding the merged run into an arena buffer
    // (REDUCE_MERGE_BYTES counts the same encoded length as the
    // materializing oracle).
    while pending + rewritten.len() > merge_factor {
        let take = merge_factor.min(pending + rewritten.len());
        let cursors: Vec<RunCursor<K, V>> = (0..take)
            .map(|_| {
                let run = if pending > 0 {
                    pending -= 1;
                    pull(&mut shuffle_nanos)
                } else {
                    rewritten.pop_front().unwrap()
                };
                RunCursor::activate(run, &mut gauge, &mut shuffle_nanos)
            })
            .collect();
        let mut out = arena.acquire(0);
        let mut records = 0u64;
        merge_streams(cursors, &mut arena, &mut gauge, |k: K, v: V| {
            k.encode(&mut out);
            v.encode(&mut out);
            records += 1;
        });
        counters.add(keys::REDUCE_MERGE_PASSES, 1);
        counters.add(keys::REDUCE_MERGE_BYTES, out.len() as u64);
        rewritten.push_back(StreamRun::Rewritten { buf: out, records });
    }
    // Final pass: merge the remaining ≤ merge_factor runs, grouping
    // consecutive equal keys straight off the stream.
    let cursors: Vec<RunCursor<K, V>> = (0..pending + rewritten.len())
        .map(|_| {
            let run = if pending > 0 {
                pending -= 1;
                pull(&mut shuffle_nanos)
            } else {
                rewritten.pop_front().unwrap()
            };
            RunCursor::activate(run, &mut gauge, &mut shuffle_nanos)
        })
        .collect();
    let mut out: Vec<(K, Vec<V>)> = Vec::new();
    merge_streams(cursors, &mut arena, &mut gauge, |k: K, v: V| {
        match out.last_mut() {
            Some((lk, vs)) if *lk == k => vs.push(v),
            _ => out.push((k, vec![v])),
        }
    });
    // Trailing empty segments (after the last nonempty run) were never
    // pulled by a pass; drain them so their accounting still lands.
    {
        let ta = Instant::now();
        while let Some(s) = next_segment() {
            debug_assert_eq!(s.records, 0, "nonempty run beyond the promised count");
            account(&s);
        }
        shuffle_nanos += ta.elapsed().as_nanos() as u64;
    }
    counters.add(keys::REDUCE_INPUT_GROUPS, out.len() as u64);
    counters.add(keys::REDUCE_PEAK_RESIDENT, gauge.peak);
    counters.add(Phase::Shuffle.counter_key(), shuffle_nanos);
    counters.add(
        Phase::ReduceMerge.counter_key(),
        (t0.elapsed().as_nanos() as u64).saturating_sub(shuffle_nanos),
    );
    out
}

/// The pre-streaming reduce merge: decode every segment into typed
/// pairs up front, then multipass-merge the materialized runs. Retained
/// as the equivalence oracle for [`reduce_merge`] — the streaming path
/// must produce byte-identical grouped output (same keys, same value
/// order) for any segment set, codec mix, and `merge_factor`.
pub fn reduce_merge_materialized<K: Wire + Ord + Clone, V: Wire>(
    segments: Vec<Segment>,
    merge_factor: usize,
    counters: &Counters,
) -> Vec<(K, Vec<V>)> {
    let merge_factor = merge_factor.max(2);
    let mut runs: std::collections::VecDeque<Vec<(K, V)>> = segments
        .iter()
        .filter(|s| s.records > 0)
        .map(|s| s.to_pairs())
        .collect();
    while runs.len() > merge_factor {
        let take = merge_factor.min(runs.len());
        let batch: Vec<Vec<(K, V)>> = (0..take).map(|_| runs.pop_front().unwrap()).collect();
        let merged = merge_runs_heap(batch);
        counters.add(keys::REDUCE_MERGE_PASSES, 1);
        runs.push_back(merged);
    }
    let merged = merge_runs_heap(runs.into_iter().collect());
    let mut out: Vec<(K, Vec<V>)> = Vec::new();
    for (k, v) in merged {
        match out.last_mut() {
            Some((lk, vs)) if *lk == k => vs.push(v),
            _ => out.push((k, vec![v])),
        }
    }
    counters.add(keys::REDUCE_INPUT_GROUPS, out.len() as u64);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::HashPartitioner;

    #[test]
    fn segment_roundtrip_compressed_and_raw() {
        let pairs: Vec<(String, u64)> = (0..500)
            .map(|i| (format!("key{:04}", i % 50), i))
            .collect();
        for comp in [false, true] {
            let seg = Segment::from_pairs(&pairs, comp);
            assert_eq!(seg.records, 500);
            assert_eq!(seg.is_compressed(), comp);
            let back: Vec<(String, u64)> = seg.to_pairs();
            assert_eq!(back, pairs);
            if comp {
                assert!(seg.wire_len() < seg.raw_len, "repetitive keys compress");
            }
        }
    }

    #[test]
    fn codec_policy_threshold_is_a_knob() {
        let pairs: Vec<(String, u64)> = (0..20).map(|i| (format!("k{i:02}"), i)).collect();
        // Under the default 1 KiB threshold this payload stays raw …
        let seg = Segment::from_pairs(&pairs, true);
        assert_eq!(seg.codec, Codec::Raw);
        // … but a per-job threshold of 1 byte compresses it.
        let seg = Segment::from_pairs_with(&pairs, CodecPolicy::new(true, 1));
        assert_eq!(seg.codec, Codec::Lz);
        assert_eq!(seg.to_pairs::<String, u64>(), pairs);
        // Empty payloads never carry a codec container, even at min 0.
        let seg = Segment::from_pairs_with::<String, u64>(&[], CodecPolicy::new(true, 0));
        assert_eq!(seg.codec, Codec::Raw);
        assert_eq!(seg.wire_len(), 0);
    }

    #[test]
    fn frame_roundtrip_is_zero_copy() {
        let a = Segment::from_pairs(&[(1u64, 10u64), (2, 20)], false);
        let b = Segment::from_pairs_with(
            &(0..300u64).map(|i| (i % 9, i)).collect::<Vec<_>>(),
            CodecPolicy::new(true, 16),
        );
        assert!(b.is_compressed());
        let mut wire = Vec::new();
        write_frame(&a, &mut wire);
        write_frame(&b, &mut wire);
        let wire = SharedBytes::from_vec(wire);
        let (ra, next) = read_frame(&wire, 0).unwrap();
        let (rb, end) = read_frame(&wire, next).unwrap();
        assert_eq!(end, wire.len());
        assert_eq!(ra.records, a.records);
        assert_eq!(ra.codec, Codec::Raw);
        assert_eq!(rb.codec, Codec::Lz);
        assert_eq!(rb.raw_len, b.raw_len);
        // The decoded payloads are windows of the enclosing buffer — a
        // compressed frame travels onward as a refcount bump.
        assert!(ra.data.same_backing(&wire));
        assert!(rb.data.same_backing(&wire));
        assert_eq!(ra.to_pairs::<u64, u64>(), a.to_pairs::<u64, u64>());
        assert_eq!(rb.to_pairs::<u64, u64>(), b.to_pairs::<u64, u64>());
    }

    #[test]
    fn frame_rejects_truncation_and_bad_tags() {
        let seg = Segment::from_pairs(&[(7u64, 8u64)], false);
        let mut wire = Vec::new();
        write_frame(&seg, &mut wire);
        // Bad codec tag.
        let mut bad = wire.clone();
        bad[0] = 0x7f;
        assert!(read_frame(&SharedBytes::from_vec(bad), 0).is_err());
        // Truncated header and truncated payload.
        let hdr = SharedBytes::from_vec(wire[..FRAME_HEADER_BYTES - 1].to_vec());
        assert!(read_frame(&hdr, 0).is_err());
        let cut = SharedBytes::from_vec(wire[..wire.len() - 1].to_vec());
        assert!(read_frame(&cut, 0).is_err());
        // Offset past the end.
        let whole = SharedBytes::from_vec(wire);
        assert!(read_frame(&whole, whole.len() + 1).is_err());
    }

    #[test]
    fn merge_runs_is_sorted_and_stable() {
        let a = vec![("a".to_string(), 1u64), ("c".into(), 2), ("e".into(), 3)];
        let b = vec![("a".to_string(), 10u64), ("b".into(), 11)];
        let merged = merge_runs(vec![a, b]);
        let keys: Vec<&str> = merged.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["a", "a", "b", "c", "e"]);
        // Stability: run 0's "a" precedes run 1's.
        assert_eq!(merged[0].1, 1);
        assert_eq!(merged[1].1, 10);
    }

    #[test]
    fn merge_runs_empty_inputs() {
        let merged: Vec<(u64, u64)> = merge_runs(vec![]);
        assert!(merged.is_empty());
        let merged: Vec<(u64, u64)> = merge_runs(vec![vec![], vec![(1, 2)], vec![]]);
        assert_eq!(merged, vec![(1, 2)]);
    }

    #[test]
    fn loser_tree_merge_matches_heap_oracle() {
        // Deterministic pseudo-random runs, duplicate-heavy keys, varied
        // run counts (1, power-of-two, odd): loser tree == heap, always.
        let mut x = 42u64;
        let mut rand = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            x >> 33
        };
        for n_runs in [1usize, 2, 3, 7, 8, 13] {
            let runs: Vec<Vec<(u64, u64)>> = (0..n_runs)
                .map(|r| {
                    let len = (rand() % 40) as usize;
                    let mut run: Vec<(u64, u64)> =
                        (0..len).map(|i| (rand() % 10, (r * 1000 + i) as u64)).collect();
                    run.sort_by_key(|&(k, _)| k);
                    run
                })
                .collect();
            assert_eq!(
                merge_runs(runs.clone()),
                merge_runs_heap(runs),
                "n_runs={n_runs}"
            );
        }
    }

    #[test]
    fn radix_sort_matches_comparison_twin() {
        let mut x = 99u64;
        let mut rand = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            x >> 33
        };
        let counters = Counters::new();
        // String keys exercise the 8-byte-prefix + tie-run path; shared
        // long prefixes force comparison fallbacks past byte 8.
        let batch: Vec<(usize, String, u64)> = (0..500)
            .map(|i| {
                let p = (rand() % 3) as usize;
                let k = format!("shared-prefix-{:06}", rand() % 120);
                (p, k, i)
            })
            .collect();
        let fast = sort_and_bucket(batch.clone(), 3, true, &counters);
        let slow = sort_and_bucket_comparison(batch, 3);
        assert_eq!(fast, slow);
        assert!(counters.get(kernel_keys::SORT_COMPARISON_FALLBACKS) > 0);

        // u64 keys: prefix IS the key — passes run, no unsorted tie runs.
        let counters = Counters::new();
        let batch: Vec<(usize, u64, u64)> = (0..500)
            .map(|i| ((rand() % 2) as usize, rand() % 100_000, i))
            .collect();
        let fast = sort_and_bucket(batch.clone(), 2, true, &counters);
        let slow = sort_and_bucket_comparison(batch, 2);
        assert_eq!(fast, slow);
        assert!(counters.get(kernel_keys::SORT_RADIX_PASSES) > 0);
        assert_eq!(counters.get(kernel_keys::SORT_COMPARISON_FALLBACKS), 0);
    }

    #[test]
    fn radix_sort_run_edge_cases() {
        // Empty and singleton runs cost nothing.
        let mut run: Vec<(u64, u64)> = vec![];
        assert_eq!(radix_sort_run(&mut run), (0, 0));
        let mut run = vec![(5u64, 0u64)];
        assert_eq!(radix_sort_run(&mut run), (0, 0));
        // All-equal keys: stability preserves emission order, no
        // fallback sort is spent on an already-ordered tie run.
        let mut run: Vec<(u64, u64)> = (0..200).map(|i| (7u64, i)).collect();
        let (_, fallbacks) = radix_sort_run(&mut run);
        assert_eq!(fallbacks, 0);
        assert_eq!(run, (0..200).map(|i| (7u64, i)).collect::<Vec<_>>());
        // Signed keys cross the negative/positive boundary correctly.
        let mut run: Vec<(i64, u64)> = (0..200i64)
            .map(|i| (if i % 2 == 0 { -i } else { i }, i as u64))
            .collect();
        let mut expect = run.clone();
        radix_sort_run(&mut run);
        expect.sort_by_key(|a| a.0);
        assert_eq!(run, expect);
    }

    #[test]
    fn sort_buffer_spills_when_full() {
        let counters = Counters::new();
        let p = HashPartitioner;
        let mut buf: SortSpillBuffer<'_, u64, u64> =
            SortSpillBuffer::new(256, 2, &p, false, counters.clone());
        for i in 0..200u64 {
            buf.emit(i % 37, i);
        }
        let segs = buf.finish();
        assert_eq!(segs.len(), 2);
        assert!(counters.get(keys::MAP_SPILLS) > 1, "tiny buffer must spill");
        assert_eq!(counters.get(keys::MAP_OUTPUT_RECORDS), 200);
        // All records preserved, each segment sorted.
        let mut n = 0;
        for s in &segs {
            let pairs: Vec<(u64, u64)> = s.to_pairs();
            assert!(pairs.windows(2).all(|w| w[0].0 <= w[1].0));
            n += pairs.len();
        }
        assert_eq!(n, 200);
    }

    #[test]
    fn partitioning_respects_partitioner() {
        let counters = Counters::new();
        let p = crate::task::FnPartitioner::new(|k: &u64, n| (*k as usize) % n);
        let mut buf: SortSpillBuffer<'_, u64, String> =
            SortSpillBuffer::new(1 << 20, 3, &p, false, counters);
        for i in 0..60u64 {
            buf.emit(i, format!("v{i}"));
        }
        let segs = buf.finish();
        for (pi, s) in segs.iter().enumerate() {
            for (k, _) in s.to_pairs::<u64, String>() {
                assert_eq!(k as usize % 3, pi);
            }
        }
    }

    #[test]
    fn reduce_merge_groups_by_key() {
        let counters = Counters::new();
        let seg1 = Segment::from_pairs(&[(1u64, 10u64), (2, 20)], false);
        let seg2 = Segment::from_pairs(&[(1u64, 11u64), (3, 30)], false);
        let grouped = reduce_merge::<u64, u64>(vec![seg1, seg2], 10, &counters);
        assert_eq!(
            grouped,
            vec![(1, vec![10, 11]), (2, vec![20]), (3, vec![30])]
        );
        assert_eq!(counters.get(keys::SHUFFLE_RECORDS), 4);
        assert_eq!(counters.get(keys::REDUCE_INPUT_GROUPS), 3);
        assert_eq!(counters.get(keys::REDUCE_MERGE_PASSES), 0);
        assert_eq!(counters.get(keys::SHUFFLE_SEGMENTS_RAW), 2);
        assert_eq!(counters.get(keys::SHUFFLE_SEGMENTS_COMPRESSED), 0);
    }

    #[test]
    fn reduce_merge_multipass_when_many_segments() {
        let counters = Counters::new();
        let segments: Vec<Segment> = (0..20u64)
            .map(|s| Segment::from_pairs(&[(s, s * 100), (s + 100, s)], false))
            .collect();
        let grouped = reduce_merge::<u64, u64>(segments, 4, &counters);
        assert_eq!(grouped.len(), 40);
        assert!(
            counters.get(keys::REDUCE_MERGE_PASSES) >= 4,
            "20 segments at factor 4 need multiple passes, got {}",
            counters.get(keys::REDUCE_MERGE_PASSES)
        );
        assert!(counters.get(keys::REDUCE_MERGE_BYTES) > 0);
        // Sorted overall.
        let ks: Vec<u64> = grouped.iter().map(|(k, _)| *k).collect();
        let mut sorted = ks.clone();
        sorted.sort_unstable();
        assert_eq!(ks, sorted);
    }

    #[test]
    fn fewer_segments_than_factor_means_no_extra_pass() {
        let counters = Counters::new();
        let segments: Vec<Segment> = (0..5u64)
            .map(|s| Segment::from_pairs(&[(s, s)], false))
            .collect();
        let _ = reduce_merge::<u64, u64>(segments, 10, &counters);
        assert_eq!(counters.get(keys::REDUCE_MERGE_PASSES), 0);
    }

    #[test]
    fn finish_partitions_share_one_backing() {
        // The zero-copy contract of the shuffle: a map task's segments
        // are windows of ONE backing, and the reduce-side fetch (a
        // segment clone) shares it — pointer identity, no payload copy.
        let counters = Counters::new();
        let p = crate::task::FnPartitioner::new(|k: &u64, n| (*k as usize) % n);
        let mut buf: SortSpillBuffer<'_, u64, u64> =
            SortSpillBuffer::new(256, 4, &p, false, counters);
        for i in 0..300u64 {
            buf.emit(i, i * 7);
        }
        let segs = buf.finish();
        assert_eq!(segs.len(), 4);
        for pair in segs.windows(2) {
            assert!(
                pair[0].data.same_backing(&pair[1].data),
                "partition segments must slice one backing"
            );
        }
        let fetched = segs[0].clone();
        assert!(
            fetched.data.same_backing(&segs[0].data),
            "reduce-side fetch must not copy the payload"
        );
    }

    #[test]
    fn spill_arena_recycles_buffers() {
        let counters = Counters::new();
        let mut arena = SpillArena::new(counters.clone());
        let a = arena.acquire(1024);
        arena.release(a);
        let b = arena.acquire(512);
        arena.release(b);
        let _c = arena.acquire(2048);
        assert_eq!(counters.get(keys::SPILL_ALLOCS), 3);
        assert_eq!(counters.get(keys::SPILL_REUSED), 2);
        assert_eq!(counters.get(keys::SPILL_EVICTED), 0);
    }

    #[test]
    fn spill_arena_free_list_is_capped() {
        let counters = Counters::new();
        let mut arena = SpillArena::with_cap(counters.clone(), 2);
        let bufs: Vec<Vec<u8>> = (0..5).map(|_| arena.acquire(64)).collect();
        for b in bufs {
            arena.release(b);
        }
        // 2 held, 3 dropped at the cap.
        assert_eq!(counters.get(keys::SPILL_EVICTED), 3);
        let _ = arena.acquire(64);
        let _ = arena.acquire(64);
        assert_eq!(counters.get(keys::SPILL_REUSED), 2);
    }

    #[test]
    fn shuffle_roundtrip_compression_on_off() {
        // End-to-end sort-spill-merge → reduce fetch, with the codec on
        // and off: grouped output must be identical either way.
        let p = HashPartitioner;
        let mut outputs = Vec::new();
        for comp in [false, true] {
            let counters = Counters::new();
            let mut buf: SortSpillBuffer<'_, String, u64> =
                SortSpillBuffer::new(512, 3, &p, comp, counters.clone());
            for i in 0..400u64 {
                buf.emit(format!("key{:03}", i % 40), i);
            }
            let segs = buf.finish();
            if comp {
                assert!(
                    segs.iter().any(|s| s.is_compressed()),
                    "repetitive keys above the threshold must compress"
                );
            } else {
                assert!(segs.iter().all(|s| !s.is_compressed()));
            }
            let mut grouped = Vec::new();
            for seg in segs {
                grouped.extend(reduce_merge::<String, u64>(vec![seg], 4, &counters));
            }
            grouped.sort();
            assert_eq!(counters.get(keys::SHUFFLE_RECORDS), 400);
            outputs.push(grouped);
        }
        assert_eq!(outputs[0], outputs[1]);
        assert_eq!(outputs[0].len(), 40);
    }

    #[test]
    fn async_spill_is_byte_identical_to_sync() {
        // The determinism contract of the overlapped pipeline: with the
        // same emit stream, the async path's merged segments must be
        // byte-for-byte the sync path's, codec on or off.
        let p = HashPartitioner;
        for comp in [false, true] {
            let sync_segs = {
                let counters = Counters::new();
                let mut buf: SortSpillBuffer<'_, String, u64> =
                    SortSpillBuffer::new(512, 3, &p, comp, counters);
                for i in 0..600u64 {
                    buf.emit(format!("key{:03}", i % 53), i);
                }
                buf.finish()
            };
            let async_segs = {
                let pool = Arc::new(SpillPool::new(3, 2));
                let counters = Counters::new();
                let mut buf: SortSpillBuffer<'_, String, u64> =
                    SortSpillBuffer::new(512, 3, &p, comp, counters.clone())
                        .with_pool(pool.clone());
                for i in 0..600u64 {
                    buf.emit(format!("key{:03}", i % 53), i);
                }
                let segs = buf.finish();
                assert!(
                    counters.get(keys::SPILL_POOL_JOBS) > 1,
                    "tiny buffer must spill through the pool"
                );
                assert_eq!(
                    counters.get(keys::SPILL_POOL_JOBS),
                    counters.get(keys::MAP_SPILLS)
                );
                assert_eq!(pool.jobs_run(), counters.get(keys::SPILL_POOL_JOBS));
                segs
            };
            assert_eq!(sync_segs.len(), async_segs.len());
            for (s, a) in sync_segs.iter().zip(&async_segs) {
                assert_eq!(s.codec, a.codec);
                assert_eq!(s.records, a.records);
                assert_eq!(s.raw_len, a.raw_len);
                assert_eq!(&s.data[..], &a.data[..], "merged payloads must match");
            }
        }
    }
}
