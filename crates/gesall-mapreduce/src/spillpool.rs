//! The spill-encoder pool: background workers that sort spill batches
//! while the mapper keeps buffering (DESIGN.md §3 15/16).
//!
//! Hadoop's map task overlaps `io.sort.mb` spills with user map code via
//! `SpillThread`; synchronously sorting every full buffer on the map
//! thread serializes CPU that the paper's phase breakdowns show can hide
//! under the map phase. A [`SpillPool`] is a small engine-wide pool of
//! workers fed through a **bounded** queue: submission blocks when the
//! queue is full, so a mapper that out-produces the encoders backpressures
//! instead of buffering unboundedly. A map task's
//! [`finish`](crate::shuffle::SortSpillBuffer::finish) becomes a
//! drain-and-merge barrier that waits for its outstanding spills before
//! merging — the determinism contract (spills land in submission order)
//! is preserved, which the async-vs-sync byte-identity test pins down.

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    queue: VecDeque<Job>,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Workers wait here for jobs.
    not_empty: Condvar,
    /// Submitters wait here when the queue is at capacity (backpressure).
    not_full: Condvar,
    queue_cap: usize,
    /// Nanoseconds workers spent executing jobs — the numerator of the
    /// bench-smoke spill-overlap metric.
    busy_nanos: AtomicU64,
    /// Submissions that had to wait on a full queue.
    submit_waits: AtomicU64,
    jobs_run: AtomicU64,
}

/// Blocked submissions tolerated before the pool adds a worker: one
/// wait can be a scheduling blip, but sustained backpressure means the
/// encoders are the bottleneck, not the mappers.
const GROW_WAITS_PER_WORKER: u64 = 4;

/// A pool of spill-encoder worker threads with a bounded job queue.
/// The pool starts small and **grows itself** from observed submit-wait
/// pressure: every [`GROW_WAITS_PER_WORKER`] blocked submissions since
/// the last growth add one worker, up to `max_workers` — so an
/// all-spill workload gets encoder parallelism without idle threads on
/// map-light jobs. Dropping the pool drains remaining jobs and joins
/// the workers.
pub struct SpillPool {
    shared: Arc<PoolShared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    max_workers: usize,
    /// `submit_waits` value when the pool last grew (or started).
    grow_mark: AtomicU64,
    /// Workers added by pressure-driven growth.
    workers_grown: AtomicU64,
}

impl SpillPool {
    /// A fixed-size pool: `n_workers` threads behind a queue of at most
    /// `queue_cap` waiting jobs (both floored at 1). Never grows.
    pub fn new(n_workers: usize, queue_cap: usize) -> SpillPool {
        SpillPool::adaptive(n_workers, n_workers, queue_cap)
    }

    /// A pressure-scaled pool: starts with `initial_workers` threads and
    /// grows toward `max_workers` as submissions block on the full
    /// queue (all sizes floored at 1).
    pub fn adaptive(initial_workers: usize, max_workers: usize, queue_cap: usize) -> SpillPool {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            queue_cap: queue_cap.max(1),
            busy_nanos: AtomicU64::new(0),
            submit_waits: AtomicU64::new(0),
            jobs_run: AtomicU64::new(0),
        });
        let initial = initial_workers.max(1);
        let workers = (0..initial)
            .map(|i| spawn_worker(&shared, i))
            .collect();
        SpillPool {
            shared,
            workers: Mutex::new(workers),
            max_workers: max_workers.max(initial),
            grow_mark: AtomicU64::new(0),
            workers_grown: AtomicU64::new(0),
        }
    }

    /// Enqueue a job, blocking while the queue is at capacity. The wait
    /// is the designed backpressure: a mapper that emits faster than the
    /// encoders drain stalls here instead of growing memory — and
    /// repeated waits are the growth signal.
    pub fn submit(&self, job: Job) {
        let mut st = self.shared.state.lock();
        let mut waited = false;
        while st.queue.len() >= self.shared.queue_cap && !st.shutdown {
            waited = true;
            self.shared.not_full.wait(&mut st);
        }
        st.queue.push_back(job);
        drop(st);
        self.shared.not_empty.notify_one();
        if waited {
            let waits = self.shared.submit_waits.fetch_add(1, Ordering::Relaxed) + 1;
            self.maybe_grow(waits);
        }
    }

    /// Add a worker if wait pressure since the last growth crossed the
    /// threshold and the cap allows it.
    fn maybe_grow(&self, waits: u64) {
        let mut workers = self.workers.lock();
        if workers.len() >= self.max_workers {
            return;
        }
        if waits < self.grow_mark.load(Ordering::Relaxed) + GROW_WAITS_PER_WORKER {
            return;
        }
        self.grow_mark.store(waits, Ordering::Relaxed);
        let handle = spawn_worker(&self.shared, workers.len());
        workers.push(handle);
        self.workers_grown.fetch_add(1, Ordering::Relaxed);
    }

    /// Total nanoseconds workers have spent executing jobs.
    pub fn busy_nanos(&self) -> u64 {
        self.shared.busy_nanos.load(Ordering::Relaxed)
    }

    /// Submissions that blocked on a full queue.
    pub fn submit_waits(&self) -> u64 {
        self.shared.submit_waits.load(Ordering::Relaxed)
    }

    /// Jobs executed to completion.
    pub fn jobs_run(&self) -> u64 {
        self.shared.jobs_run.load(Ordering::Relaxed)
    }

    /// Workers added by pressure-driven growth since construction.
    pub fn workers_grown(&self) -> u64 {
        self.workers_grown.load(Ordering::Relaxed)
    }

    pub fn n_workers(&self) -> usize {
        self.workers.lock().len()
    }
}

fn spawn_worker(shared: &Arc<PoolShared>, index: usize) -> JoinHandle<()> {
    let shared = shared.clone();
    std::thread::Builder::new()
        .name(format!("spill-encoder-{index}"))
        .spawn(move || worker_loop(&shared))
        .expect("spawn spill-encoder worker")
}

impl Drop for SpillPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock();
            st.shutdown = true;
        }
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
        for w in self.workers.get_mut().drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut st = shared.state.lock();
            loop {
                if let Some(job) = st.queue.pop_front() {
                    break job;
                }
                if st.shutdown {
                    return;
                }
                shared.not_empty.wait(&mut st);
            }
        };
        shared.not_full.notify_one();
        let t0 = Instant::now();
        job();
        shared
            .busy_nanos
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        shared.jobs_run.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn runs_all_jobs_and_counts_busy_time() {
        let pool = SpillPool::new(2, 4);
        let hits = Arc::new(AtomicUsize::new(0));
        for _ in 0..16 {
            let hits = hits.clone();
            pool.submit(Box::new(move || {
                std::thread::sleep(std::time::Duration::from_micros(200));
                hits.fetch_add(1, Ordering::SeqCst);
            }));
        }
        drop(pool); // drains the queue and joins
        assert_eq!(hits.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn busy_nanos_accumulate() {
        let pool = SpillPool::new(1, 2);
        pool.submit(Box::new(|| {
            std::thread::sleep(std::time::Duration::from_millis(2));
        }));
        // Wait for the job to complete, then check the gauge.
        while pool.jobs_run() < 1 {
            std::thread::sleep(std::time::Duration::from_micros(100));
        }
        assert!(pool.busy_nanos() >= 1_000_000, "≥1ms of busy time recorded");
    }

    #[test]
    fn bounded_queue_backpressures_submitters() {
        // One deliberately-slow worker and a queue of 1: the third
        // submission must block until the worker drains a slot.
        let pool = SpillPool::new(1, 1);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        {
            let gate = gate.clone();
            pool.submit(Box::new(move || {
                let (m, cv) = &*gate;
                let mut open = m.lock();
                while !*open {
                    cv.wait(&mut open);
                }
            }));
        }
        pool.submit(Box::new(|| {})); // fills the queue
        let t0 = Instant::now();
        let opener = {
            let gate = gate.clone();
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(5));
                let (m, cv) = &*gate;
                *m.lock() = true;
                cv.notify_all();
            })
        };
        pool.submit(Box::new(|| {})); // must wait for the gate to open
        assert!(
            t0.elapsed() >= std::time::Duration::from_millis(4),
            "submission should have blocked on the full queue"
        );
        assert!(pool.submit_waits() >= 1);
        opener.join().unwrap();
    }

    #[test]
    fn drop_with_empty_queue_exits_cleanly() {
        let pool = SpillPool::new(3, 2);
        drop(pool);
    }

    #[test]
    fn adaptive_pool_grows_under_sustained_backpressure() {
        // One slow worker behind a queue of 1: most of the 48
        // submissions block, and every GROW_WAITS_PER_WORKER blocked
        // submissions add a worker up to the cap of 4.
        let pool = SpillPool::adaptive(1, 4, 1);
        let hits = Arc::new(AtomicUsize::new(0));
        for _ in 0..48 {
            let hits = hits.clone();
            pool.submit(Box::new(move || {
                std::thread::sleep(std::time::Duration::from_micros(500));
                hits.fetch_add(1, Ordering::SeqCst);
            }));
        }
        assert!(
            pool.submit_waits() >= GROW_WAITS_PER_WORKER,
            "the slow single worker must have caused backpressure"
        );
        assert!(
            pool.workers_grown() >= 1,
            "sustained waits must grow the pool (waits={})",
            pool.submit_waits()
        );
        assert!(pool.n_workers() > 1 && pool.n_workers() <= 4);
        drop(pool);
        assert_eq!(hits.load(Ordering::SeqCst), 48);
    }

    #[test]
    fn fixed_pool_never_grows() {
        let pool = SpillPool::new(1, 1);
        for _ in 0..24 {
            pool.submit(Box::new(|| {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }));
        }
        assert_eq!(pool.workers_grown(), 0);
        assert_eq!(pool.n_workers(), 1);
    }
}
