//! The spill-encoder pool: background workers that sort spill batches
//! while the mapper keeps buffering (DESIGN.md §3 15/16).
//!
//! Hadoop's map task overlaps `io.sort.mb` spills with user map code via
//! `SpillThread`; synchronously sorting every full buffer on the map
//! thread serializes CPU that the paper's phase breakdowns show can hide
//! under the map phase. A [`SpillPool`] is a small engine-wide pool of
//! workers fed through a **bounded** queue: submission blocks when the
//! queue is full, so a mapper that out-produces the encoders backpressures
//! instead of buffering unboundedly. A map task's
//! [`finish`](crate::shuffle::SortSpillBuffer::finish) becomes a
//! drain-and-merge barrier that waits for its outstanding spills before
//! merging — the determinism contract (spills land in submission order)
//! is preserved, which the async-vs-sync byte-identity test pins down.

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    queue: VecDeque<Job>,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Workers wait here for jobs.
    not_empty: Condvar,
    /// Submitters wait here when the queue is at capacity (backpressure).
    not_full: Condvar,
    queue_cap: usize,
    /// Nanoseconds workers spent executing jobs — the numerator of the
    /// bench-smoke spill-overlap metric.
    busy_nanos: AtomicU64,
    /// Submissions that had to wait on a full queue.
    submit_waits: AtomicU64,
    jobs_run: AtomicU64,
}

/// A fixed pool of spill-encoder worker threads with a bounded job
/// queue. Dropping the pool drains remaining jobs and joins the workers.
pub struct SpillPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl SpillPool {
    /// `n_workers` threads behind a queue of at most `queue_cap` waiting
    /// jobs (both floored at 1).
    pub fn new(n_workers: usize, queue_cap: usize) -> SpillPool {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            queue_cap: queue_cap.max(1),
            busy_nanos: AtomicU64::new(0),
            submit_waits: AtomicU64::new(0),
            jobs_run: AtomicU64::new(0),
        });
        let workers = (0..n_workers.max(1))
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("spill-encoder-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn spill-encoder worker")
            })
            .collect();
        SpillPool { shared, workers }
    }

    /// Enqueue a job, blocking while the queue is at capacity. The wait
    /// is the designed backpressure: a mapper that emits faster than the
    /// encoders drain stalls here instead of growing memory.
    pub fn submit(&self, job: Job) {
        let mut st = self.shared.state.lock();
        let mut waited = false;
        while st.queue.len() >= self.shared.queue_cap && !st.shutdown {
            waited = true;
            self.shared.not_full.wait(&mut st);
        }
        if waited {
            self.shared.submit_waits.fetch_add(1, Ordering::Relaxed);
        }
        st.queue.push_back(job);
        drop(st);
        self.shared.not_empty.notify_one();
    }

    /// Total nanoseconds workers have spent executing jobs.
    pub fn busy_nanos(&self) -> u64 {
        self.shared.busy_nanos.load(Ordering::Relaxed)
    }

    /// Submissions that blocked on a full queue.
    pub fn submit_waits(&self) -> u64 {
        self.shared.submit_waits.load(Ordering::Relaxed)
    }

    /// Jobs executed to completion.
    pub fn jobs_run(&self) -> u64 {
        self.shared.jobs_run.load(Ordering::Relaxed)
    }

    pub fn n_workers(&self) -> usize {
        self.workers.len()
    }
}

impl Drop for SpillPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock();
            st.shutdown = true;
        }
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut st = shared.state.lock();
            loop {
                if let Some(job) = st.queue.pop_front() {
                    break job;
                }
                if st.shutdown {
                    return;
                }
                shared.not_empty.wait(&mut st);
            }
        };
        shared.not_full.notify_one();
        let t0 = Instant::now();
        job();
        shared
            .busy_nanos
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        shared.jobs_run.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn runs_all_jobs_and_counts_busy_time() {
        let pool = SpillPool::new(2, 4);
        let hits = Arc::new(AtomicUsize::new(0));
        for _ in 0..16 {
            let hits = hits.clone();
            pool.submit(Box::new(move || {
                std::thread::sleep(std::time::Duration::from_micros(200));
                hits.fetch_add(1, Ordering::SeqCst);
            }));
        }
        drop(pool); // drains the queue and joins
        assert_eq!(hits.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn busy_nanos_accumulate() {
        let pool = SpillPool::new(1, 2);
        pool.submit(Box::new(|| {
            std::thread::sleep(std::time::Duration::from_millis(2));
        }));
        // Wait for the job to complete, then check the gauge.
        while pool.jobs_run() < 1 {
            std::thread::sleep(std::time::Duration::from_micros(100));
        }
        assert!(pool.busy_nanos() >= 1_000_000, "≥1ms of busy time recorded");
    }

    #[test]
    fn bounded_queue_backpressures_submitters() {
        // One deliberately-slow worker and a queue of 1: the third
        // submission must block until the worker drains a slot.
        let pool = SpillPool::new(1, 1);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        {
            let gate = gate.clone();
            pool.submit(Box::new(move || {
                let (m, cv) = &*gate;
                let mut open = m.lock();
                while !*open {
                    cv.wait(&mut open);
                }
            }));
        }
        pool.submit(Box::new(|| {})); // fills the queue
        let t0 = Instant::now();
        let opener = {
            let gate = gate.clone();
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(5));
                let (m, cv) = &*gate;
                *m.lock() = true;
                cv.notify_all();
            })
        };
        pool.submit(Box::new(|| {})); // must wait for the gate to open
        assert!(
            t0.elapsed() >= std::time::Duration::from_millis(4),
            "submission should have blocked on the full queue"
        );
        assert!(pool.submit_waits() >= 1);
        opener.join().unwrap();
    }

    #[test]
    fn drop_with_empty_queue_exits_cleanly() {
        let pool = SpillPool::new(3, 2);
        drop(pool);
    }
}
