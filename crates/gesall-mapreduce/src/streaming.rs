//! Hadoop-Streaming analogue: running "external programs" over byte
//! pipes with bounded buffers (paper Fig. 8).
//!
//! A wrapped C program (here: any [`ExternalProgram`] implementation,
//! e.g. the aligner posing as `bwa mem`) reads bytes from stdin and
//! writes bytes to stdout. The framework side performs explicit **data
//! transformation** — typed records to text and back — which the paper
//! measures at 12–49% of task time (Fig. 6a). The harness times the two
//! halves separately so the wrapper rounds can report the same split.

use crate::counters::{keys, Counters};
use crate::error::{panic_message, GesallError};
use crossbeam::channel::{bounded, Receiver, Sender};
use gesall_formats::SharedBytes;
use std::io::{Read, Write};
use std::time::Instant;

/// Pipe chunk size: the 64 KiB pipe buffer from Fig. 8.
pub const PIPE_BUF: usize = 64 * 1024;

/// Writing end of a byte pipe. Chunks travel the channel as
/// [`SharedBytes`]: a large write is packaged into one backing
/// allocation and shipped as O(1) slices, instead of the old
/// `split_off`-per-chunk scheme that re-copied the unsent tail on every
/// iteration (quadratic in the write size).
pub struct PipeWriter {
    tx: Option<Sender<SharedBytes>>,
    buf: Vec<u8>,
    counters: Counters,
}

/// Reading end of a byte pipe.
pub struct PipeReader {
    rx: Receiver<SharedBytes>,
    cur: SharedBytes,
    pos: usize,
    counters: Counters,
}

/// Create a connected pipe with a bounded in-flight window (backpressure,
/// like a real OS pipe). Copy accounting goes to a private bag; use
/// [`pipe_with_counters`] to surface it.
pub fn pipe() -> (PipeWriter, PipeReader) {
    pipe_with_counters(Counters::new())
}

/// [`pipe`], with payload-copy accounting
/// ([`keys::WRAPPER_BYTES_COPIED`]) on the given bag.
pub fn pipe_with_counters(counters: Counters) -> (PipeWriter, PipeReader) {
    let (tx, rx) = bounded(4);
    (
        PipeWriter {
            tx: Some(tx),
            buf: Vec::with_capacity(PIPE_BUF),
            counters: counters.clone(),
        },
        PipeReader {
            rx,
            cur: SharedBytes::new(),
            pos: 0,
            counters,
        },
    )
}

impl Write for PipeWriter {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.buf.extend_from_slice(data);
        self.counters
            .add(keys::WRAPPER_BYTES_COPIED, data.len() as u64);
        if self.buf.len() >= PIPE_BUF {
            // Package the accumulated bytes into one backing and ship
            // full chunks as O(1) slices. Only the sub-PIPE_BUF tail is
            // copied back into the accumulation buffer.
            let full = self.buf.len() - self.buf.len() % PIPE_BUF;
            let backing = SharedBytes::from_vec(std::mem::take(&mut self.buf));
            let mut off = 0;
            while off < full {
                self.send(backing.slice(off..off + PIPE_BUF))?;
                off += PIPE_BUF;
            }
            if full < backing.len() {
                self.buf.extend_from_slice(&backing[full..]);
                self.counters
                    .add(keys::WRAPPER_BYTES_COPIED, (backing.len() - full) as u64);
            }
        }
        Ok(data.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        if !self.buf.is_empty() {
            let chunk = SharedBytes::from_vec(std::mem::take(&mut self.buf));
            self.send(chunk)?;
        }
        Ok(())
    }
}

impl PipeWriter {
    fn send(&mut self, chunk: SharedBytes) -> std::io::Result<()> {
        match &self.tx {
            Some(tx) => tx.send(chunk).map_err(|_| {
                std::io::Error::new(std::io::ErrorKind::BrokenPipe, "reader dropped")
            }),
            None => Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "pipe closed",
            )),
        }
    }

    /// Ship an already-owned buffer without copying it: the buffer
    /// becomes the chunks' shared backing. For programs that build their
    /// whole output in memory (e.g. a BAM serializer) this replaces a
    /// `write_all` that would re-copy every byte through the pipe buffer.
    pub fn write_owned(&mut self, data: Vec<u8>) -> std::io::Result<()> {
        self.flush()?;
        let backing = SharedBytes::from_vec(data);
        let mut off = 0;
        while off < backing.len() {
            let end = (off + PIPE_BUF).min(backing.len());
            self.send(backing.slice(off..end))?;
            off = end;
        }
        Ok(())
    }

    /// Flush and close the pipe (EOF for the reader).
    pub fn close(mut self) -> std::io::Result<()> {
        self.flush()?;
        self.tx = None;
        Ok(())
    }
}

impl Drop for PipeWriter {
    fn drop(&mut self) {
        let _ = self.flush();
        self.tx = None;
    }
}

impl Read for PipeReader {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        if self.pos >= self.cur.len() {
            match self.rx.recv() {
                Ok(chunk) => {
                    self.cur = chunk;
                    self.pos = 0;
                }
                Err(_) => return Ok(0), // EOF
            }
        }
        let n = (self.cur.len() - self.pos).min(out.len());
        out[..n].copy_from_slice(&self.cur[self.pos..self.pos + n]);
        self.counters.add(keys::WRAPPER_BYTES_COPIED, n as u64);
        self.pos += n;
        Ok(n)
    }
}

impl PipeReader {
    /// Next chunk by ownership transfer — no copy. Returns what remains
    /// of the current chunk (an O(1) slice) or receives the next one;
    /// `None` at EOF. Streaming consumers that can work chunk-at-a-time
    /// should prefer this over [`Read::read`], which copies out.
    pub fn next_chunk(&mut self) -> Option<SharedBytes> {
        if self.pos < self.cur.len() {
            let rest = self.cur.slice(self.pos..);
            self.pos = self.cur.len();
            return Some(rest);
        }
        self.rx.recv().ok() // Err means sender dropped: EOF
    }

    /// Drain everything until EOF into one owned vector (one copy per
    /// chunk, at the gather).
    pub fn read_to_end_vec(mut self) -> std::io::Result<Vec<u8>> {
        let mut v = Vec::new();
        while let Some(chunk) = self.next_chunk() {
            v.extend_from_slice(&chunk);
            self.counters
                .add(keys::WRAPPER_BYTES_COPIED, chunk.len() as u64);
        }
        Ok(v)
    }
}

/// An "external program": a black box from the framework's viewpoint —
/// reads stdin, writes stdout, no framework types cross the boundary.
pub trait ExternalProgram: Send + Sync {
    /// Program name (for diagnostics and per-program timing).
    fn name(&self) -> &str;

    /// Run to completion: consume `stdin` fully, write results to
    /// `stdout`. The harness calls this on a dedicated thread.
    fn run(&self, stdin: PipeReader, stdout: PipeWriter) -> std::io::Result<()>;
}

/// Per-run timing split, feeding the Fig. 6a breakdown.
#[derive(Debug, Clone, Copy, Default)]
pub struct StreamingTimings {
    /// Wall nanoseconds spent inside external program threads.
    pub external_nanos: u64,
    /// Wall nanoseconds the caller spent in data transformation
    /// (accounted by [`StreamingHarness::transform`]).
    pub transform_nanos: u64,
}

/// Wrap a streaming failure as an `io::Error` whose source is a
/// [`GesallError::Streaming`], so pipeline callers keep their
/// `io::Result` signature while fault-aware callers can downcast.
fn streaming_io_error(msg: String) -> std::io::Error {
    std::io::Error::other(GesallError::Streaming(msg))
}

/// Runs a chain of external programs connected by pipes
/// (e.g. `bwa | samtobam`, Fig. 8).
pub struct StreamingHarness {
    counters: Counters,
}

impl StreamingHarness {
    pub fn new(counters: Counters) -> StreamingHarness {
        StreamingHarness { counters }
    }

    /// Time a data-transformation closure (record ↔ byte conversion) and
    /// account it to the wrapper-transform counter.
    pub fn transform<T>(&self, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        self.counters
            .add(keys::DATA_TRANSFORM_NANOS, t0.elapsed().as_nanos() as u64);
        out
    }

    /// Feed `input` through `programs[0] | programs[1] | ...` and return
    /// the final stdout.
    pub fn run_pipeline(
        &self,
        programs: &[&dyn ExternalProgram],
        input: &[u8],
    ) -> std::io::Result<Vec<u8>> {
        assert!(!programs.is_empty(), "need at least one program");
        let counters = self.counters.clone();
        crossbeam::thread::scope(|s| {
            // Build the chain of pipes: input -> p0 -> p1 -> ... -> out.
            let (first_w, mut prev_r) = pipe_with_counters(counters.clone());

            // Feeder thread.
            s.spawn(move |_| {
                let mut w = first_w;
                let _ = w.write_all(input);
                let _ = w.close();
            });

            let mut handles = Vec::new();
            let mut final_reader = None;
            for (i, prog) in programs.iter().enumerate() {
                let (w, r) = pipe_with_counters(counters.clone());
                let stdin = std::mem::replace(&mut prev_r, r);
                let counters = counters.clone();
                let prog = *prog;
                handles.push(s.spawn(move |_| {
                    let t0 = Instant::now();
                    let res = prog.run(stdin, w);
                    counters.add(
                        keys::EXTERNAL_PROGRAM_NANOS,
                        t0.elapsed().as_nanos() as u64,
                    );
                    res
                }));
                if i == programs.len() - 1 {
                    final_reader = Some(std::mem::replace(&mut prev_r, pipe().1));
                }
            }
            let out = final_reader
                .expect("pipeline built at least one stage")
                .read_to_end_vec()?;
            for (h, prog) in handles.into_iter().zip(programs) {
                // A panicking program is a failed pipeline, not a crashed
                // process: surface it as an error so the surrounding task
                // attempt can fail cleanly and be retried.
                h.join().map_err(|payload| {
                    streaming_io_error(format!(
                        "external program '{}' panicked: {}",
                        prog.name(),
                        panic_message(payload.as_ref()),
                    ))
                })??;
            }
            Ok(out)
        })
        .unwrap_or_else(|payload| {
            Err(streaming_io_error(format!(
                "streaming scope panicked: {}",
                panic_message(payload.as_ref()),
            )))
        })
    }

    /// Timing snapshot from the counters.
    pub fn timings(&self) -> StreamingTimings {
        StreamingTimings {
            external_nanos: self.counters.get(keys::EXTERNAL_PROGRAM_NANOS),
            transform_nanos: self.counters.get(keys::DATA_TRANSFORM_NANOS),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Upper-cases its input.
    struct Upper;
    impl ExternalProgram for Upper {
        fn name(&self) -> &str {
            "upper"
        }
        fn run(&self, mut stdin: PipeReader, mut stdout: PipeWriter) -> std::io::Result<()> {
            let mut buf = Vec::new();
            stdin.read_to_end(&mut buf)?;
            buf.make_ascii_uppercase();
            stdout.write_all(&buf)?;
            stdout.close()
        }
    }

    /// Reverses each line.
    struct RevLines;
    impl ExternalProgram for RevLines {
        fn name(&self) -> &str {
            "revlines"
        }
        fn run(&self, mut stdin: PipeReader, mut stdout: PipeWriter) -> std::io::Result<()> {
            let mut buf = String::new();
            stdin.read_to_string(&mut buf)?;
            for line in buf.lines() {
                let rev: String = line.chars().rev().collect();
                writeln!(stdout, "{rev}")?;
            }
            stdout.close()
        }
    }

    /// A true streaming stage: doubles every byte as it arrives.
    struct DoubleBytes;
    impl ExternalProgram for DoubleBytes {
        fn name(&self) -> &str {
            "double"
        }
        fn run(&self, mut stdin: PipeReader, mut stdout: PipeWriter) -> std::io::Result<()> {
            let mut chunk = [0u8; 4096];
            loop {
                let n = stdin.read(&mut chunk)?;
                if n == 0 {
                    break;
                }
                for &b in &chunk[..n] {
                    stdout.write_all(&[b, b])?;
                }
            }
            stdout.close()
        }
    }

    #[test]
    fn pipe_roundtrip_with_eof() {
        let (mut w, r) = pipe();
        let t = std::thread::spawn(move || r.read_to_end_vec().unwrap());
        w.write_all(b"hello ").unwrap();
        w.write_all(b"world").unwrap();
        w.close().unwrap();
        assert_eq!(t.join().unwrap(), b"hello world");
    }

    #[test]
    fn pipe_handles_large_transfers_with_backpressure() {
        let data: Vec<u8> = (0..1_000_000u32).map(|i| (i % 251) as u8).collect();
        let (mut w, r) = pipe();
        let expect = data.clone();
        let t = std::thread::spawn(move || r.read_to_end_vec().unwrap());
        w.write_all(&data).unwrap();
        w.close().unwrap();
        assert_eq!(t.join().unwrap(), expect);
    }

    #[test]
    fn write_owned_ships_chunks_zero_copy() {
        let data: Vec<u8> = (0..2 * PIPE_BUF + 100).map(|i| (i % 251) as u8).collect();
        let expect = data.clone();
        let (mut w, mut r) = pipe();
        let t = std::thread::spawn(move || {
            let mut chunks = Vec::new();
            while let Some(c) = r.next_chunk() {
                chunks.push(c);
            }
            chunks
        });
        w.write_owned(data).unwrap();
        w.close().unwrap();
        let chunks = t.join().unwrap();
        assert!(chunks.len() >= 3);
        // Ownership transfer end to end: every chunk is a window onto
        // the one buffer the writer handed over — no copy in between.
        assert!(chunks.windows(2).all(|p| p[0].same_backing(&p[1])));
        let glued: Vec<u8> = chunks.iter().flat_map(|c| c.iter().copied()).collect();
        assert_eq!(glued, expect);
    }

    #[test]
    fn single_program_pipeline() {
        let h = StreamingHarness::new(Counters::new());
        let out = h.run_pipeline(&[&Upper], b"acgt\n").unwrap();
        assert_eq!(out, b"ACGT\n");
        assert!(h.timings().external_nanos > 0);
    }

    #[test]
    fn two_stage_pipeline_like_bwa_samtobam() {
        let h = StreamingHarness::new(Counters::new());
        let out = h
            .run_pipeline(&[&Upper, &RevLines], b"abc\ndef\n")
            .unwrap();
        assert_eq!(out, b"CBA\nFED\n");
    }

    #[test]
    fn streaming_stage_processes_incrementally() {
        let h = StreamingHarness::new(Counters::new());
        let input: Vec<u8> = vec![7; 300_000];
        let out = h.run_pipeline(&[&DoubleBytes], &input).unwrap();
        assert_eq!(out.len(), 600_000);
        assert!(out.iter().all(|&b| b == 7));
    }

    #[test]
    fn transform_timer_accumulates() {
        let c = Counters::new();
        let h = StreamingHarness::new(c.clone());
        let v: u64 = h.transform(|| (0..10_000u64).sum());
        assert_eq!(v, 49995000);
        assert!(c.get(keys::DATA_TRANSFORM_NANOS) > 0);
    }

    /// Panics mid-stream, as a segfaulting wrapped binary would.
    struct Crasher;
    impl ExternalProgram for Crasher {
        fn name(&self) -> &str {
            "crasher"
        }
        fn run(&self, _stdin: PipeReader, _stdout: PipeWriter) -> std::io::Result<()> {
            panic!("wrapped binary crashed");
        }
    }

    #[test]
    fn panicking_program_is_an_error_not_an_abort() {
        let h = StreamingHarness::new(Counters::new());
        let err = h.run_pipeline(&[&Crasher], b"x").unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("crasher") && msg.contains("wrapped binary crashed"),
            "unexpected error: {msg}"
        );
    }

    #[test]
    fn panicking_middle_stage_fails_whole_pipeline() {
        let h = StreamingHarness::new(Counters::new());
        let err = h
            .run_pipeline(&[&Upper, &Crasher, &RevLines], b"abc\n")
            .unwrap_err();
        assert!(err.to_string().contains("panicked"));
    }

    #[test]
    fn dropped_reader_breaks_writer() {
        let (mut w, r) = pipe();
        drop(r);
        // Large enough write to force a send.
        let big = vec![0u8; PIPE_BUF * 2];
        assert!(w.write_all(&big).is_err() || w.flush().is_err());
    }
}
