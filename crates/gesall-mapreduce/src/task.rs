//! Mapper / Reducer traits and their emit contexts.

use gesall_formats::wire::Wire;

/// A map function over typed records. `map` is called once per input
/// record; emitted pairs flow into the sort-spill-merge pipeline.
///
/// `map` takes its record **by reference**: the fault-tolerant runtime
/// keeps splits alive for the whole wave so that retried or speculative
/// attempts start from pristine input, and handing out references lets
/// every attempt share that one copy instead of cloning each record per
/// call. Mappers that need owned data clone exactly the fields they
/// keep. The `Clone + Sync` bounds remain for split staging.
pub trait Mapper: Send + Sync {
    type InKey: Wire + Clone + Send + Sync;
    type InValue: Wire + Clone + Send + Sync;
    // `'static` because map output may be handed to the background
    // spill-encoder pool, whose jobs outlive the emitting stack frame.
    type OutKey: Wire + Ord + Clone + Send + 'static;
    type OutValue: Wire + Send + 'static;

    fn map(
        &self,
        key: &Self::InKey,
        value: &Self::InValue,
        ctx: &mut MapContext<'_, Self::OutKey, Self::OutValue>,
    );

    /// Called once per input split after its last record — for batch-style
    /// mappers (e.g. a wrapped aligner) that buffer input and flush here.
    fn finish(&self, _ctx: &mut MapContext<'_, Self::OutKey, Self::OutValue>) {}
}

/// A reduce function: one call per distinct key with all its values.
pub trait Reducer: Send + Sync {
    type InKey: Wire + Ord + Clone + Send + 'static;
    type InValue: Wire + Send + 'static;
    type OutKey: Wire + Send;
    type OutValue: Wire + Send;

    fn reduce(
        &self,
        key: Self::InKey,
        values: Vec<Self::InValue>,
        ctx: &mut ReduceContext<'_, Self::OutKey, Self::OutValue>,
    );

    /// Called once per reduce task after the last key — for reducers that
    /// aggregate across keys (e.g. a wrapped MarkDuplicates that needs all
    /// reads of its partition sorted first).
    fn finish(&self, _ctx: &mut ReduceContext<'_, Self::OutKey, Self::OutValue>) {}
}

/// Sink for map output.
pub struct MapContext<'a, K, V> {
    pub(crate) sink: &'a mut dyn FnMut(K, V),
}

impl<K, V> MapContext<'_, K, V> {
    pub fn emit(&mut self, key: K, value: V) {
        (self.sink)(key, value);
    }
}

/// Sink for reduce output.
pub struct ReduceContext<'a, K, V> {
    pub(crate) out: &'a mut Vec<(K, V)>,
}

impl<K, V> ReduceContext<'_, K, V> {
    pub fn emit(&mut self, key: K, value: V) {
        self.out.push((key, value));
    }
}

/// Routes a key to one of `n` reduce partitions.
pub trait Partitioner<K>: Send + Sync {
    fn partition(&self, key: &K, n_partitions: usize) -> usize;
}

/// Default partitioner: FNV-1a over the key's wire encoding.
pub struct HashPartitioner;

impl<K: Wire> Partitioner<K> for HashPartitioner {
    fn partition(&self, key: &K, n_partitions: usize) -> usize {
        let bytes = key.to_wire_bytes();
        let mut h: u64 = 0xcbf29ce484222325;
        for b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        (h % n_partitions as u64) as usize
    }
}

/// Partition by a caller-supplied function (range partitioning et al.).
pub struct FnPartitioner<K, F: Fn(&K, usize) -> usize + Send + Sync>(
    pub F,
    pub std::marker::PhantomData<K>,
);

impl<K, F: Fn(&K, usize) -> usize + Send + Sync> FnPartitioner<K, F> {
    pub fn new(f: F) -> Self {
        FnPartitioner(f, std::marker::PhantomData)
    }
}

impl<K: Send + Sync, F: Fn(&K, usize) -> usize + Send + Sync> Partitioner<K>
    for FnPartitioner<K, F>
{
    fn partition(&self, key: &K, n_partitions: usize) -> usize {
        (self.0)(key, n_partitions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_partitioner_in_range_and_stable() {
        let p = HashPartitioner;
        for k in 0u64..500 {
            let a = Partitioner::partition(&p, &k, 7);
            let b = Partitioner::partition(&p, &k, 7);
            assert_eq!(a, b);
            assert!(a < 7);
        }
    }

    #[test]
    fn hash_partitioner_spreads() {
        let p = HashPartitioner;
        let mut buckets = vec![0usize; 8];
        for k in 0u64..4000 {
            buckets[Partitioner::partition(&p, &format!("key{k}"), 8)] += 1;
        }
        let min = *buckets.iter().min().unwrap();
        let max = *buckets.iter().max().unwrap();
        assert!(
            max < min * 2,
            "partitions badly skewed: {buckets:?}"
        );
    }

    #[test]
    fn fn_partitioner_delegates() {
        let p = FnPartitioner::new(|k: &u64, n| (*k as usize) % n);
        assert_eq!(p.partition(&13, 5), 3);
    }
}
