//! Shuffle codec integration: the codec map-output segments travel
//! under is a transport detail — a job's reduce output must be
//! byte-identical whether the segments ship Raw, Lz, or Seq, while the
//! DFS shuffle bytes shrink with the stronger domain codec.

use gesall_dfs::{Dfs, DfsConfig};
use gesall_formats::sam::SamRecord;
use gesall_formats::wire::Wire;
use gesall_formats::Codec;
use gesall_mapreduce::counters::keys;
use gesall_mapreduce::{
    ClusterResources, HashPartitioner, InputSplit, JobConfig, JobResult, MapContext,
    MapReduceEngine, Mapper, ReduceContext, Reducer,
};

/// Keys records by position bucket and passes the alignment record
/// through untouched — the shape of a sort/bin stage.
struct Route;
impl Mapper for Route {
    type InKey = u64;
    type InValue = SamRecord;
    type OutKey = u64;
    type OutValue = SamRecord;
    fn map(&self, _k: &u64, rec: &SamRecord, ctx: &mut MapContext<'_, u64, SamRecord>) {
        ctx.emit(rec.pos as u64 / 64, rec.clone());
    }
}

struct Collect;
impl Reducer for Collect {
    type InKey = u64;
    type InValue = SamRecord;
    type OutKey = u64;
    type OutValue = SamRecord;
    fn reduce(&self, k: u64, vs: Vec<SamRecord>, ctx: &mut ReduceContext<'_, u64, SamRecord>) {
        for v in vs {
            ctx.emit(k, v);
        }
    }
}

/// Deterministic aligned-read-shaped records: 100bp DNA, noisy quals,
/// mostly-sorted positions — the payload mix the Seq codec targets.
fn sam_splits(n_splits: usize, per_split: usize) -> Vec<InputSplit<u64, SamRecord>> {
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..n_splits)
        .map(|s| {
            let records: Vec<(u64, SamRecord)> = (0..per_split)
                .map(|i| {
                    let seq: Vec<u8> = (0..100).map(|_| b"ACGT"[(next() % 4) as usize]).collect();
                    let qual: Vec<u8> = (0..100).map(|_| 30 + (next() % 7) as u8).collect();
                    let mut rec =
                        SamRecord::unmapped(format!("read{:05}-{:02}", i, s), seq, qual);
                    rec.pos = (s * per_split + i) as i64 * 3;
                    (i as u64, rec)
                })
                .collect();
            InputSplit::new(format!("split-{s}"), records)
        })
        .collect()
}

fn run_with(codec: Codec) -> JobResult<u64, SamRecord> {
    let dfs = Dfs::new(DfsConfig {
        n_nodes: 3,
        block_size: 64 * 1024,
        replication: 2,
        ..DfsConfig::default()
    });
    let engine = MapReduceEngine::new(ClusterResources::uniform(3, 2, 4096)).with_shuffle_dfs(dfs);
    let cfg = JobConfig {
        name: format!("codec-twin-{}", codec.name()),
        n_reducers: 3,
        io_sort_bytes: 64 * 1024,
        compress_min_bytes: 1,
        shuffle_codec: Some(codec),
        speculative: false,
        ..JobConfig::default()
    };
    engine
        .run_job(cfg, &Route, &Collect, &HashPartitioner, sam_splits(4, 120))
        .expect("codec twin job must succeed")
}

#[test]
fn reduce_output_is_identical_across_every_shuffle_codec() {
    let raw = run_with(Codec::Raw);
    let lz = run_with(Codec::Lz);
    let seq = run_with(Codec::Seq);

    // Byte-identical reduce output: same reducers, same keys, same
    // record order. (Scheduling is deterministic here — no speculation,
    // no faults — and the multipass merge's pass structure depends only
    // on run counts, which the codec cannot change.)
    assert_eq!(raw.outputs, lz.outputs, "Raw vs Lz reduce output diverged");
    assert_eq!(lz.outputs, seq.outputs, "Lz vs Seq reduce output diverged");
    assert!(raw.outputs.iter().flatten().count() > 0);

    // The codec override actually took: Raw ships everything
    // uncompressed, the others compress every qualifying segment.
    assert_eq!(raw.counters.get(keys::SHUFFLE_SEGMENTS_COMPRESSED), 0);
    assert!(lz.counters.get(keys::SHUFFLE_SEGMENTS_COMPRESSED) > 0);
    assert!(seq.counters.get(keys::SHUFFLE_SEGMENTS_COMPRESSED) > 0);

    // And the wire bytes order as the codecs' strength predicts on
    // genomic payloads: Seq (2-bit bases + grouped literals) beats
    // general LZ, which beats shipping raw.
    let b = |r: &JobResult<u64, SamRecord>| r.counters.get(keys::SHUFFLE_BYTES_DFS);
    assert!(
        b(&seq) < b(&lz) && b(&lz) < b(&raw),
        "expected seq < lz < raw, got seq={} lz={} raw={}",
        b(&seq),
        b(&lz),
        b(&raw)
    );

    // Locality accounting covered the fetches: every shuffled byte was
    // tallied as local or remote.
    for r in [&raw, &lz, &seq] {
        let local = r.counters.get(keys::SHUFFLE_FETCH_BYTES_LOCAL);
        let remote = r.counters.get(keys::SHUFFLE_FETCH_BYTES_REMOTE);
        assert!(
            local + remote >= b(r),
            "local {local} + remote {remote} must cover the fetched frames {}",
            b(r)
        );
    }
}

#[test]
fn sam_records_hint_the_seq_codec_by_default() {
    // No job override: the value type's codec hint decides, so
    // alignment-record shuffles pick up the domain codec without any
    // configuration.
    assert_eq!(<SamRecord as Wire>::codec_hint(), Some(Codec::Seq));
    let dfs = Dfs::new(DfsConfig {
        n_nodes: 2,
        block_size: 64 * 1024,
        replication: 1,
        ..DfsConfig::default()
    });
    let engine = MapReduceEngine::new(ClusterResources::uniform(2, 2, 4096)).with_shuffle_dfs(dfs);
    let cfg = JobConfig {
        name: "codec-hint".into(),
        n_reducers: 2,
        compress_min_bytes: 1,
        speculative: false,
        ..JobConfig::default()
    };
    let hinted = engine
        .run_job(cfg, &Route, &Collect, &HashPartitioner, sam_splits(2, 80))
        .expect("hinted job must succeed");
    let forced = run_with(Codec::Seq);
    // Same record set, so the hinted run compresses like the forced-Seq
    // run does (both well under what raw shipping costs per record).
    assert!(hinted.counters.get(keys::SHUFFLE_SEGMENTS_COMPRESSED) > 0);
    let per_rec = |r: &JobResult<u64, SamRecord>| {
        r.counters.get(keys::SHUFFLE_BYTES_DFS) as f64
            / r.counters.get(keys::SHUFFLE_RECORDS).max(1) as f64
    };
    let diff = (per_rec(&hinted) - per_rec(&forced)).abs();
    assert!(
        diff < 20.0,
        "hinted ({:.1} B/rec) should compress like forced Seq ({:.1} B/rec)",
        per_rec(&hinted),
        per_rec(&forced)
    );
}
