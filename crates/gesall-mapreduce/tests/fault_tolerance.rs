//! End-to-end fault-tolerance tests: retries, job abort, speculative
//! execution, node loss mid-wave, and seeded determinism — the engine's
//! side of the Hadoop failure model the paper's production runs rely on.

use gesall_mapreduce::counters::keys;
use gesall_mapreduce::runtime::AttemptOutcome;
use gesall_mapreduce::{
    ClusterResources, FaultPlan, GesallError, HashPartitioner, InputSplit, JobConfig, MapContext,
    MapReduceEngine, Mapper, ReduceContext, Reducer, TaskKind,
};

struct Tokenize;
impl Mapper for Tokenize {
    type InKey = u64;
    type InValue = String;
    type OutKey = String;
    type OutValue = u64;
    fn map(&self, _k: &u64, line: &String, ctx: &mut MapContext<'_, String, u64>) {
        for w in line.split_whitespace() {
            ctx.emit(w.to_string(), 1);
        }
    }
}

struct Sum;
impl Reducer for Sum {
    type InKey = String;
    type InValue = u64;
    type OutKey = String;
    type OutValue = u64;
    fn reduce(&self, k: String, vs: Vec<u64>, ctx: &mut ReduceContext<'_, String, u64>) {
        ctx.emit(k, vs.iter().sum());
    }
}

/// `n_splits` splits of deterministic text.
fn word_splits(n_splits: usize, lines_per_split: usize) -> Vec<InputSplit<u64, String>> {
    let words = ["gesall", "hadoop", "yarn", "hdfs", "bwa", "gatk", "shuffle"];
    (0..n_splits)
        .map(|s| {
            let records: Vec<(u64, String)> = (0..lines_per_split)
                .map(|i| {
                    let line: Vec<&str> = (0..5)
                        .map(|j| words[(s * 31 + i * 7 + j) % words.len()])
                        .collect();
                    (i as u64, line.join(" "))
                })
                .collect();
            InputSplit::new(format!("split-{s}"), records)
        })
        .collect()
}

fn sorted_output(res: &gesall_mapreduce::JobResult<String, u64>) -> Vec<(String, u64)> {
    let mut all: Vec<(String, u64)> = res.outputs.iter().flatten().cloned().collect();
    all.sort();
    all
}

/// Speculation is off by default here: a panicking attempt can be slow
/// enough (panic-hook output) to look like a straggler, and a backup
/// winning the race turns the panic into an uncounted *moot* failure —
/// correct engine behavior, but it would make exact failure-count
/// assertions racy. The speculative test opts back in.
fn quick_cfg() -> JobConfig {
    JobConfig {
        n_reducers: 3,
        io_sort_bytes: 4096,
        retry_backoff_ms: 1.0,
        speculative: false,
        ..JobConfig::default()
    }
}

/// The same job with no fault plan — the reference output.
fn fault_free_output() -> Vec<(String, u64)> {
    let engine = MapReduceEngine::new(ClusterResources::uniform(3, 2, 4096));
    let res = engine
        .run_job(quick_cfg(), &Tokenize, &Sum, &HashPartitioner, word_splits(8, 30))
        .expect("fault-free job");
    sorted_output(&res)
}

#[test]
fn panicking_attempts_are_retried_until_success() {
    // Map task 2 panics on attempts 0 and 1, succeeds on attempt 2;
    // reduce task 0 panics once. Output must still be exact.
    let plan = FaultPlan::seeded(1)
        .panic_on(TaskKind::Map, 2, 0)
        .panic_on(TaskKind::Map, 2, 1)
        .panic_on(TaskKind::Reduce, 0, 0);
    let engine = MapReduceEngine::new(ClusterResources::uniform(3, 2, 4096)).with_fault_plan(plan);
    let res = engine
        .run_job(quick_cfg(), &Tokenize, &Sum, &HashPartitioner, word_splits(8, 30))
        .expect("retries must rescue the job");

    assert_eq!(sorted_output(&res), fault_free_output());
    assert_eq!(res.counters.get(keys::FAILED_ATTEMPTS), 3);
    // The rescued map task committed on its third attempt.
    let winner = res
        .events
        .iter()
        .find(|e| {
            e.kind == TaskKind::Map && e.task_id == 2 && e.outcome == AttemptOutcome::Succeeded
        })
        .expect("task 2 must eventually succeed");
    assert_eq!(winner.attempt, 2);
    // The failures are on the record, with the injected message.
    let failures: Vec<_> = res
        .events
        .iter()
        .filter(|e| e.outcome == AttemptOutcome::Failed)
        .collect();
    assert_eq!(failures.len(), 3);
    assert!(failures
        .iter()
        .all(|e| e.error.as_deref().unwrap_or("").contains("injected panic")));
}

#[test]
fn job_fails_after_max_attempts() {
    // Every attempt of map task 1 panics; with max_attempts = 2 the job
    // must abort with a TaskFailed naming the task.
    let plan = FaultPlan::seeded(2)
        .panic_on(TaskKind::Map, 1, 0)
        .panic_on(TaskKind::Map, 1, 1);
    let engine = MapReduceEngine::new(ClusterResources::uniform(2, 2, 4096)).with_fault_plan(plan);
    let cfg = JobConfig {
        max_attempts: 2,
        ..quick_cfg()
    };
    let err = engine
        .run_job(cfg, &Tokenize, &Sum, &HashPartitioner, word_splits(6, 20))
        .expect_err("job must abort once the task is out of attempts");
    match err {
        GesallError::TaskFailed {
            kind,
            task_id,
            attempts,
            last_error,
        } => {
            assert_eq!(kind, TaskKind::Map);
            assert_eq!(task_id, 1);
            assert_eq!(attempts, 2);
            assert!(last_error.contains("injected panic"), "{last_error}");
        }
        other => panic!("expected TaskFailed, got {other}"),
    }
}

#[test]
fn speculative_backup_beats_slowed_original() {
    // Map task 0's first attempt is stretched far past the median; the
    // straggler detector must launch a backup, which wins the race.
    let plan = FaultPlan::seeded(3).slow_down(TaskKind::Map, 0, 0, 5_000);
    let engine = MapReduceEngine::new(ClusterResources::uniform(2, 2, 4096)).with_fault_plan(plan);
    let cfg = JobConfig {
        speculative: true,
        speculative_multiplier: 1.5,
        speculative_min_runtime_ms: 10.0,
        ..quick_cfg()
    };
    let res = engine
        .run_job(cfg, &Tokenize, &Sum, &HashPartitioner, word_splits(8, 30))
        .expect("speculation must not corrupt the job");

    assert_eq!(sorted_output(&res), fault_free_output());
    assert!(res.counters.get(keys::SPECULATIVE_LAUNCHED) >= 1);
    // The backup attempt committed; the slowed original was killed.
    let winner = res
        .events
        .iter()
        .find(|e| {
            e.kind == TaskKind::Map && e.task_id == 0 && e.outcome == AttemptOutcome::Succeeded
        })
        .expect("task 0 must succeed");
    assert!(winner.speculative, "the backup must win against a 5 s straggler");
    assert!(res.events.iter().any(|e| {
        e.kind == TaskKind::Map
            && e.task_id == 0
            && !e.speculative
            && e.outcome == AttemptOutcome::Killed
    }));
    assert_eq!(res.counters.get(keys::FAILED_ATTEMPTS), 0);
}

#[test]
fn node_death_mid_map_wave_recovers_and_completes() {
    // Node 1 dies after 6 map commits. Its in-flight work is re-queued,
    // its committed map outputs re-executed, and the job still produces
    // the exact fault-free output.
    let plan = {
        let mut p = FaultPlan::seeded(4).kill_node_after_maps(1, 6);
        // Stretch every first attempt so all six slots (two on the doomed
        // node) are mid-flight together: the first six commits then land
        // at ~40 ms, two of them homed on node 1, guaranteeing the death
        // evicts committed map output.
        for t in 0..12 {
            p = p.slow_down(TaskKind::Map, t, 0, 40);
        }
        p
    };
    let engine = MapReduceEngine::new(ClusterResources::uniform(3, 2, 4096)).with_fault_plan(plan);
    let res = engine
        .run_job(quick_cfg(), &Tokenize, &Sum, &HashPartitioner, word_splits(12, 30))
        .expect("two surviving nodes must finish the job");

    assert_eq!(sorted_output(&res), fault_free_output_12());
    assert_eq!(engine.dead_nodes(), vec![1]);
    assert!(
        res.counters.get(keys::MAPS_RERUN_ON_NODE_LOSS) >= 1,
        "a node with 2 slots must have committed some of the first 6 maps"
    );
    // No event may claim a commit on the dead node after it died — every
    // success on node 1 must have been re-run (evicted) or the task
    // re-committed elsewhere; the output equality above already proves
    // the shuffle never read lost data.
}

#[test]
fn node_death_after_map_commit_reships_from_dfs_replica() {
    use gesall_dfs::{Dfs, DfsConfig};
    // Same death scenario as above, but with the DFS-transit shuffle on
    // and replication 2: the committed map outputs homed on the dying
    // node survive on a replica, so the engine re-ships instead of
    // re-running — zero map re-executions.
    let dfs = Dfs::new(DfsConfig {
        n_nodes: 3,
        block_size: 1 << 20,
        replication: 2,
        ..DfsConfig::default()
    });
    let plan = {
        let mut p = FaultPlan::seeded(9).kill_node_after_maps(1, 6);
        // Slow every first attempt so the death reliably lands while
        // committed output is homed on node 1 (see the test above).
        for t in 0..12 {
            p = p.slow_down(TaskKind::Map, t, 0, 40);
        }
        p
    };
    let hook_dfs = dfs.clone();
    let engine = MapReduceEngine::new(ClusterResources::uniform(3, 2, 4096))
        .with_shuffle_dfs(dfs.clone())
        .with_fault_plan(plan)
        .on_node_death(move |node| {
            // Mirror the death onto the DFS — its copies on that node are
            // gone — then restore replication from the survivors, as the
            // namenode would.
            hook_dfs.fail_node(node);
            hook_dfs.re_replicate();
        });
    let res = engine
        .run_job(quick_cfg(), &Tokenize, &Sum, &HashPartitioner, word_splits(12, 30))
        .expect("replicated shuffle output must survive one node death");

    assert_eq!(sorted_output(&res), fault_free_output_12());
    assert_eq!(engine.dead_nodes(), vec![1]);
    assert!(
        res.counters.get(keys::MAPS_RESHIPPED_FROM_DFS) >= 1,
        "committed maps homed on the dead node must be served from a replica"
    );
    assert_eq!(
        res.counters.get(keys::MAPS_RERUN_ON_NODE_LOSS),
        0,
        "with replication 2 and a single death no map output is lost"
    );
    assert!(res.counters.get(keys::SHUFFLE_BYTES_DFS) > 0);
    assert_eq!(res.counters.get(keys::SHUFFLE_BYTES_MEMORY), 0);
}

/// Reference output for the 12-split job used in the node-death test.
fn fault_free_output_12() -> Vec<(String, u64)> {
    let engine = MapReduceEngine::new(ClusterResources::uniform(3, 2, 4096));
    let res = engine
        .run_job(quick_cfg(), &Tokenize, &Sum, &HashPartitioner, word_splits(12, 30))
        .expect("fault-free job");
    sorted_output(&res)
}

#[test]
fn acceptance_rate_panics_plus_node_death_match_fault_free_run() {
    // The PR's acceptance scenario: ~10% of map attempts panic AND one
    // node dies mid-wave; the job must complete with output identical to
    // the fault-free run and the fault counters must be non-zero.
    let plan = FaultPlan::seeded(0xFA_17).with_map_panic_rate(0.10).kill_node_after_maps(2, 5);
    // The plan is deterministic: make sure this seed actually injects at
    // least one first-attempt panic over 16 tasks.
    let planned: usize = (0..16)
        .filter(|&t| plan.should_panic(TaskKind::Map, t, 0))
        .count();
    assert!(planned >= 1, "seed must inject at least one panic");

    let engine = MapReduceEngine::new(ClusterResources::uniform(3, 2, 4096)).with_fault_plan(plan);
    let res = engine
        .run_job(quick_cfg(), &Tokenize, &Sum, &HashPartitioner, word_splits(16, 30))
        .expect("retries + recovery must rescue the job");

    let fault_free = {
        let engine = MapReduceEngine::new(ClusterResources::uniform(3, 2, 4096));
        let res = engine
            .run_job(quick_cfg(), &Tokenize, &Sum, &HashPartitioner, word_splits(16, 30))
            .expect("fault-free job");
        sorted_output(&res)
    };
    assert_eq!(sorted_output(&res), fault_free);
    assert!(res.counters.get(keys::FAILED_ATTEMPTS) >= planned as u64);
    assert_eq!(engine.dead_nodes(), vec![2]);
}

#[test]
fn same_seed_gives_byte_identical_histories() {
    // Panics-only plan with speculation off: the attempt history must be
    // byte-identical across two fresh engines. (Speculation and node
    // deaths depend on wall-clock placement, so they are excluded from
    // this contract.)
    let run = || {
        let plan = FaultPlan::seeded(99).with_map_panic_rate(0.3).with_reduce_panic_rate(0.3);
        let engine =
            MapReduceEngine::new(ClusterResources::uniform(3, 2, 4096)).with_fault_plan(plan);
        let cfg = JobConfig {
            speculative: false,
            ..quick_cfg()
        };
        engine
            .run_job(cfg, &Tokenize, &Sum, &HashPartitioner, word_splits(10, 20))
            .expect("bounded panics must be survivable")
            .history()
    };
    let first = run();
    let second = run();
    assert_eq!(first, second);
    // And the history really recorded injected failures.
    assert!(first.iter().any(|l| l.contains("outcome=Failed")));
}
