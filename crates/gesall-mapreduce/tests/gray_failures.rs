//! End-to-end gray-failure tests for the DFS-transit shuffle: silent
//! block corruption, flaky reads, and slow-but-alive nodes — the
//! storage-layer failure matrix the ISSUE-6 integrity layer exists to
//! survive. Every scenario must finish with reduce output byte-identical
//! to the fault-free run; the counters prove the machinery actually
//! fired rather than the faults never landing.

use gesall_dfs::{metrics_keys, Dfs, DfsConfig};
use gesall_mapreduce::counters::keys;
use gesall_mapreduce::{
    ClusterResources, FaultPlan, HashPartitioner, InputSplit, JobConfig, MapContext,
    MapReduceEngine, Mapper, ReduceContext, Reducer,
};
use std::time::Duration;

struct Tokenize;
impl Mapper for Tokenize {
    type InKey = u64;
    type InValue = String;
    type OutKey = String;
    type OutValue = u64;
    fn map(&self, _k: &u64, line: &String, ctx: &mut MapContext<'_, String, u64>) {
        for w in line.split_whitespace() {
            ctx.emit(w.to_string(), 1);
        }
    }
}

struct Sum;
impl Reducer for Sum {
    type InKey = String;
    type InValue = u64;
    type OutKey = String;
    type OutValue = u64;
    fn reduce(&self, k: String, vs: Vec<u64>, ctx: &mut ReduceContext<'_, String, u64>) {
        ctx.emit(k, vs.iter().sum());
    }
}

/// `n_splits` splits of deterministic text (same generator as the
/// fault-tolerance suite, so oracles are comparable across files).
fn word_splits(n_splits: usize, lines_per_split: usize) -> Vec<InputSplit<u64, String>> {
    let words = ["gesall", "hadoop", "yarn", "hdfs", "bwa", "gatk", "shuffle"];
    (0..n_splits)
        .map(|s| {
            let records: Vec<(u64, String)> = (0..lines_per_split)
                .map(|i| {
                    let line: Vec<&str> = (0..5)
                        .map(|j| words[(s * 31 + i * 7 + j) % words.len()])
                        .collect();
                    (i as u64, line.join(" "))
                })
                .collect();
            InputSplit::new(format!("split-{s}"), records)
        })
        .collect()
}

fn sorted_output(res: &gesall_mapreduce::JobResult<String, u64>) -> Vec<(String, u64)> {
    let mut all: Vec<(String, u64)> = res.outputs.iter().flatten().cloned().collect();
    all.sort();
    all
}

/// Speculation off so injected storage stalls don't race backup tasks
/// into the exact counters the assertions read.
fn quick_cfg() -> JobConfig {
    JobConfig {
        n_reducers: 3,
        io_sort_bytes: 4096,
        retry_backoff_ms: 1.0,
        speculative: false,
        ..JobConfig::default()
    }
}

/// A 3-node transit DFS with replication 2: one surviving verified
/// replica for every block, plus a third node to host repairs.
fn transit_dfs() -> Dfs {
    Dfs::new(DfsConfig {
        n_nodes: 3,
        block_size: 1 << 20,
        replication: 2,
        ..DfsConfig::default()
    })
}

/// The same job with no DFS and no fault plan — the reference output.
fn fault_free_output(n_splits: usize) -> Vec<(String, u64)> {
    let engine = MapReduceEngine::new(ClusterResources::uniform(3, 2, 4096));
    let res = engine
        .run_job(quick_cfg(), &Tokenize, &Sum, &HashPartitioner, word_splits(n_splits, 30))
        .expect("fault-free job");
    sorted_output(&res)
}

/// Corruption detected from a hedged read's helper thread can land just
/// after the job returns; wait (bounded) until detections have matching
/// repairs before asserting.
fn settle_integrity_counters(dfs: &Dfs) -> (u64, u64) {
    let get = |k: &str| dfs.metrics().counter(k).get();
    for _ in 0..400 {
        let d = get(metrics_keys::BLOCKS_CORRUPT_DETECTED);
        let r = get(metrics_keys::BLOCKS_CORRUPT_REPAIRED);
        if d > 0 && r == d {
            return (d, r);
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    (
        get(metrics_keys::BLOCKS_CORRUPT_DETECTED),
        get(metrics_keys::BLOCKS_CORRUPT_REPAIRED),
    )
}

#[test]
fn corrupted_replica_never_reaches_a_reducer() {
    // Map task 0's shuffle output gets its primary replica bit-flipped
    // at write time. The primary is what reducers read first, so the
    // read path must detect the damage, quarantine the replica, serve
    // the fetch from the survivor, and repair — and the reduce output
    // must equal the uncorrupted oracle byte for byte.
    let dfs = transit_dfs();
    let plan = FaultPlan::seeded(0x6E55).corrupt_block("map-00000", 0, 0);
    let engine = MapReduceEngine::new(ClusterResources::uniform(3, 2, 4096))
        .with_shuffle_dfs(dfs.clone())
        .with_fault_plan(plan);
    let res = engine
        .run_job(quick_cfg(), &Tokenize, &Sum, &HashPartitioner, word_splits(8, 30))
        .expect("a corrupt replica must never fail the job");

    assert_eq!(sorted_output(&res), fault_free_output(8));
    assert!(res.counters.get(keys::SHUFFLE_BYTES_DFS) > 0);
    let (detected, repaired) = settle_integrity_counters(&dfs);
    assert!(detected >= 1, "the injected corruption must be detected on read");
    assert_eq!(repaired, detected, "every detection must be repaired from a survivor");
    assert_eq!(res.counters.get(keys::FAILED_ATTEMPTS), 0, "integrity is a DFS-level save");
}

#[test]
fn flaky_and_slow_nodes_still_complete_with_retries_and_hedges() {
    // Every node's first six replica reads flake with a transient error
    // and node 2 limps at 15 ms per read. The job must complete with
    // exact output, the DFS retry loop must have fired (the budgets
    // guarantee some read finds both its replicas flaking at once), and
    // node 2's latency histogram must have pushed reads into hedging.
    let dfs = transit_dfs();
    let plan = FaultPlan::seeded(0xF1A)
        .flaky_read(0, 6)
        .flaky_read(1, 6)
        .flaky_read(2, 6)
        .slow_node(2, 15);
    let engine = MapReduceEngine::new(ClusterResources::uniform(3, 2, 4096))
        .with_shuffle_dfs(dfs.clone())
        .with_fault_plan(plan);
    let res = engine
        .run_job(quick_cfg(), &Tokenize, &Sum, &HashPartitioner, word_splits(12, 30))
        .expect("transient flakes and a limping node must be survivable");

    assert_eq!(sorted_output(&res), fault_free_output(12));
    let get = |k: &str| dfs.metrics().counter(k).get();
    assert!(
        get(metrics_keys::READS_RETRIED) >= 1,
        "a read that finds every replica flaking must retry with backoff"
    );
    assert!(
        get(metrics_keys::READS_HEDGED) >= 1,
        "reads against the limping node must hedge once its p90 is on record"
    );
    assert_eq!(
        get(metrics_keys::BLOCKS_CORRUPT_DETECTED),
        0,
        "flakes and stalls are not corruption"
    );
}

#[test]
fn acceptance_corrupt_slow_and_flaky_job_matches_fault_free_run() {
    // The PR's acceptance scenario: one corrupt_block + one slow_node +
    // flaky_read injections in a single seeded plan. The job completes
    // with byte-identical reduce output, corruption is detected and
    // fully repaired, and hedged reads fired against the slow node.
    let dfs = transit_dfs();
    let plan = FaultPlan::seeded(0xACCE97)
        .corrupt_block("map-00000", 0, 0)
        .flaky_read(0, 6)
        .flaky_read(1, 6)
        .slow_node(2, 15);
    let engine = MapReduceEngine::new(ClusterResources::uniform(3, 2, 4096))
        .with_shuffle_dfs(dfs.clone())
        .with_fault_plan(plan);
    let res = engine
        .run_job(quick_cfg(), &Tokenize, &Sum, &HashPartitioner, word_splits(12, 30))
        .expect("the combined gray-failure matrix must be survivable");

    assert_eq!(sorted_output(&res), fault_free_output(12));
    let (detected, repaired) = settle_integrity_counters(&dfs);
    assert!(detected > 0, "dfs.blocks.corrupt.detected must be nonzero");
    assert_eq!(repaired, detected, "dfs.blocks.corrupt.repaired must equal detected");
    assert!(
        dfs.metrics().counter(metrics_keys::READS_HEDGED).get() > 0,
        "dfs.reads.hedged must be nonzero"
    );
    assert!(res.counters.get(keys::SHUFFLE_BYTES_DFS) > 0);
    assert_eq!(res.counters.get(keys::SHUFFLE_BYTES_MEMORY), 0);
}
