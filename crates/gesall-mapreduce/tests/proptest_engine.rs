//! Property-based tests of the MapReduce engine's semantic invariants:
//! the output must be independent of partitioning, cluster shape, sort
//! buffer size, and compression — only then can the platform claim
//! "same program, parallel execution".

use gesall_formats::{Codec, SharedBytes};
use gesall_mapreduce::shuffle::{
    merge_runs, merge_runs_heap, read_frame, reduce_merge, reduce_merge_materialized, write_frame,
    CodecPolicy, Segment,
};
use gesall_mapreduce::{
    ClusterResources, HashPartitioner, InputSplit, JobConfig, MapContext, MapReduceEngine, Mapper,
    ReduceContext, Reducer,
};
use proptest::prelude::*;

struct KeyMod(u64);
impl Mapper for KeyMod {
    type InKey = u64;
    type InValue = u64;
    type OutKey = u64;
    type OutValue = u64;
    fn map(&self, k: &u64, v: &u64, ctx: &mut MapContext<'_, u64, u64>) {
        ctx.emit(k % self.0, v.wrapping_add(*k));
    }
}

struct SumAndCount;
impl Reducer for SumAndCount {
    type InKey = u64;
    type InValue = u64;
    type OutKey = u64;
    type OutValue = u64;
    fn reduce(&self, k: u64, vs: Vec<u64>, ctx: &mut ReduceContext<'_, u64, u64>) {
        ctx.emit(k, vs.iter().fold(0u64, |a, b| a.wrapping_add(*b)));
        ctx.emit(k, vs.len() as u64);
    }
}

fn run(
    records: &[(u64, u64)],
    n_splits: usize,
    nodes: usize,
    slots: usize,
    reducers: usize,
    sort_bytes: usize,
    compress: bool,
) -> Vec<(u64, u64)> {
    let engine = MapReduceEngine::new(ClusterResources::uniform(nodes, slots, 1 << 20));
    let per = records.len().div_ceil(n_splits.max(1)).max(1);
    let splits: Vec<InputSplit<u64, u64>> = records
        .chunks(per)
        .enumerate()
        .map(|(i, c)| InputSplit::new(format!("s{i}"), c.to_vec()))
        .collect();
    let cfg = JobConfig {
        n_reducers: reducers,
        io_sort_bytes: sort_bytes,
        compress_map_output: compress,
        ..JobConfig::default()
    };
    let res = engine
        .run_job(cfg, &KeyMod(17), &SumAndCount, &HashPartitioner, splits)
        .expect("fault-free job must succeed");
    let mut all: Vec<(u64, u64)> = res.outputs.into_iter().flatten().collect();
    all.sort_unstable();
    all
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn output_invariant_under_execution_shape(
        records in proptest::collection::vec((0u64..1000, 0u64..1_000_000), 1..300),
        n_splits in 1usize..8,
        nodes in 1usize..5,
        slots in 1usize..4,
        reducers in 1usize..6,
        sort_shift in 6u32..16,
        compress in any::<bool>(),
    ) {
        let baseline = run(&records, 1, 1, 1, 1, 1 << 20, false);
        let varied = run(&records, n_splits, nodes, slots, reducers, 1usize << sort_shift, compress);
        prop_assert_eq!(baseline, varied);
    }

    #[test]
    fn merge_runs_equals_global_sort(
        runs in proptest::collection::vec(
            proptest::collection::vec((0u64..100, any::<u64>()), 0..50),
            0..6,
        )
    ) {
        let sorted_runs: Vec<Vec<(u64, u64)>> = runs
            .into_iter()
            .map(|mut r| {
                r.sort_by_key(|(k, _)| *k);
                r
            })
            .collect();
        let mut expected: Vec<(u64, u64)> = sorted_runs.iter().flatten().cloned().collect();
        expected.sort_by_key(|(k, _)| *k); // stable: preserves run order for ties
        let merged = merge_runs(sorted_runs);
        // Key sequence identical; values per key form the same multiset.
        prop_assert_eq!(
            merged.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            expected.iter().map(|(k, _)| *k).collect::<Vec<_>>()
        );
        let mut mv: Vec<(u64, u64)> = merged;
        let mut ev = expected;
        mv.sort_unstable();
        ev.sort_unstable();
        prop_assert_eq!(mv, ev);
    }

    #[test]
    fn merge_runs_sorted_with_stable_tie_break(
        runs in proptest::collection::vec(
            proptest::collection::vec(0u64..20, 0..40),
            0..8,
        )
    ) {
        // Tag every record with its provenance (run index, position in
        // run) so stability is directly observable in the output.
        let tagged: Vec<Vec<(u64, (u64, u64))>> = runs
            .into_iter()
            .enumerate()
            .map(|(ri, mut keys)| {
                keys.sort_unstable();
                keys.into_iter()
                    .enumerate()
                    .map(|(pos, k)| (k, (ri as u64, pos as u64)))
                    .collect()
            })
            .collect();
        let total: usize = tagged.iter().map(Vec::len).sum();
        let merged = merge_runs(tagged);
        prop_assert_eq!(merged.len(), total);
        for w in merged.windows(2) {
            let (k0, (r0, p0)) = w[0];
            let (k1, (r1, p1)) = w[1];
            prop_assert!(k0 <= k1, "output must be key-sorted");
            if k0 == k1 {
                // Equal keys: earlier run wins; within one run,
                // intra-run order is preserved.
                prop_assert!(
                    r0 < r1 || (r0 == r1 && p0 < p1),
                    "tie on key {} broke stability: ({}, {}) before ({}, {})",
                    k0, r0, p0, r1, p1
                );
            }
        }
    }

    #[test]
    fn segment_roundtrip_any_pairs(
        pairs in proptest::collection::vec(("[a-z]{0,12}", any::<u64>()), 0..200),
        compress in any::<bool>(),
    ) {
        let pairs: Vec<(String, u64)> = pairs;
        let seg = Segment::from_pairs(&pairs, compress);
        prop_assert_eq!(seg.records, pairs.len() as u64);
        let back: Vec<(String, u64)> = seg.to_pairs();
        prop_assert_eq!(back, pairs);
    }

    #[test]
    fn zero_copy_decode_equals_owned_decode(
        pairs in proptest::collection::vec(("[a-z]{0,12}", any::<u64>()), 0..200),
        compress in any::<bool>(),
        window in 0usize..64,
    ) {
        // Decoding through a SharedBytes window (the zero-copy fetch
        // path) must yield records byte-identical to decoding from a
        // detached owned buffer (the old path) — even when the segment
        // sits mid-backing rather than at offset zero.
        let pairs: Vec<(String, u64)> = pairs;
        let seg = Segment::from_pairs(&pairs, compress);
        // Re-home the segment inside a larger backing, offset by
        // `window` junk bytes, as `SortSpillBuffer::finish` does.
        let mut backing = vec![0xAAu8; window];
        backing.extend_from_slice(&seg.data);
        backing.extend_from_slice(&[0x55u8; 16]);
        let shared = SharedBytes::from_vec(backing);
        let windowed = Segment {
            data: shared.slice(window..window + seg.data.len()),
            ..seg.clone()
        };
        let owned = Segment {
            data: SharedBytes::from_vec(seg.data.to_vec()),
            ..seg.clone()
        };
        prop_assert_eq!(&windowed.data, &owned.data, "segment bytes must match");
        prop_assert!(!windowed.data.same_backing(&owned.data));
        let via_window: Vec<(String, u64)> = windowed.to_pairs();
        let via_owned: Vec<(String, u64)> = owned.to_pairs();
        prop_assert_eq!(&via_window, &via_owned);
        prop_assert_eq!(via_window, pairs);
    }

    #[test]
    fn frame_roundtrip_any_offset_and_codec(
        pairs in proptest::collection::vec(("[a-z]{0,12}", any::<u64>()), 0..200),
        compress in any::<bool>(),
        codec_pick in any::<u8>(),
        min_shift in 0u32..12,
        prefix in 0usize..64,
    ) {
        // A segment framed mid-buffer (arbitrary junk prefix, arbitrary
        // codec threshold, any *registered* codec — not a hard-coded
        // Raw/Lz pair) must read back as a zero-copy window of the
        // enclosing buffer with codec, counts, and payload intact.
        let pairs: Vec<(String, u64)> = pairs;
        let codec = Codec::registry()[codec_pick as usize % Codec::registry().len()];
        let seg = Segment::from_pairs_with(
            &pairs,
            CodecPolicy::new(compress, 1usize << min_shift).with_codec(codec),
        );
        let mut buf = vec![0xAAu8; prefix];
        write_frame(&seg, &mut buf);
        write_frame(&Segment::empty(), &mut buf); // trailing neighbour
        let shared = SharedBytes::from_vec(buf);
        let (back, next) = read_frame(&shared, prefix).expect("frame must parse");
        prop_assert_eq!(back.codec, seg.codec);
        prop_assert_eq!(back.records, seg.records);
        prop_assert_eq!(back.raw_len, seg.raw_len);
        prop_assert!(back.data.same_backing(&shared), "payload must window the buffer");
        let (tail, end) = read_frame(&shared, next).expect("neighbour frame must parse");
        prop_assert_eq!(tail.records, 0);
        prop_assert_eq!(end, shared.len());
        let decoded: Vec<(String, u64)> = back.to_pairs();
        prop_assert_eq!(decoded, pairs);
    }

    #[test]
    fn compressed_by_reference_fetch_decodes_like_owned(
        pairs in proptest::collection::vec((0u64..50, any::<u64>()), 0..200),
        codec_pick in any::<u8>(),
        prefix in 0usize..48,
    ) {
        // The by-reference shuffle contract: a segment fetched as a
        // window of a larger backing (what a reducer gets from a stored
        // map output, raw or under any registered codec) must
        // reduce-merge to exactly what an owned, detached copy of the
        // same segment produces.
        let mut pairs: Vec<(u64, u64)> = pairs;
        pairs.sort_unstable();
        let codec = Codec::registry()[codec_pick as usize % Codec::registry().len()];
        let seg = Segment::from_pairs_with(
            &pairs,
            CodecPolicy::new(codec.is_compressed(), 1).with_codec(codec),
        );
        let want_codec = if codec.is_compressed() && !pairs.is_empty() { codec } else { Codec::Raw };
        prop_assert_eq!(seg.codec, want_codec);
        let mut buf = vec![0x11u8; prefix];
        write_frame(&seg, &mut buf);
        let shared = SharedBytes::from_vec(buf);
        let (fetched, _) = read_frame(&shared, prefix).expect("frame must parse");
        prop_assert!(fetched.data.same_backing(&shared));
        let owned = Segment {
            data: SharedBytes::from_vec(fetched.data.to_vec()),
            ..fetched.clone()
        };
        let c1 = gesall_mapreduce::Counters::new();
        let c2 = gesall_mapreduce::Counters::new();
        let by_ref = gesall_mapreduce::shuffle::reduce_merge::<u64, u64>(vec![fetched], 4, &c1);
        let by_copy = gesall_mapreduce::shuffle::reduce_merge::<u64, u64>(vec![owned], 4, &c2);
        prop_assert_eq!(by_ref, by_copy);
        prop_assert_eq!(c1.get("shuffle.records"), pairs.len() as u64);
    }

    #[test]
    fn checksum_verify_roundtrips_across_codecs_and_corruption(
        partitions in proptest::collection::vec(
            proptest::collection::vec(("[a-z]{0,12}", any::<u64>()), 0..60),
            1..5,
        ),
        compress in any::<bool>(),
        codec_pick in any::<u8>(),
        min_shift in 0u32..10,
        block_shift in 7u32..11,
        block_frac in 0u32..1000,
        replica_frac in 0u32..1000,
    ) {
        // A stored map output — raw frames or frames under any
        // registered codec, arbitrary block sizes cutting frames
        // mid-payload — must fetch back partition-exact even after an
        // arbitrary replica of an arbitrary block is bit-flipped:
        // verify-on-read quarantines the rot, serves from the survivor,
        // and repairs, so the codec layer above never sees a damaged
        // byte.
        use gesall_dfs::{metrics_keys, Dfs, DfsConfig};
        use gesall_mapreduce::shipping;

        let pairs: Vec<Vec<(String, u64)>> = partitions;
        let codec = Codec::registry()[codec_pick as usize % Codec::registry().len()];
        let segments: Vec<Segment> = pairs
            .iter()
            .map(|p| {
                Segment::from_pairs_with(
                    p,
                    CodecPolicy::new(compress, 1usize << min_shift).with_codec(codec),
                )
            })
            .collect();
        let dfs = Dfs::new(DfsConfig {
            n_nodes: 4,
            block_size: 1usize << block_shift,
            replication: 2,
            ..DfsConfig::default()
        });
        let counters = gesall_mapreduce::Counters::new();
        let path = "/job/shuffle-0/map-00000.segs";
        shipping::store_map_output(&dfs, path, &segments, &counters)
            .expect("store must succeed");
        let info = dfs.stat(path).expect("stored file must stat");
        let n_blocks = info.blocks.len();
        prop_assert!(n_blocks >= 1);
        let block = (block_frac as usize * n_blocks / 1000).min(n_blocks - 1);
        let n_replicas = info.blocks[block].nodes.len();
        let replica = (replica_frac as usize * n_replicas / 1000).min(n_replicas - 1);
        dfs.corrupt_block(path, block, replica).expect("corruption must land");

        for (r, expected) in pairs.iter().enumerate() {
            let seg = shipping::fetch_partition(&dfs, path, r)
                .expect("fetch must survive one corrupt replica");
            prop_assert_eq!(seg.codec, segments[r].codec, "codec tag must round-trip");
            let back: Vec<(String, u64)> = seg.to_pairs();
            prop_assert_eq!(&back, expected, "partition {} must be byte-faithful", r);
        }
        let detected = dfs.metrics().counter(metrics_keys::BLOCKS_CORRUPT_DETECTED).get();
        let repaired = dfs.metrics().counter(metrics_keys::BLOCKS_CORRUPT_REPAIRED).get();
        // The flipped replica is only detected if some fetch actually
        // read it (replica 1 homes may never serve), but any detection
        // must have been repaired in full.
        prop_assert!(detected <= 1);
        prop_assert_eq!(repaired, detected);
    }

    #[test]
    fn streaming_merge_equals_materialized_oracle(
        runs in proptest::collection::vec(
            proptest::collection::vec((0u64..200, any::<u64>()), 0..80),
            0..12,
        ),
        codec_bits in any::<u16>(),
        min_shift in 0u32..10,
        merge_factor in 2usize..=16,
    ) {
        // The streaming reduce merge (lazy run cursors, merge_factor-
        // bounded residency) must be indistinguishable from the eager
        // materializing oracle on any mix of run sizes, codecs, and
        // fan-ins — including empty runs, singleton runs, duplicate
        // keys across runs, and run counts forcing multipass merges.
        // Every registered codec rotates through the mix, so a new
        // registry entry is exercised here without editing the test.
        let segments: Vec<Segment> = runs
            .into_iter()
            .enumerate()
            .map(|(i, mut pairs)| {
                pairs.sort_unstable();
                let compress = (codec_bits >> (i % 16)) & 1 == 1;
                let codec = Codec::registry()[i % Codec::registry().len()];
                Segment::from_pairs_with(
                    &pairs,
                    CodecPolicy::new(compress, 1usize << min_shift).with_codec(codec),
                )
            })
            .collect();
        let total_records: u64 = segments.iter().map(|s| s.records).sum();
        let c_stream = gesall_mapreduce::Counters::new();
        let c_oracle = gesall_mapreduce::Counters::new();
        let streaming =
            reduce_merge::<u64, u64>(segments.clone(), merge_factor, &c_stream);
        let materialized =
            reduce_merge_materialized::<u64, u64>(segments, merge_factor, &c_oracle);
        prop_assert_eq!(streaming, materialized);
        // The streaming path keeps the shuffle accounting intact.
        prop_assert_eq!(c_stream.get("shuffle.records"), total_records);
        let _ = &c_oracle;
        // The streaming path reports its residency peak whenever it
        // actually held records.
        if total_records > 0 {
            prop_assert!(c_stream.get("mem.reduce.peak_resident") > 0);
        }
    }
}

// ---------------------------------------------------------------------
// Bit-parallel spill kernels (DESIGN.md §5): the radix spill sort and
// the loser-tree merge, each pinned to its comparison twin on arbitrary
// inputs.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn loser_tree_merge_matches_heap(
        runs in proptest::collection::vec(
            proptest::collection::vec((0u64..64, any::<u64>()), 0..40),
            0..12,
        ),
    ) {
        // Narrow key range forces heavy duplication, so the stable
        // tie-break (lower run index first) is exercised constantly.
        let sorted: Vec<Vec<(u64, u64)>> = runs
            .into_iter()
            .map(|mut r| { r.sort_by_key(|a| a.0); r })
            .collect();
        prop_assert_eq!(
            merge_runs::<u64, u64>(sorted.clone()),
            merge_runs_heap::<u64, u64>(sorted)
        );
    }

    #[test]
    fn loser_tree_merge_matches_heap_on_strings(
        runs in proptest::collection::vec(
            proptest::collection::vec((0u32..40, any::<u64>()), 0..30),
            1..9,
        ),
    ) {
        // Shared-prefix string keys: the first-8-bytes sort prefix ties
        // everywhere and the Ord fallback decides.
        let sorted: Vec<Vec<(String, u64)>> = runs
            .into_iter()
            .map(|r| {
                let mut r: Vec<(String, u64)> = r
                    .into_iter()
                    .map(|(k, v)| (format!("read-{k:04}"), v))
                    .collect();
                r.sort_by(|a, b| a.0.cmp(&b.0));
                r
            })
            .collect();
        prop_assert_eq!(
            merge_runs::<String, u64>(sorted.clone()),
            merge_runs_heap::<String, u64>(sorted)
        );
    }

    #[test]
    fn radix_spill_sort_matches_comparison_twin(
        records in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..400),
        n_partitions in 1usize..6,
        io_sort_bytes in 64usize..4096,
    ) {
        // The same emission stream through both spill-sort kernels must
        // produce identical segments, spill pattern and all.
        let p = HashPartitioner;
        let run = |radix: bool| -> Vec<Vec<(u64, u64)>> {
            let counters = gesall_mapreduce::Counters::new();
            let mut buf = gesall_mapreduce::shuffle::SortSpillBuffer::new(
                io_sort_bytes,
                n_partitions,
                &p,
                false,
                counters,
            )
            .with_radix(radix);
            for &(k, v) in &records {
                buf.emit(k, v);
            }
            buf.finish().iter().map(|s| s.to_pairs::<u64, u64>()).collect()
        };
        prop_assert_eq!(run(true), run(false));
    }

    #[test]
    fn radix_spill_sort_matches_comparison_twin_on_strings(
        records in proptest::collection::vec((0u32..200, any::<u64>()), 0..300),
        n_partitions in 1usize..5,
    ) {
        // String keys with a long shared prefix: every sort prefix ties,
        // so the radix path must lean entirely on its comparison
        // fallback and still match the twin record for record.
        let p = HashPartitioner;
        let keyed: Vec<(String, u64)> = records
            .into_iter()
            .map(|(k, v)| (format!("sample-0001-read-{k:06}"), v))
            .collect();
        let run = |radix: bool| -> Vec<Vec<(String, u64)>> {
            let counters = gesall_mapreduce::Counters::new();
            let mut buf = gesall_mapreduce::shuffle::SortSpillBuffer::new(
                512,
                n_partitions,
                &p,
                false,
                counters,
            )
            .with_radix(radix);
            for (k, v) in keyed.iter().cloned() {
                buf.emit(k, v);
            }
            buf.finish().iter().map(|s| s.to_pairs::<String, u64>()).collect()
        };
        prop_assert_eq!(run(true), run(false));
    }
}
