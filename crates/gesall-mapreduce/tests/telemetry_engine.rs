//! Engine ↔ telemetry integration: the span tree a traced job emits,
//! the six-phase counter decomposition, the shuffle matrix, and the
//! overhead bound instrumentation must honor when tracing is off.

use gesall_mapreduce::{
    ClusterResources, HashPartitioner, InputSplit, JobConfig, MapContext, MapReduceEngine, Mapper,
    Phase, Recorder, ReduceContext, Reducer, SpanKind,
};

struct Tokenize;
impl Mapper for Tokenize {
    type InKey = u64;
    type InValue = String;
    type OutKey = String;
    type OutValue = u64;
    fn map(&self, _k: &u64, line: &String, ctx: &mut MapContext<'_, String, u64>) {
        for w in line.split_whitespace() {
            ctx.emit(w.to_string(), 1);
        }
    }
}

struct Sum;
impl Reducer for Sum {
    type InKey = String;
    type InValue = u64;
    type OutKey = String;
    type OutValue = u64;
    fn reduce(&self, k: String, vs: Vec<u64>, ctx: &mut ReduceContext<'_, String, u64>) {
        ctx.emit(k, vs.iter().sum());
    }
}

fn word_splits(n_splits: usize, lines_per: usize) -> Vec<InputSplit<u64, String>> {
    (0..n_splits)
        .map(|s| {
            let records = (0..lines_per)
                .map(|i| {
                    (
                        i as u64,
                        format!("alpha beta gamma w{} delta", (s * lines_per + i) % 29),
                    )
                })
                .collect();
            InputSplit::new(format!("split-{s}"), records)
        })
        .collect()
}

fn run_job(engine: &MapReduceEngine, n_splits: usize, lines: usize) -> f64 {
    let cfg = JobConfig {
        name: "telemetry-test".into(),
        n_reducers: 3,
        io_sort_bytes: 2048, // force spills so sort-spill/map-merge show up
        ..JobConfig::default()
    };
    let res = engine
        .run_job(
            cfg,
            &Tokenize,
            &Sum,
            &HashPartitioner,
            word_splits(n_splits, lines),
        )
        .expect("fault-free job must succeed");
    res.wall_ms
}

#[test]
fn traced_job_emits_full_span_tree() {
    let recorder = Recorder::new();
    let engine = MapReduceEngine::new(ClusterResources::uniform(2, 2, 4096))
        .with_recorder(recorder.clone());
    run_job(&engine, 4, 30);

    let jobs = recorder.spans_of_kind(SpanKind::Job);
    assert_eq!(jobs.len(), 1);
    assert_eq!(jobs[0].name, "telemetry-test");

    let waves = recorder.spans_of_kind(SpanKind::Wave);
    assert_eq!(waves.len(), 2, "one map wave + one reduce wave");
    assert!(waves.iter().all(|w| w.parent == jobs[0].id));
    let names: Vec<&str> = waves.iter().map(|w| w.name.as_str()).collect();
    assert!(names.contains(&"map-wave") && names.contains(&"reduce-wave"));

    let attempts = recorder.spans_of_kind(SpanKind::TaskAttempt);
    assert_eq!(attempts.len(), 7, "4 maps + 3 reduces, no retries");
    let wave_ids: Vec<_> = waves.iter().map(|w| w.id).collect();
    for a in &attempts {
        assert!(wave_ids.contains(&a.parent), "attempt parented to a wave");
        assert!(a.end_ms >= a.start_ms);
        assert!(a.meta.iter().any(|(k, v)| k == "outcome" && v == "Succeeded"));
        assert!(!a.metrics.is_empty(), "attempt carries its counter bag");
    }
}

#[test]
fn all_six_phases_are_timed() {
    let engine = MapReduceEngine::new(ClusterResources::uniform(2, 2, 4096));
    let cfg = JobConfig {
        n_reducers: 3,
        io_sort_bytes: 1024,
        merge_factor: 2, // force intermediate reduce-merge passes
        ..JobConfig::default()
    };
    let res = engine
        .run_job(cfg, &Tokenize, &Sum, &HashPartitioner, word_splits(6, 40))
        .unwrap();
    for phase in Phase::ALL {
        assert!(
            res.counters.get(phase.counter_key()) > 0,
            "phase {} must accumulate nanos",
            phase.name()
        );
    }
}

#[test]
fn shuffle_matrix_covers_every_map_reduce_pair_once() {
    let recorder = Recorder::new();
    let engine = MapReduceEngine::local(2).with_recorder(recorder.clone());
    run_job(&engine, 4, 20);
    let cells = recorder.shuffle_cells();
    assert_eq!(cells.len(), 4 * 3, "one cell per (map, reduce) pair");
    let total: u64 = cells.iter().map(|c| c.bytes).sum();
    assert!(total > 0);
    // No duplicates even though tasks may retry or speculate.
    let mut pairs: Vec<(usize, usize)> =
        cells.iter().map(|c| (c.map_task, c.reduce_task)).collect();
    pairs.sort_unstable();
    pairs.dedup();
    assert_eq!(pairs.len(), 12);
}

#[test]
fn disabled_recorder_records_nothing() {
    let engine = MapReduceEngine::local(2); // default: Recorder::disabled()
    run_job(&engine, 3, 20);
    assert!(engine.recorder().spans().is_empty());
    assert!(engine.recorder().shuffle_cells().is_empty());
    assert!(!engine.recorder().is_enabled());
}

/// The acceptance bound: tracing with a live sink must cost < 5%
/// wall-clock versus the disabled recorder. Best-of-N on both sides
/// plus a small absolute grace absorbs scheduler noise; the real signal
/// is that per-span work is O(tasks), not O(records).
#[test]
fn telemetry_overhead_under_five_percent() {
    let best = |recorder: fn() -> Recorder| -> f64 {
        (0..5)
            .map(|_| {
                let engine = MapReduceEngine::local(2).with_recorder(recorder());
                run_job(&engine, 6, 120)
            })
            .fold(f64::INFINITY, f64::min)
    };
    let disabled = best(Recorder::disabled);
    let enabled = best(|| Recorder::with_sink(Box::new(std::io::sink())));
    assert!(
        enabled <= disabled * 1.05 + 2.0,
        "telemetry overhead too high: enabled {enabled:.2} ms vs disabled {disabled:.2} ms"
    );
}
