//! Kernel microbenches: each bit-parallel map-phase kernel (DESIGN.md
//! §5) timed head-to-head against the scalar twin it is pinned to —
//! packed-BWT rank vs the symbol-at-a-time scan, banded Smith–Waterman
//! vs the full DP, radix spill sort vs the comparison sort.
//!
//! Hand-rolled harness (no criterion: this is a `bin`, and the paired
//! run must share inputs exactly): warm up, sample each side N times,
//! report the median ns/op and the speedup. A `BENCH_micro.json` record
//! is appended under the output dir (first CLI arg, default `.`), next
//! to bench-smoke's record, so CI archives both.

use gesall_aligner::fm::FmIndex;
use gesall_aligner::sw::{self, Band, Scoring};
use gesall_datagen::donor::DonorConfig;
use gesall_datagen::reads::ReadSimConfig;
use gesall_datagen::{DonorGenome, GenomeConfig, ReadSimulator, ReferenceGenome};
use gesall_formats::sam::SamRecord;
use gesall_formats::wire::Wire;
use gesall_formats::Codec;
use gesall_mapreduce::shuffle::SortSpillBuffer;
use gesall_mapreduce::task::HashPartitioner;
use gesall_mapreduce::Counters;
use gesall_telemetry::BenchRecord;
use std::hint::black_box;
use std::path::Path;
use std::time::Instant;

fn pseudo_dna(len: usize, seed: u64) -> Vec<u8> {
    let mut x = seed;
    (0..len)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            b"ACGT"[(x >> 33) as usize % 4]
        })
        .collect()
}

/// Median ns per call of `f` over `samples` timed runs of `iters`
/// calls each, after one untimed warmup run.
fn time_ns(samples: usize, iters: usize, mut f: impl FnMut()) -> u64 {
    for _ in 0..iters {
        f();
    }
    let mut runs: Vec<u64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            t0.elapsed().as_nanos() as u64 / iters as u64
        })
        .collect();
    runs.sort_unstable();
    runs[runs.len() / 2]
}

struct Pair {
    name: &'static str,
    kernel_ns: u64,
    scalar_ns: u64,
}

impl Pair {
    fn speedup(&self) -> f64 {
        if self.kernel_ns == 0 {
            0.0
        } else {
            self.scalar_ns as f64 / self.kernel_ns as f64
        }
    }
}

/// occ rank over a 64 kbp BWT: whole-word XOR+popcount vs the
/// symbol-at-a-time scan, probed at positions spread across checkpoint
/// strides so both sides pay every remainder length.
fn bench_occ() -> Pair {
    let text = pseudo_dna(1 << 16, 0xB817);
    let fm = FmIndex::build(&text);
    let n = text.len() + 1;
    let probes: Vec<(u8, usize)> = (0..256)
        .map(|k| ((k % 4) as u8 + 1, (k * 509 + 37) % (n + 1)))
        .collect();
    let kernel_ns = time_ns(15, 200, || {
        for &(c, i) in &probes {
            black_box(fm.occ_words(c, i));
        }
    });
    let scalar_ns = time_ns(15, 200, || {
        for &(c, i) in &probes {
            black_box(fm.occ_scalar(c, i));
        }
    });
    Pair {
        name: "occ_rank_256_probes",
        kernel_ns,
        scalar_ns,
    }
}

/// Seed extension of a 100 bp read against a 240 bp window: the banded
/// DP (slack 16, the production window margin) vs the full DP, on a
/// read with a few substitutions so the traceback is non-trivial.
fn bench_sw() -> Pair {
    let window = pseudo_dna(240, 0x57AB);
    let offset = 70usize;
    let mut query = window[offset..offset + 100].to_vec();
    for p in [11usize, 47, 83] {
        query[p] = match query[p] {
            b'A' => b'C',
            b'C' => b'G',
            b'G' => b'T',
            _ => b'A',
        };
    }
    let scoring = Scoring::default();
    let band = Band::around_offset(offset as isize, 16);
    let kernel_ns = sw::with_workspace(|ws| {
        time_ns(15, 400, || {
            black_box(sw::local_align_banded(&query, &window, &scoring, band, ws));
        })
    });
    let scalar_ns = sw::with_workspace(|ws| {
        time_ns(15, 400, || {
            black_box(sw::local_align_with(&query, &window, &scoring, ws));
        })
    });
    Pair {
        name: "sw_extend_100bp_in_240bp",
        kernel_ns,
        scalar_ns,
    }
}

/// The spill path end to end — emit 20k u64 records through the
/// sort-spill buffer and drain it — with the radix kernel vs the
/// comparison sort. Keys are shuffled so every radix byte pass works.
fn bench_spill_sort() -> Pair {
    let records: Vec<(u64, u64)> = (0..20_000u64)
        .map(|i| (i.wrapping_mul(0x9E37_79B9_7F4A_7C15), i))
        .collect();
    let p = HashPartitioner;
    let run = |radix: bool| {
        time_ns(9, 5, || {
            let mut buf =
                SortSpillBuffer::new(64 * 1024, 4, &p, false, Counters::new()).with_radix(radix);
            for &(k, v) in &records {
                buf.emit(k, v);
            }
            black_box(buf.finish());
        })
    };
    Pair {
        name: "spill_sort_20k_u64",
        kernel_ns: run(true),
        scalar_ns: run(false),
    }
}

struct CodecRow {
    name: &'static str,
    compress_ns_per_byte: f64,
    decompress_ns_per_byte: f64,
    ratio: f64,
}

/// Every registered compressed codec on the same simulated-read
/// alignment-record stream (datagen reads, wire-encoded exactly as a
/// map-output partition carries them): compress/decompress ns per raw
/// byte and the achieved ratio. The Seq row is the genomic domain codec
/// the shuffle hints for `SamRecord` streams; Lz is the general-purpose
/// baseline it must beat on this payload.
fn bench_codecs() -> Vec<CodecRow> {
    let genome = ReferenceGenome::generate(&GenomeConfig {
        chromosome_lengths: vec![50_000],
        ..GenomeConfig::default()
    });
    let donor = DonorGenome::generate(&genome, &DonorConfig::default());
    let (pairs, _) = ReadSimulator::new(
        &genome,
        &donor,
        ReadSimConfig {
            n_pairs: 1_000,
            ..ReadSimConfig::default()
        },
    )
    .simulate();
    let mut blob = Vec::new();
    let mut pos = 0i64;
    for (i, p) in pairs.iter().enumerate() {
        for r in [&p.r1, &p.r2] {
            let mut rec = SamRecord::unmapped(r.name.clone(), r.seq.clone(), r.qual.clone());
            // Mostly-sorted positions, like a sorted partition payload.
            pos += (i % 7) as i64;
            rec.pos = pos;
            rec.encode(&mut blob);
        }
    }
    Codec::registry()
        .iter()
        .filter(|c| c.is_compressed())
        .map(|&codec| {
            let mut encoded = Vec::new();
            codec.encode_append(&blob, &mut encoded);
            let roundtrip = codec.decode(&encoded).expect("codec must roundtrip");
            assert_eq!(roundtrip, blob, "{} is not lossless", codec.name());
            let compress_ns = time_ns(9, 3, || {
                let mut out = Vec::new();
                codec.encode_append(black_box(&blob), &mut out);
                black_box(out.len());
            });
            let decompress_ns = time_ns(9, 3, || {
                black_box(codec.decode(black_box(&encoded)).unwrap().len());
            });
            CodecRow {
                name: codec.name(),
                compress_ns_per_byte: compress_ns as f64 / blob.len() as f64,
                decompress_ns_per_byte: decompress_ns as f64 / blob.len() as f64,
                ratio: blob.len() as f64 / encoded.len() as f64,
            }
        })
        .collect()
}

fn main() {
    let out_dir = std::env::args().nth(1).unwrap_or_else(|| ".".into());
    let t0 = Instant::now();
    let pairs = [bench_occ(), bench_sw(), bench_spill_sort()];
    let codec_rows = bench_codecs();

    println!("== bench-micro: bit-parallel kernels vs scalar twins ==\n");
    println!(
        "{:<28} {:>14} {:>14} {:>9}",
        "kernel", "kernel ns/op", "scalar ns/op", "speedup"
    );
    for p in &pairs {
        println!(
            "{:<28} {:>14} {:>14} {:>8.2}x",
            p.name,
            p.kernel_ns,
            p.scalar_ns,
            p.speedup()
        );
    }

    println!("\n== bench-micro: shuffle codecs on datagen reads ==\n");
    println!(
        "{:<28} {:>16} {:>18} {:>8}",
        "codec", "compress ns/B", "decompress ns/B", "ratio"
    );
    for r in &codec_rows {
        println!(
            "{:<28} {:>16.3} {:>18.3} {:>7.2}x",
            r.name, r.compress_ns_per_byte, r.decompress_ns_per_byte, r.ratio
        );
    }

    let mut record = BenchRecord::new("micro");
    record.wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    for p in &pairs {
        record
            .workload
            .push((format!("{}_kernel_ns", p.name), p.kernel_ns.to_string()));
        record
            .workload
            .push((format!("{}_scalar_ns", p.name), p.scalar_ns.to_string()));
        record
            .workload
            .push((format!("{}_speedup", p.name), format!("{:.2}", p.speedup())));
    }
    for r in &codec_rows {
        record.workload.push((
            format!("codec_{}_compress_ns_per_byte", r.name),
            format!("{:.3}", r.compress_ns_per_byte),
        ));
        record.workload.push((
            format!("codec_{}_decompress_ns_per_byte", r.name),
            format!("{:.3}", r.decompress_ns_per_byte),
        ));
        record
            .workload
            .push((format!("codec_{}_ratio", r.name), format!("{:.2}", r.ratio)));
    }
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("cannot create output dir {out_dir}: {e}");
        std::process::exit(1);
    }
    match record.append_to_dir(Path::new(&out_dir)) {
        Ok(path) => println!("\nBench record appended to {}", path.display()),
        Err(e) => {
            eprintln!("cannot write bench record: {e}");
            std::process::exit(1);
        }
    }
}
