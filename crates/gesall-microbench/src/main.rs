//! Kernel microbenches: each bit-parallel map-phase kernel (DESIGN.md
//! §5) timed head-to-head against the scalar twin it is pinned to —
//! packed-BWT rank vs the symbol-at-a-time scan, banded Smith–Waterman
//! vs the full DP, radix spill sort vs the comparison sort.
//!
//! Hand-rolled harness (no criterion: this is a `bin`, and the paired
//! run must share inputs exactly): warm up, sample each side N times,
//! report the median ns/op and the speedup. A `BENCH_micro.json` record
//! is appended under the output dir (first CLI arg, default `.`), next
//! to bench-smoke's record, so CI archives both.

use gesall_aligner::fm::FmIndex;
use gesall_aligner::sw::{self, Band, Scoring};
use gesall_mapreduce::shuffle::SortSpillBuffer;
use gesall_mapreduce::task::HashPartitioner;
use gesall_mapreduce::Counters;
use gesall_telemetry::BenchRecord;
use std::hint::black_box;
use std::path::Path;
use std::time::Instant;

fn pseudo_dna(len: usize, seed: u64) -> Vec<u8> {
    let mut x = seed;
    (0..len)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            b"ACGT"[(x >> 33) as usize % 4]
        })
        .collect()
}

/// Median ns per call of `f` over `samples` timed runs of `iters`
/// calls each, after one untimed warmup run.
fn time_ns(samples: usize, iters: usize, mut f: impl FnMut()) -> u64 {
    for _ in 0..iters {
        f();
    }
    let mut runs: Vec<u64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            t0.elapsed().as_nanos() as u64 / iters as u64
        })
        .collect();
    runs.sort_unstable();
    runs[runs.len() / 2]
}

struct Pair {
    name: &'static str,
    kernel_ns: u64,
    scalar_ns: u64,
}

impl Pair {
    fn speedup(&self) -> f64 {
        if self.kernel_ns == 0 {
            0.0
        } else {
            self.scalar_ns as f64 / self.kernel_ns as f64
        }
    }
}

/// occ rank over a 64 kbp BWT: whole-word XOR+popcount vs the
/// symbol-at-a-time scan, probed at positions spread across checkpoint
/// strides so both sides pay every remainder length.
fn bench_occ() -> Pair {
    let text = pseudo_dna(1 << 16, 0xB817);
    let fm = FmIndex::build(&text);
    let n = text.len() + 1;
    let probes: Vec<(u8, usize)> = (0..256)
        .map(|k| ((k % 4) as u8 + 1, (k * 509 + 37) % (n + 1)))
        .collect();
    let kernel_ns = time_ns(15, 200, || {
        for &(c, i) in &probes {
            black_box(fm.occ_words(c, i));
        }
    });
    let scalar_ns = time_ns(15, 200, || {
        for &(c, i) in &probes {
            black_box(fm.occ_scalar(c, i));
        }
    });
    Pair {
        name: "occ_rank_256_probes",
        kernel_ns,
        scalar_ns,
    }
}

/// Seed extension of a 100 bp read against a 240 bp window: the banded
/// DP (slack 16, the production window margin) vs the full DP, on a
/// read with a few substitutions so the traceback is non-trivial.
fn bench_sw() -> Pair {
    let window = pseudo_dna(240, 0x57AB);
    let offset = 70usize;
    let mut query = window[offset..offset + 100].to_vec();
    for p in [11usize, 47, 83] {
        query[p] = match query[p] {
            b'A' => b'C',
            b'C' => b'G',
            b'G' => b'T',
            _ => b'A',
        };
    }
    let scoring = Scoring::default();
    let band = Band::around_offset(offset as isize, 16);
    let kernel_ns = sw::with_workspace(|ws| {
        time_ns(15, 400, || {
            black_box(sw::local_align_banded(&query, &window, &scoring, band, ws));
        })
    });
    let scalar_ns = sw::with_workspace(|ws| {
        time_ns(15, 400, || {
            black_box(sw::local_align_with(&query, &window, &scoring, ws));
        })
    });
    Pair {
        name: "sw_extend_100bp_in_240bp",
        kernel_ns,
        scalar_ns,
    }
}

/// The spill path end to end — emit 20k u64 records through the
/// sort-spill buffer and drain it — with the radix kernel vs the
/// comparison sort. Keys are shuffled so every radix byte pass works.
fn bench_spill_sort() -> Pair {
    let records: Vec<(u64, u64)> = (0..20_000u64)
        .map(|i| (i.wrapping_mul(0x9E37_79B9_7F4A_7C15), i))
        .collect();
    let p = HashPartitioner;
    let run = |radix: bool| {
        time_ns(9, 5, || {
            let mut buf =
                SortSpillBuffer::new(64 * 1024, 4, &p, false, Counters::new()).with_radix(radix);
            for &(k, v) in &records {
                buf.emit(k, v);
            }
            black_box(buf.finish());
        })
    };
    Pair {
        name: "spill_sort_20k_u64",
        kernel_ns: run(true),
        scalar_ns: run(false),
    }
}

fn main() {
    let out_dir = std::env::args().nth(1).unwrap_or_else(|| ".".into());
    let t0 = Instant::now();
    let pairs = [bench_occ(), bench_sw(), bench_spill_sort()];

    println!("== bench-micro: bit-parallel kernels vs scalar twins ==\n");
    println!(
        "{:<28} {:>14} {:>14} {:>9}",
        "kernel", "kernel ns/op", "scalar ns/op", "speedup"
    );
    for p in &pairs {
        println!(
            "{:<28} {:>14} {:>14} {:>8.2}x",
            p.name,
            p.kernel_ns,
            p.scalar_ns,
            p.speedup()
        );
    }

    let mut record = BenchRecord::new("micro");
    record.wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    for p in &pairs {
        record
            .workload
            .push((format!("{}_kernel_ns", p.name), p.kernel_ns.to_string()));
        record
            .workload
            .push((format!("{}_scalar_ns", p.name), p.scalar_ns.to_string()));
        record
            .workload
            .push((format!("{}_speedup", p.name), format!("{:.2}", p.speedup())));
    }
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("cannot create output dir {out_dir}: {e}");
        std::process::exit(1);
    }
    match record.append_to_dir(Path::new(&out_dir)) {
        Ok(path) => println!("\nBench record appended to {}", path.display()),
        Err(e) => {
            eprintln!("cannot write bench record: {e}");
            std::process::exit(1);
        }
    }
}
