//! The Bwa performance model: thread scaling (Fig. 5c), per-mapper
//! index-load overhead (Fig. 5a, Table 4), and alignment-round wall
//! clock (Tables 6/7).

use crate::spec::{ClusterSpec, WorkloadSpec};

/// CPU cycles to align one read (calibrated so the single-server
/// 12-core run lands near the paper's ~24.5 h Bwa step).
pub const CYCLES_PER_READ: f64 = 6.3e5;

/// Cycles to load + build in-memory structures for the reference index,
/// per GB (dominates small-partition configurations, Fig. 5a).
pub const INDEX_LOAD_CYCLES_PER_GB: f64 = 6.0e9;

/// Last-level cache misses per read during alignment (FM-index walks are
/// cache-hostile).
pub const CACHE_MISSES_PER_READ: f64 = 900.0;

/// Cache misses per GB of index loaded (streaming through it).
pub const CACHE_MISSES_PER_INDEX_GB: f64 = 1.6e7;

/// Readahead configuration of the input file (Fig. 5c's two curves).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Readahead {
    /// Linux default: 128 KB — the read-and-parse call blocks often.
    Small,
    /// Tuned: 64 MB — the kernel prefetches ahead of the parser.
    Large,
}

impl Readahead {
    /// The serial fraction of Bwa's per-batch work attributable to the
    /// synchronized read-and-parse step (the bottleneck §4.3 profiles).
    pub fn serial_fraction(self) -> f64 {
        match self {
            Readahead::Small => 0.055,
            Readahead::Large => 0.018,
        }
    }
}

/// Multi-threaded Bwa speedup at `threads`, for a given readahead — the
/// model behind Fig. 5c. Amdahl on the serial read-and-parse step, plus
/// a batch-barrier penalty ("computation threads wait for all other
/// threads to finish before issuing a common read"): stragglers cost a
/// little more as thread count grows.
pub fn thread_speedup(threads: usize, readahead: Readahead) -> f64 {
    let n = threads.max(1) as f64;
    let s = readahead.serial_fraction();
    let amdahl = 1.0 / (s + (1.0 - s) / n);
    let barrier = 1.0 / (1.0 + 0.004 * n);
    amdahl * barrier
}

/// Reads/second of one Bwa process with `threads` threads on a node of
/// the given clock.
pub fn process_throughput(ghz: f64, threads: usize, readahead: Readahead) -> f64 {
    let single = ghz * 1e9 / CYCLES_PER_READ;
    single * thread_speedup(threads, readahead)
}

/// Aggregate CPU cycles and cache misses of an alignment job run as
/// `n_partitions` mapper invocations (Fig. 5a: each mapper reloads the
/// index).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlignmentCost {
    pub cpu_cycles: f64,
    pub cache_misses: f64,
}

pub fn alignment_cost(workload: &WorkloadSpec, n_partitions: usize) -> AlignmentCost {
    let n = n_partitions.max(1) as f64;
    AlignmentCost {
        cpu_cycles: workload.reads() as f64 * CYCLES_PER_READ
            + n * workload.index_gb * INDEX_LOAD_CYCLES_PER_GB,
        cache_misses: workload.reads() as f64 * CACHE_MISSES_PER_READ
            + n * workload.index_gb * CACHE_MISSES_PER_INDEX_GB,
    }
}

/// Configuration of a parallel alignment round: `mappers_per_node`
/// processes × `threads_per_mapper` threads (the paper's process-thread
/// hierarchy, §4.3/§4.5.1).
#[derive(Debug, Clone, Copy)]
pub struct AlignRoundConfig {
    pub n_partitions: usize,
    pub mappers_per_node: usize,
    pub threads_per_mapper: usize,
    pub readahead: Readahead,
    /// Per-byte overhead factor of Hadoop-streaming data transformation
    /// (§4.3 notes streaming costs keep 1-thread-baseline speedup
    /// sublinear). 1.0 = no overhead.
    pub streaming_overhead: f64,
}

impl AlignRoundConfig {
    /// The paper's recommended Cluster A configuration: 90 partitions,
    /// 6 mappers × 4 threads per node.
    pub fn cluster_a_best() -> AlignRoundConfig {
        AlignRoundConfig {
            n_partitions: 90,
            mappers_per_node: 6,
            threads_per_mapper: 4,
            readahead: Readahead::Small,
            streaming_overhead: 1.12,
        }
    }
}

/// Simulated wall-clock seconds of a parallel alignment round.
pub fn alignment_round_seconds(
    cluster: &ClusterSpec,
    workload: &WorkloadSpec,
    cfg: &AlignRoundConfig,
) -> f64 {
    let node = &cluster.node;
    // Each mapper process scales like a small Bwa.
    let per_process = process_throughput(node.ghz, cfg.threads_per_mapper, cfg.readahead);
    let node_throughput = per_process * cfg.mappers_per_node as f64;
    let cluster_throughput = node_throughput * cluster.n_nodes as f64;
    let align_s = workload.reads() as f64 / cluster_throughput * cfg.streaming_overhead;
    // Index loads: every mapper *invocation* pays one; invocations per
    // wave slot = partitions / (nodes × mappers_per_node).
    let slots = (cluster.n_nodes * cfg.mappers_per_node).max(1);
    let waves = (cfg.n_partitions as f64 / slots as f64).ceil();
    let index_load_s =
        waves * workload.index_gb * INDEX_LOAD_CYCLES_PER_GB / (node.ghz * 1e9);
    // Input read time per wave slot (compressed FASTQ off local disk,
    // shared by concurrent mappers on the node).
    let node_input_gb = workload.input_gb / cluster.n_nodes as f64;
    let read_s = node_input_gb * 1024.0 / node.disk_bandwidth_total();
    align_s + index_load_s + read_s
}

/// Single-node multi-threaded Bwa wall clock (the Table 6 baseline).
pub fn single_node_bwa_seconds(
    cluster: &ClusterSpec,
    workload: &WorkloadSpec,
    threads: usize,
    readahead: Readahead,
) -> f64 {
    let tput = process_throughput(cluster.node.ghz, threads, readahead);
    workload.reads() as f64 / tput
        + workload.index_gb * INDEX_LOAD_CYCLES_PER_GB / (cluster.node.ghz * 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ClusterSpec;

    #[test]
    fn speedup_saturates_like_fig5c() {
        // Small readahead: clearly sublinear at 24 threads.
        let s24 = thread_speedup(24, Readahead::Small);
        assert!((9.0..13.0).contains(&s24), "got {s24}");
        // Large readahead: distinctly better but still sublinear.
        let l24 = thread_speedup(24, Readahead::Large);
        assert!(l24 > s24 + 3.0, "64MB readahead must help: {l24} vs {s24}");
        assert!(l24 < 24.0, "never ideal");
        // Monotone in threads.
        for t in 1..24 {
            assert!(thread_speedup(t + 1, Readahead::Small) > thread_speedup(t, Readahead::Small));
        }
        // Near-ideal at low thread counts.
        assert!(thread_speedup(2, Readahead::Large) > 1.85);
        assert!((thread_speedup(1, Readahead::Small) - 1.0).abs() < 0.01);
    }

    #[test]
    fn single_server_bwa_lands_near_table2() {
        // Table 2 anchor: ~24.5 h on the 12-core single server.
        let s = single_node_bwa_seconds(
            &ClusterSpec::single_server(),
            &WorkloadSpec::na12878(),
            12,
            Readahead::Small,
        );
        let hours = s / 3600.0;
        assert!(
            (18.0..32.0).contains(&hours),
            "single-server Bwa should be ~24.5h, got {hours:.1}h"
        );
    }

    #[test]
    fn index_reload_dominates_small_partitions_like_table4() {
        let w = WorkloadSpec::na12878();
        let big = alignment_cost(&w, 15);
        let small = alignment_cost(&w, 4800);
        assert!(
            small.cpu_cycles > big.cpu_cycles * 1.005,
            "4800 index loads must cost visibly more cycles"
        );
        assert!(small.cache_misses > big.cache_misses * 1.1);
        // And wall clock follows (Table 4 round 1): same cluster, more
        // partitions per slot ⇒ more waves ⇒ slower.
        let a = ClusterSpec::cluster_a();
        let t_big = alignment_round_seconds(
            &a,
            &w,
            &AlignRoundConfig {
                n_partitions: 15,
                mappers_per_node: 1,
                threads_per_mapper: 6,
                readahead: Readahead::Small,
                streaming_overhead: 1.12,
            },
        );
        let t_small = alignment_round_seconds(
            &a,
            &w,
            &AlignRoundConfig {
                n_partitions: 4800,
                mappers_per_node: 1,
                threads_per_mapper: 6,
                readahead: Readahead::Small,
                streaming_overhead: 1.12,
            },
        );
        assert!(
            t_small > t_big * 1.05,
            "small partitions slower: {t_small} vs {t_big}"
        );
    }

    #[test]
    fn many_processes_beat_many_threads_like_table6() {
        // 6 mappers × 4 threads beats 1 mapper × 24 threads on Cluster A.
        let a = ClusterSpec::cluster_a();
        let w = WorkloadSpec::na12878();
        let many_proc = alignment_round_seconds(&a, &w, &AlignRoundConfig::cluster_a_best());
        let many_thread = alignment_round_seconds(
            &a,
            &w,
            &AlignRoundConfig {
                n_partitions: 15,
                mappers_per_node: 1,
                threads_per_mapper: 24,
                readahead: Readahead::Small,
                streaming_overhead: 1.12,
            },
        );
        assert!(
            many_proc < many_thread * 0.75,
            "process hierarchy must win: {many_proc} vs {many_thread}"
        );
    }

    #[test]
    fn superlinear_speedup_vs_24_thread_baseline() {
        // The paper's headline: parallel platform achieves >15x speedup
        // over the single-node 24-threaded Bwa on 15 nodes (superlinear
        // in nodes).
        let a = ClusterSpec::cluster_a();
        let w = WorkloadSpec::na12878();
        let baseline = single_node_bwa_seconds(&a, &w, 24, Readahead::Small);
        let parallel = alignment_round_seconds(&a, &w, &AlignRoundConfig::cluster_a_best());
        let speedup = baseline / parallel;
        assert!(
            speedup > 15.0,
            "expected superlinear speedup over 24-thread baseline, got {speedup:.1} (15 nodes)"
        );
    }

    #[test]
    fn cluster_b_16x1_beats_4x4_like_table7() {
        let b = ClusterSpec::cluster_b();
        let w = WorkloadSpec::na12878();
        let cfg_4x4 = AlignRoundConfig {
            n_partitions: 64,
            mappers_per_node: 4,
            threads_per_mapper: 4,
            readahead: Readahead::Small,
            streaming_overhead: 1.12,
        };
        let cfg_16x1 = AlignRoundConfig {
            n_partitions: 64,
            mappers_per_node: 16,
            threads_per_mapper: 1,
            readahead: Readahead::Small,
            streaming_overhead: 1.12,
        };
        let t44 = alignment_round_seconds(&b, &w, &cfg_4x4);
        let t161 = alignment_round_seconds(&b, &w, &cfg_16x1);
        assert!(
            t161 < t44,
            "16 single-threaded mappers beat 4×4 ({t161} vs {t44})"
        );
        // Magnitudes: Table 7 reports ~3.75h and ~4.95h.
        assert!((2.0..8.0).contains(&(t161 / 3600.0)), "{}h", t161 / 3600.0);
    }
}
