//! # gesall-sim
//!
//! A cluster performance model for MapReduce genomic workloads.
//!
//! The paper's timing results (Tables 2, 4–7; Figures 5–7, 10) were
//! measured on two physical clusters processing a 220 GB human sample —
//! neither of which is available here. This crate models those runs:
//! the clusters are parameterised by the paper's Table 3 hardware specs,
//! the workload by the NA12878 sample statistics the paper reports
//! (1.25 G read pairs, shuffle volumes of 375/785 GB for
//! MarkDup_opt/MarkDup_reg, …), and the MapReduce phase structure by the
//! same anatomy the real engine in `gesall-mapreduce` implements.
//!
//! The reproduction claim is **shape**, not absolute seconds: who wins,
//! by roughly what factor, where crossovers and saturation points fall
//! (see DESIGN.md §6). Every model component cites the paper observation
//! it encodes.
//!
//! * [`spec`] — cluster and workload parameters (Table 3, §4.1);
//! * [`bwa_model`] — Bwa thread-scaling with the read-and-parse
//!   synchronisation point and readahead effect (Fig. 5c), per-mapper
//!   index-load costs (Fig. 5a, Table 4);
//! * [`mr_model`] — map/sort-spill/merge/shuffle/reduce phase costs with
//!   disk contention and the quadratic multipass-merge rule
//!   (Fig. 5b, Tables 4–7, Appendix B.1);
//! * [`pipeline_model`] — the single-server pipeline of Table 2;
//! * [`traces`] — task-progress and disk-utilisation trace synthesis
//!   (Fig. 7, Fig. 10).

pub mod bwa_model;
pub mod mr_model;
pub mod optimizer;
pub mod pipeline_model;
pub mod spec;
pub mod traces;

pub use spec::{ClusterSpec, DiskSpec, NodeSpec, WorkloadSpec};
