//! The MapReduce phase cost model for shuffling-intensive genomic jobs
//! (Tables 4–7, Fig. 5b, Appendix B.1).
//!
//! Encoded observations from the paper:
//!
//! * **Quadratic reduce-side merge** (Appendix B.1, citing Li et al.
//!   [15]): bytes read/written during the multipass merge grow with the
//!   square of intermediate data per disk; "one disk can sustain up to
//!   100 GB of shuffled and merged data".
//! * **Map-side merge contention** (Fig. 5b): concurrent map tasks with
//!   large partitions overlap their merge phases on the shared disk.
//! * **Slow-start** (§4.2): reducers scheduled at 5% of maps completed
//!   occupy slots while waiting for map output, hurting resource
//!   efficiency; 80% restores it.
//! * **Repeated program invocation** (§4.4 factor 3): external programs
//!   called per-partition cost more than one whole-dataset call.

use crate::spec::{ClusterSpec, WorkloadSpec};

/// Reference clock all CPU-second constants are expressed at.
pub const REF_GHZ: f64 = 2.4;

/// Map-side CPU per GB of BAM scanned (decode + key extraction +
/// serialization), core-seconds at [`REF_GHZ`].
pub const MAP_CPU_S_PER_GB: f64 = 25.0;

/// Reduce-side CPU per shuffled record (merge + external program +
/// transformation), core-seconds at [`REF_GHZ`].
pub const REDUCE_CPU_S_PER_RECORD: f64 = 6.8e-5;

/// A disk sustains this much shuffled+merged data before the multipass
/// merge goes quadratic (the paper's 100 GB rule).
pub const DISK_MERGE_CAPACITY_GB: f64 = 100.0;

/// Per-container startup overhead, seconds.
pub const TASK_STARTUP_S: f64 = 2.0;

/// One shuffling MapReduce job's workload parameters.
#[derive(Debug, Clone)]
pub struct MrJobSpec {
    pub name: String,
    /// Input scanned by mappers, GB.
    pub input_gb: f64,
    /// Map-output bytes crossing the shuffle (post-compression), GB.
    pub shuffle_gb: f64,
    /// Records crossing the shuffle.
    pub shuffle_records: f64,
    /// Output written by reducers, GB.
    pub output_gb: f64,
    /// Input logical partitions (= map tasks).
    pub n_partitions: usize,
    pub mappers_per_node: usize,
    pub reducers_per_node: usize,
    /// `mapreduce.job.reduce.slowstart.completedmaps`.
    pub slowstart: f64,
    /// Extra multiplier on map+reduce CPU from invoking external
    /// programs per-partition instead of once (§4.4 factor 3; Fig. 6b
    /// ratios 1.1–1.9).
    pub invocation_overhead: f64,
    /// Map-side sort buffer, GB (2 GB is Hadoop's max, §4.2).
    pub sort_buffer_gb: f64,
}

/// Phase times of a simulated job, seconds.
#[derive(Debug, Clone, Copy)]
pub struct PhaseBreakdown {
    /// Map compute + input read + spill writes (per-wave sum).
    pub map_s: f64,
    /// Map-side merge of spills (disk-contended).
    pub map_merge_s: f64,
    /// Network shuffle + reduce-side multipass merge.
    pub shuffle_merge_s: f64,
    /// Reduce compute + output write.
    pub reduce_s: f64,
    /// End-to-end wall clock.
    pub wall_s: f64,
    /// Slot-seconds reducers spent occupied-but-idle (slow-start waste).
    pub reducer_idle_slot_s: f64,
}

impl PhaseBreakdown {
    pub fn wall_hours(&self) -> f64 {
        self.wall_s / 3600.0
    }
}

/// Simulate one MR job on a cluster.
pub fn simulate_mr_job(cluster: &ClusterSpec, job: &MrJobSpec) -> PhaseBreakdown {
    let node = &cluster.node;
    let ghz_scale = node.ghz / REF_GHZ;
    let n_nodes = cluster.n_nodes as f64;
    let map_slots = (cluster.n_nodes * job.mappers_per_node).max(1) as f64;
    let reduce_slots = (cluster.n_nodes * job.reducers_per_node).max(1) as f64;
    let waves = (job.n_partitions as f64 / map_slots).ceil().max(1.0);

    // ---- Map phase -----------------------------------------------------
    let per_partition_gb = job.input_gb / job.n_partitions.max(1) as f64;
    let map_cpu_task = per_partition_gb * MAP_CPU_S_PER_GB * job.invocation_overhead / ghz_scale;
    // Concurrent mappers on a node share its disks for input.
    let node_disk = node.disk_bandwidth_total() / 1024.0; // GB/s
    let read_task = per_partition_gb / (node_disk / job.mappers_per_node.max(1) as f64);
    // Spills: output beyond the sort buffer is written once (and read
    // back in the map-side merge below).
    let per_task_output_gb = job.shuffle_gb / job.n_partitions.max(1) as f64;
    let spills = (per_task_output_gb / job.sort_buffer_gb).ceil().max(1.0);
    let spill_write_task = per_task_output_gb / (node_disk / job.mappers_per_node.max(1) as f64);
    let map_s = waves * (TASK_STARTUP_S + map_cpu_task + read_task + spill_write_task);

    // ---- Map-side merge (Fig. 5b) ---------------------------------------
    // Only multi-spill tasks re-read and re-write their output; the
    // merges of concurrent tasks overlap on the node's disks.
    let map_merge_s = if spills > 1.0 {
        let merge_io_gb_node = 2.0 * per_task_output_gb * job.mappers_per_node as f64;
        waves * merge_io_gb_node / node_disk
    } else {
        0.0
    };

    // ---- Shuffle + reduce-side merge ------------------------------------
    let node_shuffle_gb = job.shuffle_gb / n_nodes;
    let net_s = node_shuffle_gb / (node.network_mb_s() / 1024.0);
    // Shuffle overlaps the tail of the map phase.
    let overlap = ((1.0 - job.slowstart) * map_s).min(net_s);
    let net_visible_s = net_s - overlap * 0.8;
    // Initial write of fetched segments + multipass merge per disk
    // (quadratic beyond the capacity knee).
    let d = node.disks.len().max(1) as f64;
    let per_disk_gb = node_shuffle_gb / d;
    let merge_io_gb = per_disk_gb * (1.0 + per_disk_gb / DISK_MERGE_CAPACITY_GB);
    let disk_bw_gb = node.disks[0].bandwidth_mb_s / 1024.0;
    let merge_s = (per_disk_gb + 2.0 * merge_io_gb) / disk_bw_gb;
    let shuffle_merge_s = net_visible_s + merge_s;

    // ---- Reduce phase ----------------------------------------------------
    let reduce_cpu_total =
        job.shuffle_records * REDUCE_CPU_S_PER_RECORD * job.invocation_overhead / ghz_scale;
    let reduce_cpu_s = reduce_cpu_total / reduce_slots;
    let write_s = (job.output_gb / n_nodes) / node_disk;
    let reduce_s = TASK_STARTUP_S + reduce_cpu_s + write_s;

    let wall_s = map_s + map_merge_s + shuffle_merge_s + reduce_s;

    // Reducer idle slot-time: reducers occupy containers from the
    // slow-start point until maps finish, doing only fetches.
    let reducers_start = job.slowstart * (map_s + map_merge_s);
    let idle = ((map_s + map_merge_s) - reducers_start - net_s * 0.5).max(0.0);
    let reducer_idle_slot_s = idle * reduce_slots;

    PhaseBreakdown {
        map_s,
        map_merge_s,
        shuffle_merge_s,
        reduce_s,
        wall_s,
        reducer_idle_slot_s,
    }
}

/// Parallel-vs-serial metrics (the paper's §4.1 definitions).
#[derive(Debug, Clone, Copy)]
pub struct JobMetrics {
    pub wall_s: f64,
    pub speedup: f64,
    pub resource_efficiency: f64,
    pub serial_slot_s: f64,
}

/// Compute speedup / resource efficiency / serial slot time for a job.
pub fn job_metrics(
    cluster: &ClusterSpec,
    job: &MrJobSpec,
    single_node_s: f64,
) -> (PhaseBreakdown, JobMetrics) {
    let b = simulate_mr_job(cluster, job);
    let speedup = single_node_s / b.wall_s;
    // Serial slot time: every occupied slot × its occupancy, idle
    // reducers included (they hold containers from the slow-start point).
    let map_slot_s = (cluster.n_nodes * job.mappers_per_node) as f64 * (b.map_s + b.map_merge_s);
    let reduce_slot_s = (cluster.n_nodes * job.reducers_per_node) as f64
        * (b.shuffle_merge_s + b.reduce_s)
        + b.reducer_idle_slot_s;
    let serial_slot_s = map_slot_s + reduce_slot_s;
    // Cores "used" = average concurrently-occupied slots over the job —
    // this is what makes a late slow-start improve efficiency (fewer
    // idle reducer containers), the paper's Table 5 fix.
    let cores_used = (serial_slot_s / b.wall_s).max(1.0);
    (
        b,
        JobMetrics {
            wall_s: b.wall_s,
            speedup,
            resource_efficiency: speedup / cores_used,
            serial_slot_s,
        },
    )
}

// ---------------------------------------------------------------------
// Job builders for the paper's rounds
// ---------------------------------------------------------------------

/// Round 3, MarkDuplicates. `opt` selects the bloom-filter variant
/// (shuffles 1.03× input records / 375 GB vs 1.92× / 785 GB, §4.2).
pub fn markdup_job(
    workload: &WorkloadSpec,
    opt: bool,
    n_partitions: usize,
    mappers_per_node: usize,
    reducers_per_node: usize,
    slowstart: f64,
) -> MrJobSpec {
    let (shuffle_gb, record_ratio, name) = if opt {
        (workload.markdup_opt_shuffle_gb, 1.03, "MarkDup_opt")
    } else {
        (workload.markdup_reg_shuffle_gb, 1.92, "MarkDup_reg")
    };
    MrJobSpec {
        name: name.into(),
        input_gb: workload.bam_gb,
        shuffle_gb,
        shuffle_records: workload.reads() as f64 * record_ratio,
        output_gb: workload.bam_gb,
        n_partitions,
        mappers_per_node,
        reducers_per_node,
        slowstart,
        invocation_overhead: 1.35,
        sort_buffer_gb: 2.0,
    }
}

/// Round 2: AddReplaceReadGroups + CleanSam (map) → FixMateInformation
/// (reduce); shuffles the whole dataset once (no reduction).
pub fn round2_job(
    workload: &WorkloadSpec,
    n_partitions: usize,
    mappers_per_node: usize,
    reducers_per_node: usize,
) -> MrJobSpec {
    MrJobSpec {
        name: "Round2 clean+fixmate".into(),
        input_gb: workload.bam_gb,
        shuffle_gb: workload.bam_gb,
        shuffle_records: workload.reads() as f64,
        output_gb: workload.bam_gb,
        n_partitions,
        mappers_per_node,
        reducers_per_node,
        slowstart: 0.05,
        invocation_overhead: 1.3,
        sort_buffer_gb: 2.0,
    }
}

/// Round 4: range-partition + sort + index, feeding Round 5.
pub fn round4_job(workload: &WorkloadSpec, n_partitions: usize, nodes_slots: usize) -> MrJobSpec {
    MrJobSpec {
        name: "Round4 sort+index".into(),
        input_gb: workload.bam_gb,
        shuffle_gb: workload.bam_gb,
        shuffle_records: workload.reads() as f64,
        output_gb: workload.bam_gb,
        n_partitions,
        mappers_per_node: nodes_slots,
        reducers_per_node: nodes_slots,
        slowstart: 0.05,
        invocation_overhead: 1.1,
        sort_buffer_gb: 2.0,
    }
}

/// Round 5: HaplotypeCaller over 23 chromosome partitions — the degree-
/// of-parallelism collapse of §4.4 (90 slots available, 23 usable).
pub fn round5_wall_seconds(cluster: &ClusterSpec, workload: &WorkloadSpec) -> f64 {
    // HC CPU per read is heavy; 23 tasks regardless of slots; the
    // largest chromosome (~8% of the genome) is the straggler.
    let hc_cpu_s_per_read = 1.2e-4 / (cluster.node.ghz / REF_GHZ);
    let usable = 23.min(cluster.n_nodes * cluster.node.cores);
    let straggler_share = 0.08; // chr1 / whole genome
    let reads = workload.reads() as f64;
    let balanced = reads * hc_cpu_s_per_read / usable as f64;
    let straggler = reads * straggler_share * hc_cpu_s_per_read;
    balanced.max(straggler)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b() -> ClusterSpec {
        ClusterSpec::cluster_b()
    }

    fn w() -> WorkloadSpec {
        WorkloadSpec::na12878()
    }

    #[test]
    fn markdup_opt_faster_than_reg_like_table7() {
        let opt = simulate_mr_job(&b(), &markdup_job(&w(), true, 64, 16, 16, 0.05));
        let reg = simulate_mr_job(&b(), &markdup_job(&w(), false, 64, 16, 16, 0.05));
        assert!(
            opt.wall_s < reg.wall_s * 0.75,
            "opt {:.0}s must clearly beat reg {:.0}s",
            opt.wall_s,
            reg.wall_s
        );
        // Magnitudes: Table 7 reports opt ≈ 1.4h, reg ≈ 2.9–4.7h.
        assert!((0.7..3.0).contains(&opt.wall_hours()), "{}", opt.wall_hours());
        assert!((1.5..7.0).contains(&reg.wall_hours()), "{}", reg.wall_hours());
    }

    #[test]
    fn more_disks_help_reg_more_than_opt_like_table7() {
        let wall = |opt: bool, disks: usize| {
            simulate_mr_job(
                &ClusterSpec::cluster_b_with_disks(disks),
                &markdup_job(&w(), opt, 64, 16, 16, 0.05),
            )
            .wall_s
        };
        // Reg (196 GB/node shuffled): 1→6 disks is a large win.
        let reg_gain = wall(false, 1) / wall(false, 6);
        // Opt (94 GB/node): smaller win — nearer the capacity knee.
        let opt_gain = wall(true, 1) / wall(true, 6);
        assert!(reg_gain > 1.25, "reg gain {reg_gain}");
        assert!(opt_gain < reg_gain, "opt gain {opt_gain} < reg gain {reg_gain}");
        assert!(opt_gain > 1.0);
        // Diminishing returns: 3→6 disks helps reg less than 1→2.
        let d12 = wall(false, 1) / wall(false, 2);
        let d36 = wall(false, 3) / wall(false, 6);
        assert!(d12 > d36, "diminishing returns: {d12} vs {d36}");
    }

    #[test]
    fn quadratic_merge_beyond_disk_capacity() {
        // Past ~100 GB per disk, shuffle+merge time grows superlinearly.
        let shuffle_merge = |shuffle_gb: f64| {
            let mut job = markdup_job(&w(), true, 64, 16, 16, 0.05);
            job.shuffle_gb = shuffle_gb;
            simulate_mr_job(&ClusterSpec::cluster_b_with_disks(1), &job).shuffle_merge_s
        };
        let t200 = shuffle_merge(200.0); // 50 GB per node-disk
        let t800 = shuffle_merge(800.0); // 200 GB per node-disk
        assert!(
            t800 > 4.0 * t200 * 1.15,
            "4x data must take >4.6x time: {t800} vs {t200}"
        );
    }

    #[test]
    fn scale_up_like_table5() {
        // MarkDup_opt on Cluster A with 1..15 nodes: wall decreases,
        // efficiency low (<0.5) and roughly flat.
        let single_node_s = 14.5 * 3600.0; // gold standard (Table 7 in-house)
        let mut prev_wall = f64::INFINITY;
        let mut effs = Vec::new();
        for nodes in [1usize, 5, 10, 15] {
            let mut cluster = ClusterSpec::cluster_a();
            cluster.n_nodes = nodes;
            let job = markdup_job(&w(), true, nodes * 6, 6, 6, 0.05);
            let (_, m) = job_metrics(&cluster, &job, single_node_s);
            assert!(m.wall_s < prev_wall, "wall must shrink with nodes");
            prev_wall = m.wall_s;
            effs.push(m.resource_efficiency);
        }
        for e in &effs {
            assert!(
                (0.01..0.5).contains(e),
                "efficiency should be low (<50%), got {e}"
            );
        }
        // 15-node wall lands in the paper's ballpark (Table 5: ~4000 s).
        assert!(
            (1500.0..12000.0).contains(&prev_wall),
            "15-node MarkDup_opt wall {prev_wall}s"
        );
    }

    #[test]
    fn slowstart_reduces_idle_slot_time() {
        let early = simulate_mr_job(&b(), &markdup_job(&w(), true, 64, 16, 16, 0.05));
        let late = simulate_mr_job(&b(), &markdup_job(&w(), true, 64, 16, 16, 0.8));
        assert!(
            late.reducer_idle_slot_s < early.reducer_idle_slot_s,
            "80% slowstart must cut idle reducer time: {} vs {}",
            late.reducer_idle_slot_s,
            early.reducer_idle_slot_s
        );
    }

    #[test]
    fn partition_size_tradeoff_like_table4_and_fig5b() {
        // MarkDuplicates input-partition sweep: few huge partitions pay
        // map-side merge contention; the medium configuration wins.
        let wall = |parts: usize| {
            simulate_mr_job(
                &ClusterSpec::cluster_a(),
                &markdup_job(&w(), true, parts, 6, 6, 0.05),
            )
        };
        let huge = wall(30); // ~12.7 GB per partition: multi-spill merges
        let medium = wall(510);
        assert!(
            huge.map_merge_s > medium.map_merge_s,
            "large partitions must pay map-side merge: {} vs {}",
            huge.map_merge_s,
            medium.map_merge_s
        );
        assert!(huge.wall_s > medium.wall_s, "Table 4 round 3 shape");
    }

    #[test]
    fn round5_underutilizes_cluster_like_sec44() {
        let t = round5_wall_seconds(&ClusterSpec::cluster_a(), &w());
        // Paper: 7h14m with only 23 of 90 slots usable.
        assert!(
            (3.0..12.0).contains(&(t / 3600.0)),
            "round5 {:.1}h",
            t / 3600.0
        );
        // Doubling the cluster does not help once 23 tasks bound it.
        let mut big = ClusterSpec::cluster_a();
        big.n_nodes = 30;
        let t2 = round5_wall_seconds(&big, &w());
        assert!((t2 - t).abs() < 1.0, "chromosome count caps parallelism");
    }

    #[test]
    fn round2_is_shuffle_dominated() {
        let r2 = simulate_mr_job(&ClusterSpec::cluster_a(), &round2_job(&w(), 90, 6, 6));
        assert!(r2.shuffle_merge_s + r2.map_merge_s > 0.2 * r2.wall_s, "{r2:?}");
    }
}
