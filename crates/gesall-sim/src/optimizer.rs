//! A pipeline execution-plan optimizer — the paper's Appendix C research
//! question #4: "a pipeline optimizer that can best configure the
//! execution plan of a deep pipeline to meet both user requirements on
//! running time and a genome center's requirements on throughput or
//! efficiency."
//!
//! The optimizer searches the configuration space the paper explores by
//! hand in §4 — logical partition counts, mappers×threads per node,
//! reducers, slow-start, MarkDup variant — using the `mr_model` /
//! `bwa_model` cost functions, and returns the best plan under either
//! objective.

use crate::bwa_model::{alignment_round_seconds, AlignRoundConfig, Readahead};
use crate::mr_model::{job_metrics, markdup_job, round2_job, round5_wall_seconds, JobMetrics};
use crate::spec::{ClusterSpec, WorkloadSpec};

/// What the optimizer minimizes/maximizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Minimize end-to-end wall clock (the clinician's 1–2 day target).
    WallClock,
    /// Maximize resource efficiency (the genome center's throughput
    /// concern — its farm is shared across many pipelines).
    Efficiency,
}

/// A fully-configured execution plan for the pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionPlan {
    /// Alignment round: logical partitions and the process/thread split.
    pub align_partitions: usize,
    pub align_mappers_per_node: usize,
    pub align_threads_per_mapper: usize,
    /// Shuffling rounds: partitions, concurrent tasks, slow-start.
    pub shuffle_partitions: usize,
    pub tasks_per_node: usize,
    pub slowstart: f64,
    /// Bloom-filter MarkDuplicates?
    pub markdup_opt: bool,
}

/// The evaluated cost of a plan.
#[derive(Debug, Clone, Copy)]
pub struct PlanCost {
    pub align_s: f64,
    pub round2_s: f64,
    pub markdup_s: f64,
    pub round5_s: f64,
    pub total_s: f64,
    /// Mean resource efficiency over the shuffling rounds.
    pub efficiency: f64,
}

/// Evaluate one plan on a cluster/workload.
pub fn evaluate_plan(
    cluster: &ClusterSpec,
    workload: &WorkloadSpec,
    plan: &ExecutionPlan,
) -> PlanCost {
    let align_s = alignment_round_seconds(
        cluster,
        workload,
        &AlignRoundConfig {
            n_partitions: plan.align_partitions,
            mappers_per_node: plan.align_mappers_per_node,
            threads_per_mapper: plan.align_threads_per_mapper,
            readahead: Readahead::Small,
            streaming_overhead: 1.12,
        },
    );
    let serial_md_s = 14.45 * 3600.0;
    let (_, m2): (_, JobMetrics) = job_metrics(
        cluster,
        &round2_job(
            workload,
            plan.shuffle_partitions,
            plan.tasks_per_node,
            plan.tasks_per_node,
        ),
        serial_md_s, // common baseline so efficiencies compare consistently across plans
    );
    let (_, m3) = job_metrics(
        cluster,
        &markdup_job(
            workload,
            plan.markdup_opt,
            plan.shuffle_partitions,
            plan.tasks_per_node,
            plan.tasks_per_node,
            plan.slowstart,
        ),
        serial_md_s,
    );
    let round5_s = round5_wall_seconds(cluster, workload);
    let total_s = align_s + m2.wall_s + m3.wall_s + round5_s;
    PlanCost {
        align_s,
        round2_s: m2.wall_s,
        markdup_s: m3.wall_s,
        round5_s,
        total_s,
        efficiency: (m2.resource_efficiency + m3.resource_efficiency) / 2.0,
    }
}

/// Enumerate the candidate space the paper tunes by hand.
fn candidate_plans(cluster: &ClusterSpec) -> Vec<ExecutionPlan> {
    let cores = cluster.node.cores;
    let mut plans = Vec::new();
    // Process/thread splits of the node's cores.
    let splits: Vec<(usize, usize)> = (0..)
        .map(|i| 1usize << i)
        .take_while(|&m| m <= cores)
        .filter(|&m| cores.is_multiple_of(m))
        .map(|m| (m, cores / m))
        .collect();
    for &(mappers, threads) in &splits {
        for parts_factor in [1usize, 4, 16] {
            for tasks in [cores / 4, cores / 2, cores].into_iter().filter(|&t| t > 0) {
                for slowstart in [0.05, 0.8] {
                    for markdup_opt in [false, true] {
                        plans.push(ExecutionPlan {
                            align_partitions: cluster.n_nodes * mappers * parts_factor,
                            align_mappers_per_node: mappers,
                            align_threads_per_mapper: threads,
                            shuffle_partitions: cluster.n_nodes * tasks,
                            tasks_per_node: tasks,
                            slowstart,
                            markdup_opt,
                        });
                    }
                }
            }
        }
    }
    plans
}

/// Search the plan space; returns the best plan and its cost.
pub fn optimize(
    cluster: &ClusterSpec,
    workload: &WorkloadSpec,
    objective: Objective,
) -> (ExecutionPlan, PlanCost) {
    let mut best: Option<(ExecutionPlan, PlanCost)> = None;
    for plan in candidate_plans(cluster) {
        let cost = evaluate_plan(cluster, workload, &plan);
        let better = match (&best, objective) {
            (None, _) => true,
            (Some((_, b)), Objective::WallClock) => cost.total_s < b.total_s,
            (Some((_, b)), Objective::Efficiency) => cost.efficiency > b.efficiency,
        };
        if better {
            best = Some((plan, cost));
        }
    }
    best.expect("candidate space is non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimizer_prefers_process_hierarchy_for_alignment() {
        // The §4.3 finding, rediscovered automatically: many processes
        // with few threads beat one fat multithreaded process.
        let (plan, _) = optimize(
            &ClusterSpec::cluster_a(),
            &WorkloadSpec::na12878(),
            Objective::WallClock,
        );
        assert!(
            plan.align_mappers_per_node >= 4,
            "expected a process-heavy split, got {plan:?}"
        );
        assert!(plan.align_threads_per_mapper <= 6);
    }

    #[test]
    fn optimizer_always_picks_markdup_opt() {
        // The bloom variant dominates on both objectives.
        for objective in [Objective::WallClock, Objective::Efficiency] {
            let (plan, _) = optimize(
                &ClusterSpec::cluster_b(),
                &WorkloadSpec::na12878(),
                objective,
            );
            assert!(plan.markdup_opt, "{objective:?} should pick MarkDup_opt");
        }
    }

    #[test]
    fn efficiency_objective_prefers_late_slowstart() {
        let (plan, _) = optimize(
            &ClusterSpec::cluster_a(),
            &WorkloadSpec::na12878(),
            Objective::Efficiency,
        );
        assert!(
            plan.slowstart > 0.5,
            "efficiency objective should avoid idle reducers, got {plan:?}"
        );
    }

    #[test]
    fn objectives_trade_off() {
        let c = ClusterSpec::cluster_a();
        let w = WorkloadSpec::na12878();
        let (_, fast) = optimize(&c, &w, Objective::WallClock);
        let (_, efficient) = optimize(&c, &w, Objective::Efficiency);
        assert!(fast.total_s <= efficient.total_s + 1.0);
        assert!(efficient.efficiency >= fast.efficiency - 1e-9);
    }

    #[test]
    fn plan_cost_components_positive() {
        let c = ClusterSpec::cluster_b();
        let w = WorkloadSpec::na12878();
        let (plan, cost) = optimize(&c, &w, Objective::WallClock);
        assert!(cost.align_s > 0.0);
        assert!(cost.round2_s > 0.0);
        assert!(cost.markdup_s > 0.0);
        assert!(cost.round5_s > 0.0);
        assert!(
            (cost.total_s - (cost.align_s + cost.round2_s + cost.markdup_s + cost.round5_s))
                .abs()
                < 1e-6
        );
        // The plan fits the cluster.
        assert!(plan.align_mappers_per_node * plan.align_threads_per_mapper <= c.node.cores);
    }
}
