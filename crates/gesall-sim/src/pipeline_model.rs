//! The single-server pipeline model (paper Table 2 and §2.2: "the
//! pipeline took about two weeks to finish" on a 12-core server).
//!
//! Per-step costs are expressed as CPU core-seconds per read (at the
//! reference clock) plus an I/O pass count over the dataset; steps that
//! allow multithreading get the machine's cores modulated by a
//! per-program scaling efficiency, single-threaded steps get one core —
//! the distinction that makes MarkDuplicates (single-threaded, 14.5 h)
//! and Bwa (multi-threaded, 24.5 h) both slow for different reasons.

use crate::bwa_model::{thread_speedup, Readahead, CYCLES_PER_READ};
use crate::mr_model::REF_GHZ;
use crate::spec::{ClusterSpec, WorkloadSpec};

/// One pipeline step's cost shape.
#[derive(Debug, Clone)]
pub struct StepModel {
    pub name: &'static str,
    /// CPU core-seconds per read at [`REF_GHZ`].
    pub cpu_s_per_read: f64,
    /// Dataset passes over disk (read + write).
    pub io_passes: f64,
    /// Does the program use multiple threads, and how well?
    pub threads: Threading,
}

/// Threading behaviour of a wrapped program.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Threading {
    /// Single-threaded (PicardTools, GATK walkers of the era).
    Single,
    /// Multi-threaded with Bwa-like saturation.
    BwaLike,
    /// Embarrassingly threaded (near-linear, e.g. sorting with merge).
    Scalable(f64),
}

/// The ten steps of the paper's Table 2 (steps 11–12 fused as
/// BaseRecalibrator+PrintReads; both variant callers included).
pub fn gatk_pipeline_steps() -> Vec<StepModel> {
    vec![
        StepModel {
            name: "1. Bwa (mem)",
            cpu_s_per_read: CYCLES_PER_READ / (REF_GHZ * 1e9),
            io_passes: 2.0,
            threads: Threading::BwaLike,
        },
        StepModel {
            name: "2. Samtools Index",
            cpu_s_per_read: 2.0e-6,
            io_passes: 2.0,
            threads: Threading::Single,
        },
        StepModel {
            name: "3. Add Replace Groups",
            cpu_s_per_read: 1.6e-5,
            io_passes: 2.0,
            threads: Threading::Single,
        },
        StepModel {
            name: "4. Clean Sam",
            cpu_s_per_read: 1.0e-5,
            io_passes: 2.0,
            threads: Threading::Single,
        },
        StepModel {
            name: "5. Fix Mate Info",
            cpu_s_per_read: 2.6e-5,
            io_passes: 3.0, // name-sort spill included
            threads: Threading::Single,
        },
        StepModel {
            name: "6. Mark Duplicates",
            cpu_s_per_read: 1.9e-5,
            io_passes: 3.0,
            threads: Threading::Single,
        },
        StepModel {
            name: "7-10. Sort (NovoSort)",
            cpu_s_per_read: 1.2e-5,
            io_passes: 3.0,
            threads: Threading::Scalable(0.7),
        },
        StepModel {
            name: "11. Base Recalibrator",
            cpu_s_per_read: 3.0e-5,
            io_passes: 1.0,
            threads: Threading::Single,
        },
        StepModel {
            name: "12. Print Reads",
            cpu_s_per_read: 2.2e-5,
            io_passes: 2.0,
            threads: Threading::Single,
        },
        StepModel {
            name: "v1. Unified Genotyper",
            cpu_s_per_read: 1.6e-5,
            io_passes: 1.0,
            threads: Threading::Scalable(0.6),
        },
        StepModel {
            name: "v2. Haplotype Caller",
            cpu_s_per_read: 1.2e-4,
            io_passes: 1.0,
            threads: Threading::Single,
        },
    ]
}

/// Wall-clock seconds of one step on a server.
pub fn step_seconds(server: &ClusterSpec, workload: &WorkloadSpec, step: &StepModel) -> f64 {
    let node = &server.node;
    let ghz_scale = node.ghz / REF_GHZ;
    let effective_cores = match step.threads {
        Threading::Single => 1.0,
        Threading::BwaLike => thread_speedup(node.cores, Readahead::Small),
        Threading::Scalable(eff) => 1.0 + (node.cores as f64 - 1.0) * eff,
    };
    let cpu_s =
        workload.reads() as f64 * step.cpu_s_per_read / (effective_cores * ghz_scale);
    let io_s = step.io_passes * workload.bam_gb * 1024.0 / node.disk_bandwidth_total();
    cpu_s.max(io_s) + 0.15 * cpu_s.min(io_s) // partial CPU/IO overlap
}

/// The full Table-2 row set: (step name, hours).
pub fn table2_rows(server: &ClusterSpec, workload: &WorkloadSpec) -> Vec<(String, f64)> {
    gatk_pipeline_steps()
        .iter()
        .map(|s| (s.name.to_string(), step_seconds(server, workload, s) / 3600.0))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_takes_about_two_weeks() {
        // §2.2: "The pipeline took about two weeks to finish".
        let rows = table2_rows(&ClusterSpec::single_server(), &WorkloadSpec::na12878());
        let total: f64 = rows.iter().map(|(_, h)| h).sum();
        assert!(
            (200.0..450.0).contains(&total),
            "total {total:.0}h should be in the ~2 week regime"
        );
    }

    #[test]
    fn anchored_steps_land_near_reported_values() {
        let rows = table2_rows(&ClusterSpec::single_server(), &WorkloadSpec::na12878());
        let get = |name: &str| {
            rows.iter()
                .find(|(n, _)| n.contains(name))
                .map(|(_, h)| *h)
                .unwrap()
        };
        // Bwa ≈ 24.5 h.
        let bwa = get("Bwa");
        assert!((17.0..33.0).contains(&bwa), "Bwa {bwa:.1}h vs paper 24.5h");
        // MarkDuplicates ≈ 14.5 h (Table 7 in-house 1×1×1: 14h26m).
        let md = get("Mark Duplicates");
        assert!((10.0..20.0).contains(&md), "MarkDup {md:.1}h vs paper 14.5h");
        // CleanSam ≈ 7.5 h (§4.4: single-node Clean Sam 7h33m).
        let cs = get("Clean Sam");
        assert!((5.0..11.0).contains(&cs), "CleanSam {cs:.1}h vs paper 7.55h");
    }

    #[test]
    fn single_threaded_steps_do_not_benefit_from_cores() {
        let w = WorkloadSpec::na12878();
        let mut fat_server = ClusterSpec::single_server();
        fat_server.node.cores = 48;
        let steps = gatk_pipeline_steps();
        let md = steps.iter().find(|s| s.name.contains("Mark Dup")).unwrap();
        let t12 = step_seconds(&ClusterSpec::single_server(), &w, md);
        let t48 = step_seconds(&fat_server, &w, md);
        assert!(
            (t12 - t48).abs() / t12 < 0.02,
            "single-threaded step must not scale: {t12} vs {t48}"
        );
        let bwa = steps.iter().find(|s| s.name.contains("Bwa")).unwrap();
        let b12 = step_seconds(&ClusterSpec::single_server(), &w, bwa);
        let b48 = step_seconds(&fat_server, &w, bwa);
        assert!(b48 < b12 * 0.7, "Bwa must scale with cores: {b12} vs {b48}");
    }

    #[test]
    fn workload_scaling_is_linear() {
        let w = WorkloadSpec::na12878();
        let half = w.scaled(0.5);
        let s = ClusterSpec::single_server();
        let t_full: f64 = table2_rows(&s, &w).iter().map(|(_, h)| h).sum();
        let t_half: f64 = table2_rows(&s, &half).iter().map(|(_, h)| h).sum();
        assert!((t_half / t_full - 0.5).abs() < 0.05);
    }
}
