//! Cluster and workload specifications (paper Table 3 and §4.1).

use serde::{Deserialize, Serialize};

/// One physical disk.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiskSpec {
    /// Sequential bandwidth in MB/s.
    pub bandwidth_mb_s: f64,
}

/// One worker node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    pub cores: usize,
    pub ghz: f64,
    pub memory_gb: f64,
    pub disks: Vec<DiskSpec>,
    pub network_gbps: f64,
}

impl NodeSpec {
    /// Aggregate disk bandwidth in MB/s.
    pub fn disk_bandwidth_total(&self) -> f64 {
        self.disks.iter().map(|d| d.bandwidth_mb_s).sum()
    }

    /// Network bandwidth in MB/s.
    pub fn network_mb_s(&self) -> f64 {
        self.network_gbps * 1000.0 / 8.0
    }
}

/// A homogeneous cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    pub name: String,
    pub n_nodes: usize,
    pub node: NodeSpec,
}

impl ClusterSpec {
    /// Paper Table 3, Cluster A (research): 15 data nodes, 24 cores @
    /// 2.66 GHz, 64 GB, one 3 TB disk at 140 MB/s, 1 Gbps.
    pub fn cluster_a() -> ClusterSpec {
        ClusterSpec {
            name: "Cluster A (research)".into(),
            n_nodes: 15,
            node: NodeSpec {
                cores: 24,
                ghz: 2.66,
                memory_gb: 64.0,
                disks: vec![DiskSpec {
                    bandwidth_mb_s: 140.0,
                }],
                network_gbps: 1.0,
            },
        }
    }

    /// Paper Table 3, Cluster B (NYGC production): 4 data nodes, 16
    /// cores @ 2.4 GHz (hyper-threading off), 256 GB, six 1 TB disks at
    /// 100 MB/s, 10 Gbps.
    pub fn cluster_b() -> ClusterSpec {
        ClusterSpec {
            name: "Cluster B (production)".into(),
            n_nodes: 4,
            node: NodeSpec {
                cores: 16,
                ghz: 2.4,
                memory_gb: 256.0,
                disks: vec![
                    DiskSpec {
                        bandwidth_mb_s: 100.0
                    };
                    6
                ],
                network_gbps: 10.0,
            },
        }
    }

    /// Cluster B restricted to `d` shuffle disks per node (the Table 7 /
    /// Appendix B.1 disk sweep).
    pub fn cluster_b_with_disks(d: usize) -> ClusterSpec {
        let mut c = ClusterSpec::cluster_b();
        c.node.disks = vec![
            DiskSpec {
                bandwidth_mb_s: 100.0
            };
            d.max(1)
        ];
        c
    }

    /// The single server of §2.2: 12 Intel Xeon 2.40 GHz cores, 64 GB,
    /// 7200 RPM HDD.
    pub fn single_server() -> ClusterSpec {
        ClusterSpec {
            name: "Single server".into(),
            n_nodes: 1,
            node: NodeSpec {
                cores: 12,
                ghz: 2.4,
                memory_gb: 64.0,
                disks: vec![DiskSpec {
                    bandwidth_mb_s: 120.0,
                }],
                network_gbps: 1.0,
            },
        }
    }

    pub fn total_cores(&self) -> usize {
        self.n_nodes * self.node.cores
    }
}

/// Whole-genome workload statistics (paper §4.1 for NA12878).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Read pairs in the sample.
    pub read_pairs: u64,
    /// Bases per read.
    pub read_len: u32,
    /// Compressed FASTQ input in GB.
    pub input_gb: f64,
    /// Aligned BAM dataset size in GB (compressed chunks).
    pub bam_gb: f64,
    /// Reference-index resident size in GB (the per-mapper load).
    pub index_gb: f64,
    /// Shuffled bytes (Snappy-compressed) for MarkDup_opt — paper §4.2:
    /// 375 GB, 1.03× input records.
    pub markdup_opt_shuffle_gb: f64,
    /// Shuffled bytes for MarkDup_reg — paper §4.2: 785 GB, 1.92×.
    pub markdup_reg_shuffle_gb: f64,
}

impl WorkloadSpec {
    /// The NA12878 64× sample: 1.24 G read pairs, 2×282 GB raw FASTQ
    /// (220 GB compressed), 2,504,895,008 reads.
    pub fn na12878() -> WorkloadSpec {
        WorkloadSpec {
            read_pairs: 1_252_447_504,
            read_len: 125,
            input_gb: 220.0,
            bam_gb: 380.0,
            index_gb: 4.3,
            markdup_opt_shuffle_gb: 375.0,
            markdup_reg_shuffle_gb: 785.0,
        }
    }

    /// Total reads.
    pub fn reads(&self) -> u64 {
        self.read_pairs * 2
    }

    /// A linearly scaled-down workload (for sweeps).
    pub fn scaled(&self, factor: f64) -> WorkloadSpec {
        WorkloadSpec {
            read_pairs: (self.read_pairs as f64 * factor) as u64,
            read_len: self.read_len,
            input_gb: self.input_gb * factor,
            bam_gb: self.bam_gb * factor,
            index_gb: self.index_gb,
            markdup_opt_shuffle_gb: self.markdup_opt_shuffle_gb * factor,
            markdup_reg_shuffle_gb: self.markdup_reg_shuffle_gb * factor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cluster_parameters() {
        let a = ClusterSpec::cluster_a();
        assert_eq!(a.n_nodes, 15);
        assert_eq!(a.total_cores(), 360);
        assert_eq!(a.node.disks.len(), 1);
        let b = ClusterSpec::cluster_b();
        assert_eq!(b.n_nodes, 4);
        assert_eq!(b.node.disks.len(), 6);
        assert!((b.node.network_mb_s() - 1250.0).abs() < 1e-9);
        assert_eq!(ClusterSpec::cluster_b_with_disks(2).node.disks.len(), 2);
    }

    #[test]
    fn workload_sanity() {
        let w = WorkloadSpec::na12878();
        assert_eq!(w.reads(), 2_504_895_008);
        assert!(w.markdup_reg_shuffle_gb > w.markdup_opt_shuffle_gb);
        let half = w.scaled(0.5);
        assert!((half.input_gb - 110.0).abs() < 1e-9);
        assert_eq!(half.index_gb, w.index_gb, "index size does not scale");
    }
}
