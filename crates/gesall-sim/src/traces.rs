//! Trace synthesis: per-node task progress (Fig. 7) and disk
//! utilisation over time (Fig. 10), derived from the MR phase model.

use crate::mr_model::{simulate_mr_job, MrJobSpec, DISK_MERGE_CAPACITY_GB};
use crate::spec::ClusterSpec;

/// Task phases shown in the Fig. 7 progress plot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    Map,
    ShuffleMerge,
    Reduce,
}

/// One bar of the progress plot: a task phase on a node.
#[derive(Debug, Clone, Copy)]
pub struct TaskBar {
    pub node: usize,
    pub phase: Phase,
    pub start_s: f64,
    pub end_s: f64,
}

/// Deterministic per-(node, salt) jitter in `[-1, 1]`.
fn jitter(node: usize, salt: u64) -> f64 {
    let mut h = (node as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15) ^ salt;
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51AFD7ED558CCD);
    h ^= h >> 33;
    (h % 2001) as f64 / 1000.0 - 1.0
}

/// Synthesize the Fig. 7 per-node task progress bars for a job: map
/// bars, shuffle+merge bars, and reduce bars per node, with realistic
/// straggler jitter. Even progress across nodes (small spread) is what
/// the paper observes with adequate disks.
pub fn progress_trace(cluster: &ClusterSpec, job: &MrJobSpec) -> Vec<TaskBar> {
    let b = simulate_mr_job(cluster, job);
    let mut bars = Vec::new();
    // Jitter scale: disk pressure widens the spread (stragglers) —
    // Fig. 7's "with 1 disk progress is already quite even; with 6 disks
    // very even".
    let per_disk_gb = job.shuffle_gb / cluster.n_nodes as f64 / cluster.node.disks.len() as f64;
    let pressure = (per_disk_gb / DISK_MERGE_CAPACITY_GB).min(2.0);
    let spread = 0.03 + 0.10 * pressure;
    for node in 0..cluster.n_nodes {
        let map_end = (b.map_s + b.map_merge_s) * (1.0 + spread * jitter(node, 1));
        bars.push(TaskBar {
            node,
            phase: Phase::Map,
            start_s: 0.0,
            end_s: map_end,
        });
        let sm_end = map_end + b.shuffle_merge_s * (1.0 + spread * jitter(node, 2));
        bars.push(TaskBar {
            node,
            phase: Phase::ShuffleMerge,
            start_s: map_end,
            end_s: sm_end,
        });
        bars.push(TaskBar {
            node,
            phase: Phase::Reduce,
            start_s: sm_end,
            end_s: sm_end + b.reduce_s * (1.0 + spread * jitter(node, 3)),
        });
    }
    bars
}

/// One sample of a disk-utilisation trace.
#[derive(Debug, Clone, Copy)]
pub struct DiskUtilSample {
    pub t_s: f64,
    pub util_pct: f64,
}

/// Synthesize a Fig. 10-style utilisation trace for one data disk of one
/// node over the job. A disk handling more than its merge capacity is
/// *maxed out* (pegged near 100% through shuffle+merge, the Fig. 10(a)
/// signature); under capacity it breathes.
pub fn disk_util_trace(cluster: &ClusterSpec, job: &MrJobSpec, samples: usize) -> Vec<DiskUtilSample> {
    let b = simulate_mr_job(cluster, job);
    let per_disk_gb = job.shuffle_gb / cluster.n_nodes as f64 / cluster.node.disks.len() as f64;
    let overloaded = per_disk_gb > DISK_MERGE_CAPACITY_GB;
    let total = b.wall_s;
    let map_end = b.map_s + b.map_merge_s;
    let sm_end = map_end + b.shuffle_merge_s;
    (0..samples)
        .map(|i| {
            let t = total * i as f64 / samples.max(1) as f64;
            let noise = jitter(i, 7) * 8.0;
            let base = if t < map_end {
                // Map phase: input reads + spills.
                35.0 + 15.0 * jitter(i, 11)
            } else if t < sm_end {
                if overloaded {
                    97.0 + 2.0 * jitter(i, 13) // pegged
                } else {
                    55.0 + 20.0 * jitter(i, 13)
                }
            } else {
                // Reduce: output writes.
                40.0 + 15.0 * jitter(i, 17)
            };
            DiskUtilSample {
                t_s: t,
                util_pct: (base + noise).clamp(0.0, 100.0),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mr_model::markdup_job;
    use crate::spec::WorkloadSpec;

    fn job(opt: bool) -> MrJobSpec {
        markdup_job(&WorkloadSpec::na12878(), opt, 64, 16, 16, 0.05)
    }

    #[test]
    fn progress_bars_cover_all_nodes_and_phases() {
        let c = ClusterSpec::cluster_b();
        let bars = progress_trace(&c, &job(true));
        assert_eq!(bars.len(), 4 * 3);
        for node in 0..4 {
            let node_bars: Vec<_> = bars.iter().filter(|b| b.node == node).collect();
            assert_eq!(node_bars.len(), 3);
            // Phases ordered and contiguous.
            assert!(node_bars[0].end_s <= node_bars[1].start_s + 1e-9);
            assert!(node_bars[1].end_s <= node_bars[2].start_s + 1e-9);
            for b in node_bars {
                assert!(b.end_s > b.start_s);
            }
        }
    }

    #[test]
    fn reg_trace_spread_wider_than_opt() {
        // Fig. 7 commentary: with heavy per-disk load, stragglers appear.
        let one_disk = ClusterSpec::cluster_b_with_disks(1);
        let spread = |j: &MrJobSpec| {
            let bars = progress_trace(&one_disk, j);
            let ends: Vec<f64> = bars
                .iter()
                .filter(|b| b.phase == Phase::Reduce)
                .map(|b| b.end_s)
                .collect();
            let max = ends.iter().cloned().fold(f64::MIN, f64::max);
            let min = ends.iter().cloned().fold(f64::MAX, f64::min);
            (max - min) / max
        };
        assert!(spread(&job(false)) > spread(&job(true)) * 0.99);
    }

    #[test]
    fn overloaded_disk_is_pegged_during_merge_like_fig10a() {
        // MarkDup_reg on 1 disk: ~196 GB/disk ⇒ pegged.
        let c1 = ClusterSpec::cluster_b_with_disks(1);
        let trace = disk_util_trace(&c1, &job(false), 400);
        let b = simulate_mr_job(&c1, &job(false));
        let in_merge: Vec<&DiskUtilSample> = trace
            .iter()
            .filter(|s| s.t_s > b.map_s + b.map_merge_s && s.t_s < b.map_s + b.map_merge_s + b.shuffle_merge_s)
            .collect();
        assert!(!in_merge.is_empty());
        let mean: f64 =
            in_merge.iter().map(|s| s.util_pct).sum::<f64>() / in_merge.len() as f64;
        assert!(mean > 90.0, "reg/1-disk merge should be pegged, got {mean:.0}%");

        // MarkDup_opt on 1 disk (~94 GB/disk): not pegged (Fig. 10c).
        let trace_opt = disk_util_trace(&c1, &job(true), 400);
        let b_opt = simulate_mr_job(&c1, &job(true));
        let in_merge_opt: Vec<&DiskUtilSample> = trace_opt
            .iter()
            .filter(|s| {
                s.t_s > b_opt.map_s + b_opt.map_merge_s
                    && s.t_s < b_opt.map_s + b_opt.map_merge_s + b_opt.shuffle_merge_s
            })
            .collect();
        let mean_opt: f64 = in_merge_opt.iter().map(|s| s.util_pct).sum::<f64>()
            / in_merge_opt.len().max(1) as f64;
        assert!(
            mean_opt < 80.0,
            "opt/1-disk merge should not be pegged, got {mean_opt:.0}%"
        );
    }

    #[test]
    fn utilisation_is_bounded() {
        let c = ClusterSpec::cluster_b();
        for s in disk_util_trace(&c, &job(true), 200) {
            assert!((0.0..=100.0).contains(&s.util_pct));
        }
    }
}
