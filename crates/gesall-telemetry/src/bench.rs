//! The `BENCH_*.json` emitter: machine-readable experiment records.
//!
//! Each run of an experiment appends one [`BenchRecord`] to a
//! `BENCH_<name>.json` file (a JSON array of records), establishing the
//! performance trajectory future PRs are measured against. Records
//! carry the workload, the configuration, per-phase wall-clock, and the
//! full counter set, so a regression can be localized to a phase
//! without rerunning anything.

use crate::json::Json;
use crate::phase::Phase;
use std::io;
use std::path::{Path, PathBuf};

/// One experiment run's machine-readable result.
#[derive(Debug, Clone, Default)]
pub struct BenchRecord {
    /// Experiment name, e.g. `smoke` — determines the file name.
    pub name: String,
    /// Workload description (`pairs`, `genome_bp`, …).
    pub workload: Vec<(String, String)>,
    /// Configuration knobs (`n_reducers`, `io_sort_bytes`, …).
    pub config: Vec<(String, String)>,
    /// End-to-end wall-clock.
    pub wall_ms: f64,
    /// Milliseconds per phase, indexed like [`Phase::ALL`].
    pub phase_ms: [f64; 6],
    /// Full counter snapshot.
    pub counters: Vec<(String, u64)>,
}

impl BenchRecord {
    pub fn new(name: &str) -> BenchRecord {
        BenchRecord {
            name: name.to_string(),
            ..BenchRecord::default()
        }
    }

    /// Fill phase timings from a counter snapshot and keep the full
    /// snapshot as the record's counters.
    pub fn with_counters(mut self, snapshot: Vec<(String, u64)>) -> BenchRecord {
        self.phase_ms = crate::phase::phase_ms_from_snapshot(&snapshot);
        self.counters = snapshot;
        self
    }

    /// Are all six phase timings present (nonzero)?
    pub fn covers_all_phases(&self) -> bool {
        self.phase_ms.iter().all(|&ms| ms > 0.0)
    }

    /// Phases with no recorded time, by name.
    pub fn missing_phases(&self) -> Vec<&'static str> {
        Phase::ALL
            .iter()
            .zip(self.phase_ms.iter())
            .filter(|(_, &ms)| ms <= 0.0)
            .map(|(p, _)| p.name())
            .collect()
    }

    pub fn to_json(&self) -> Json {
        let kv = |pairs: &[(String, String)]| {
            let mut o = Json::obj();
            for (k, v) in pairs {
                o = o.field(k, v.as_str());
            }
            o
        };
        let mut phases = Json::obj();
        for (p, &ms) in Phase::ALL.iter().zip(self.phase_ms.iter()) {
            phases = phases.field(p.name(), ms);
        }
        let mut counters = Json::obj();
        for (k, v) in &self.counters {
            counters = counters.field(k, *v);
        }
        Json::obj()
            .field("schema", "gesall-bench-v1")
            .field("name", self.name.as_str())
            .field("workload", kv(&self.workload))
            .field("config", kv(&self.config))
            .field("wall_ms", self.wall_ms)
            .field("phases_ms", phases)
            .field("counters", counters)
    }

    /// Rebuild a record from its JSON form (used by appends and tests).
    pub fn from_json(v: &Json) -> Result<BenchRecord, String> {
        let name = v
            .get("name")
            .and_then(Json::as_str)
            .ok_or("record missing name")?
            .to_string();
        let kv = |key: &str| -> Vec<(String, String)> {
            match v.get(key) {
                Some(Json::Obj(fields)) => fields
                    .iter()
                    .filter_map(|(k, v)| v.as_str().map(|s| (k.clone(), s.to_string())))
                    .collect(),
                _ => Vec::new(),
            }
        };
        let mut phase_ms = [0.0; 6];
        if let Some(Json::Obj(fields)) = v.get("phases_ms") {
            for (i, p) in Phase::ALL.iter().enumerate() {
                if let Some((_, Json::Num(ms))) = fields.iter().find(|(k, _)| k == p.name()) {
                    phase_ms[i] = *ms;
                }
            }
        }
        let counters = match v.get("counters") {
            Some(Json::Obj(fields)) => fields
                .iter()
                .filter_map(|(k, v)| v.as_f64().map(|n| (k.clone(), n as u64)))
                .collect(),
            _ => Vec::new(),
        };
        Ok(BenchRecord {
            name,
            workload: kv("workload"),
            config: kv("config"),
            wall_ms: v.get("wall_ms").and_then(Json::as_f64).unwrap_or(0.0),
            phase_ms,
            counters,
        })
    }

    /// The file this record belongs to, inside `dir`.
    pub fn file_path(&self, dir: &Path) -> PathBuf {
        dir.join(format!("BENCH_{}.json", self.name))
    }

    /// Append this record to `BENCH_<name>.json` under `dir`. The file
    /// is a JSON array; a missing or corrupt file is started fresh.
    /// Returns the path written.
    pub fn append_to_dir(&self, dir: &Path) -> io::Result<PathBuf> {
        let path = self.file_path(dir);
        let mut records: Vec<Json> = match std::fs::read_to_string(&path) {
            Ok(text) => Json::parse(&text)
                .ok()
                .and_then(|v| match v {
                    Json::Arr(items) => Some(items),
                    _ => None,
                })
                .unwrap_or_default(),
            Err(_) => Vec::new(),
        };
        records.push(self.to_json());
        let rendered = render_record_array(&records);
        std::fs::write(&path, rendered)?;
        Ok(path)
    }
}

/// Pretty-ish rendering: one record per line inside the array, so git
/// diffs of a trajectory file stay readable.
fn render_record_array(records: &[Json]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str("  ");
        out.push_str(&r.render());
        if i + 1 < records.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// Read every record out of a `BENCH_*.json` file.
pub fn read_bench_file(path: &Path) -> Result<Vec<BenchRecord>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let v = Json::parse(&text)?;
    let items = v.as_arr().ok_or("bench file is not a JSON array")?;
    items.iter().map(BenchRecord::from_json).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(name: &str, wall: f64) -> BenchRecord {
        let mut r = BenchRecord::new(name);
        r.workload = vec![("pairs".into(), "2500".into())];
        r.config = vec![("n_reducers".into(), "3".into())];
        r.wall_ms = wall;
        r.phase_ms = [10.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        r.counters = vec![("map.input.records".into(), 2500)];
        r
    }

    #[test]
    fn json_round_trip() {
        let r = record("smoke", 123.5);
        let back = BenchRecord::from_json(&r.to_json()).unwrap();
        assert_eq!(back.name, "smoke");
        assert_eq!(back.wall_ms, 123.5);
        assert_eq!(back.phase_ms, r.phase_ms);
        assert_eq!(back.counters, r.counters);
        assert_eq!(back.workload, r.workload);
    }

    #[test]
    fn append_accumulates_records() {
        let dir = std::env::temp_dir().join(format!("gesall-bench-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = record("trajectory", 1.0).append_to_dir(&dir).unwrap();
        record("trajectory", 2.0).append_to_dir(&dir).unwrap();
        let records = read_bench_file(&path).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].wall_ms, 1.0);
        assert_eq!(records[1].wall_ms, 2.0);
        // The file itself is valid JSON.
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(Json::parse(&text).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_phase_detection() {
        let mut r = record("x", 1.0);
        assert!(r.covers_all_phases());
        r.phase_ms[3] = 0.0;
        assert!(!r.covers_all_phases());
        assert_eq!(r.missing_phases(), vec!["shuffle"]);
    }
}
