//! A dependency-free JSON value type with a writer and a parser.
//!
//! The workspace's vendored `serde` is an API stub (the build
//! environment has no crates registry), so machine-readable output —
//! JSONL span sinks, `BENCH_*.json` records — is assembled through this
//! module instead. Objects preserve insertion order on write; numbers
//! are `f64` (adequate for timings and counters; counters above 2⁵³
//! would lose precision, which no mini-scale run approaches).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered object.
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Append a field (builder style; panics if not an object).
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), value.into())),
            _ => panic!("Json::field on non-object"),
        }
        self
    }

    /// Fetch a field of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Compact serialization.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    if *n == n.trunc() && n.abs() < 1e15 {
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        let _ = write!(out, "{n}");
                    }
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a JSON document (the whole input must be one value).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Num(v as f64)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser (recursive descent over bytes)
// ---------------------------------------------------------------------

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at offset {pos}", c as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let val = parse_value(b, pos)?;
                fields.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at offset {pos}"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len()
        && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at offset {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at offset {pos}"))?;
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at offset {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences pass
                // through unchanged).
                let rest = std::str::from_utf8(&b[*pos..])
                    .map_err(|_| "invalid utf-8 in string".to_string())?;
                let c = rest.chars().next().ok_or("empty string tail")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_parse_round_trip() {
        let v = Json::obj()
            .field("name", "smoke")
            .field("wall_ms", 12.5)
            .field("n", 42u64)
            .field("ok", true)
            .field("tags", Json::Arr(vec!["a".into(), "b\"quote".into()]))
            .field("nested", Json::obj().field("x", Json::Null));
        let text = v.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, v);
        assert_eq!(back.get("name").unwrap().as_str(), Some("smoke"));
        assert_eq!(back.get("wall_ms").unwrap().as_f64(), Some(12.5));
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(42.0).render(), "42");
        assert_eq!(Json::Num(42.5).render(), "42.5");
    }

    #[test]
    fn escapes() {
        let v = Json::Str("line\nbreak\t\"q\" \\ \u{1}".into());
        let text = v.render();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn parse_errors_are_errors() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1, 2,]").is_err());
        assert!(Json::parse("123 456").is_err());
        assert!(Json::parse("{\"a\":1}").is_ok());
    }

    #[test]
    fn parses_whitespace_and_unicode() {
        let v = Json::parse(" { \"k\" : [ 1 , -2.5e1 , \"\\u00e9é\" ] } ").unwrap();
        let arr = v.get("k").unwrap().as_arr().unwrap();
        assert_eq!(arr[1].as_f64(), Some(-25.0));
        assert_eq!(arr[2].as_str(), Some("éé"));
    }
}
