//! Bit-parallel kernel metrics: the well-known counter names the
//! map-phase kernels (packed-BWT rank, banded Smith–Waterman, radix
//! spill sort) report their activity under.
//!
//! The kernels are exact — each is pinned to its scalar oracle by
//! proptests — so these counters exist to prove the fast path actually
//! ran (a config regression that silently falls back to the scalar path
//! shows up as a zeroed counter in bench-smoke, not as an unexplained
//! Map-phase slowdown) and to size the work the bit-tricks did.

/// Well-known kernel counter names.
pub mod keys {
    /// Whole `u64` words popcounted by the packed-BWT `occ` rank kernel
    /// (32 BWT symbols per word; the byte-scan predecessor would have
    /// touched each symbol individually).
    pub const OCC_WORDS_POPCOUNTED: &str = "kernel.occ.words_popcounted";
    /// Seed extensions answered by the banded Smith–Waterman without
    /// touching a band edge (the fast path).
    pub const SW_BANDED_HITS: &str = "kernel.sw.banded_hits";
    /// Seed extensions whose banded best path touched a band edge and
    /// were re-run through the full DP for exactness.
    pub const SW_FULL_FALLBACKS: &str = "kernel.sw.full_fallbacks";
    /// LSD radix passes executed by the spill sort (constant-byte passes
    /// are skipped and not counted).
    pub const SORT_RADIX_PASSES: &str = "kernel.sort.radix_passes";
    /// Equal-prefix runs the radix sort resolved with the comparison
    /// fallback.
    pub const SORT_COMPARISON_FALLBACKS: &str = "kernel.sort.comparison_fallbacks";
}

/// Kernel activity pulled out of a counter snapshot — the numbers the
/// CLI report and the bench-smoke gates consume.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    pub occ_words_popcounted: u64,
    pub sw_banded_hits: u64,
    pub sw_full_fallbacks: u64,
    pub sort_radix_passes: u64,
    pub sort_comparison_fallbacks: u64,
}

impl KernelStats {
    /// Pull the kernel counters out of a snapshot.
    pub fn from_snapshot(snapshot: &[(String, u64)]) -> KernelStats {
        let get = |name: &str| {
            snapshot
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        KernelStats {
            occ_words_popcounted: get(keys::OCC_WORDS_POPCOUNTED),
            sw_banded_hits: get(keys::SW_BANDED_HITS),
            sw_full_fallbacks: get(keys::SW_FULL_FALLBACKS),
            sort_radix_passes: get(keys::SORT_RADIX_PASSES),
            sort_comparison_fallbacks: get(keys::SORT_COMPARISON_FALLBACKS),
        }
    }

    /// Fraction of seed extensions the band answered without fallback.
    pub fn banded_hit_ratio(&self) -> f64 {
        let total = self.sw_banded_hits + self.sw_full_fallbacks;
        if total == 0 {
            0.0
        } else {
            self.sw_banded_hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_from_snapshot() {
        let snap = vec![
            ("kernel.occ.words_popcounted".to_string(), 1000u64),
            ("kernel.sw.banded_hits".to_string(), 90),
            ("kernel.sw.full_fallbacks".to_string(), 10),
            ("kernel.sort.radix_passes".to_string(), 24),
            ("unrelated".to_string(), 7),
        ];
        let k = KernelStats::from_snapshot(&snap);
        assert_eq!(k.occ_words_popcounted, 1000);
        assert_eq!(k.sw_banded_hits, 90);
        assert_eq!(k.sw_full_fallbacks, 10);
        assert_eq!(k.sort_radix_passes, 24);
        assert_eq!(k.sort_comparison_fallbacks, 0);
        assert!((k.banded_hit_ratio() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn empty_snapshot_is_zero() {
        let k = KernelStats::from_snapshot(&[]);
        assert_eq!(k, KernelStats::default());
        assert_eq!(k.banded_hit_ratio(), 0.0);
    }
}
