//! # gesall-telemetry
//!
//! The observability subsystem: everything the paper's in-depth
//! performance study measures, as reusable machinery.
//!
//! * [`metrics`] — a low-overhead **metrics registry**: named counters,
//!   gauges, and log-scale histograms behind atomics, addressable
//!   through labeled scopes (`job/wave/task`). The engine's venerable
//!   [`metrics::Counters`] bag is a thin veneer over this registry.
//! * [`phase`] — the six execution phases of a MapReduce round the
//!   paper's Tables 4–7 break wall-clock time into: map, sort-spill,
//!   map-merge, shuffle, reduce-merge, reduce.
//! * [`mem`] — memory-path metrics: payload **bytes actually copied**
//!   on the record path and spill-arena allocator behaviour, the gauge
//!   the zero-copy refactor (DESIGN.md §3⅞) is measured by.
//! * [`kernel`] — bit-parallel kernel metrics: packed-BWT rank words
//!   popcounted, banded-SW hits vs full-DP fallbacks, radix sort passes
//!   (DESIGN.md §5) — proof in the counters that the fast paths ran.
//! * [`span`] — **span-based structured tracing** of job → wave →
//!   task-attempt → phase lifecycles: parent ids, start/end timestamps,
//!   attached metrics, an in-memory event log, and an optional JSONL
//!   sink for offline analysis.
//! * [`report`] — derived reports: per-phase wall-clock breakdown
//!   tables (the Table 4–7 shape), per-wave task timelines (text
//!   Gantt), shuffle-matrix bytes moved, and straggler/skew statistics
//!   (p50/p95/max task duration per phase).
//! * [`json`] — a dependency-free JSON value type, writer, and parser
//!   (the vendored serde is an API stub, so machine-readable output is
//!   hand-assembled).
//! * [`bench`] — the `BENCH_*.json` emitter: every experiment run
//!   appends a record (workload, config, phase timings, counters) so
//!   the perf trajectory of the repo is machine-checkable.
//!
//! The crate is deliberately leaf-level: it depends on nothing else in
//! the workspace, so every layer (`gesall-dfs`, `gesall-mapreduce`,
//! `gesall-core`, the binaries) can instrument itself against it.

pub mod bench;
pub mod json;
pub mod kernel;
pub mod mem;
pub mod metrics;
pub mod phase;
pub mod report;
pub mod span;

pub use bench::BenchRecord;
pub use json::Json;
pub use kernel::{keys as kernel_keys, KernelStats};
pub use mem::{keys as mem_keys, MemStats};
pub use metrics::{Counters, Histogram, MetricsRegistry};
pub use phase::Phase;
pub use report::{DurationStats, GanttRow, PhaseRow};
pub use span::{OpenSpan, Recorder, Span, SpanId, SpanKind};
