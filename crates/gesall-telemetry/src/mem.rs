//! Memory-path metrics: the well-known counter names every layer uses
//! to account payload bytes that are actually memcpy'd and spill-buffer
//! allocator behaviour.
//!
//! The paper's shuffle/merge findings (Tables 4–7, Fig. 5b) are about
//! where bytes move. These keys give the platform an honest
//! "bytes moved" gauge: each layer adds to [`keys::BYTES_COPIED`] at
//! every point where record payload is copied (spill encode, compress,
//! decompress, decode, block concatenation), and the zero-copy paths —
//! shared-slice segment fetch, ownership-transfer pipe chunks,
//! single-block DFS reads — add nothing. A refactor that silently
//! reintroduces a copy shows up as a per-record regression in the
//! bench-smoke gate instead of as an unexplained phase slowdown.

/// Well-known memory-path counter names.
pub mod keys {
    /// Payload bytes memcpy'd on the record path.
    pub const BYTES_COPIED: &str = "mem.bytes.copied";
    /// Spill-scratch buffers handed out (arena hits + misses).
    pub const SPILL_ALLOCS: &str = "mem.spill.allocs";
    /// Spill-scratch buffers served by recycling a previously released
    /// buffer instead of allocating a fresh one.
    pub const SPILL_REUSED: &str = "mem.spill.reused";
    /// Released spill-scratch buffers dropped because the arena's
    /// free-list was already at capacity (bounded memory, not a leak).
    pub const SPILL_EVICTED: &str = "mem.spill.evicted";
    /// Peak decoded-side resident bytes of a streaming reduce-side
    /// merge: decompression scratch for the active runs plus the head
    /// records under the merge heap. Encoded run storage (zero-copy
    /// segment windows, arena-recycled rewrite buffers) is the engine's
    /// "disk" layer and is excluded. Since `Counters::merge` sums, an
    /// aggregated value is the sum of per-reducer peaks — flat in input
    /// size at a fixed reducer count and `merge_factor`.
    pub const REDUCE_PEAK_RESIDENT: &str = "mem.reduce.peak_resident";
}

/// Derived memory-path statistics from a counter snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MemStats {
    /// Total payload bytes copied.
    pub bytes_copied: u64,
    /// Spill-scratch buffers handed out.
    pub spill_allocs: u64,
    /// ... of which were recycled.
    pub spill_reused: u64,
    /// Released buffers dropped at a full free-list.
    pub spill_evicted: u64,
}

impl MemStats {
    /// Pull the memory-path counters out of a snapshot.
    pub fn from_snapshot(snapshot: &[(String, u64)]) -> MemStats {
        let get = |name: &str| {
            snapshot
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        MemStats {
            bytes_copied: get(keys::BYTES_COPIED),
            spill_allocs: get(keys::SPILL_ALLOCS),
            spill_reused: get(keys::SPILL_REUSED),
            spill_evicted: get(keys::SPILL_EVICTED),
        }
    }

    /// Bytes copied per `records` (e.g. shuffled records) — the gate
    /// metric. Zero when no records moved.
    pub fn bytes_copied_per_record(&self, records: u64) -> f64 {
        if records == 0 {
            0.0
        } else {
            self.bytes_copied as f64 / records as f64
        }
    }

    /// Fraction of spill-scratch acquisitions served by recycling.
    pub fn reuse_ratio(&self) -> f64 {
        if self.spill_allocs == 0 {
            0.0
        } else {
            self.spill_reused as f64 / self.spill_allocs as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_from_snapshot() {
        let snap = vec![
            ("mem.bytes.copied".to_string(), 1000u64),
            ("mem.spill.allocs".to_string(), 10),
            ("mem.spill.reused".to_string(), 8),
            ("mem.spill.evicted".to_string(), 2),
            ("unrelated".to_string(), 7),
        ];
        let m = MemStats::from_snapshot(&snap);
        assert_eq!(m.bytes_copied, 1000);
        assert_eq!(m.spill_allocs, 10);
        assert_eq!(m.spill_reused, 8);
        assert_eq!(m.spill_evicted, 2);
        assert_eq!(m.bytes_copied_per_record(500), 2.0);
        assert_eq!(m.reuse_ratio(), 0.8);
    }

    #[test]
    fn empty_snapshot_is_zero() {
        let m = MemStats::from_snapshot(&[]);
        assert_eq!(m, MemStats::default());
        assert_eq!(m.bytes_copied_per_record(0), 0.0);
        assert_eq!(m.reuse_ratio(), 0.0);
    }
}
