//! The metrics registry: named counters, gauges, and log-scale
//! histograms behind atomics, addressable through labeled scopes.
//!
//! Registration (name → atomic cell) takes a lock once; the returned
//! handles are lock-free afterwards, so hot paths pay one atomic add per
//! update. Snapshots and renderings are **deterministically sorted by
//! key** (the registry stores names in `BTreeMap`s), so diffs and
//! snapshot assertions are stable across runs.

use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

// ---------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------

/// A log₂-bucketed histogram of `u64` samples: bucket *i* counts values
/// whose bit length is *i* (value 0 lands in bucket 0). Recording is one
/// atomic add; quantiles are approximate (bucket upper bounds), which is
/// all straggler analysis needs.
pub struct Histogram {
    buckets: [AtomicU64; 65],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram::default()
    }

    fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Upper bound of bucket `i` (inclusive).
    fn bucket_upper(i: usize) -> u64 {
        match i {
            0 => 0,
            1..=63 => (1u64 << i) - 1,
            _ => u64::MAX,
        }
    }

    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Approximate quantile `q` in `[0, 1]`: the upper bound of the
    /// bucket containing the q-th sample. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let n = self.count();
        if n == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Some(Self::bucket_upper(i));
            }
        }
        Some(Self::bucket_upper(64))
    }

    /// Non-empty buckets as `(upper_bound, count)`, low to high.
    pub fn snapshot(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let c = b.load(Ordering::Relaxed);
                (c > 0).then_some((Self::bucket_upper(i), c))
            })
            .collect()
    }
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

#[derive(Default)]
struct RegistryInner {
    counters: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: RwLock<BTreeMap<String, Arc<AtomicI64>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

/// The registry: a concurrent namespace of counters, gauges, and
/// histograms. Cheap to clone (`Arc` inside); clones share state.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<RegistryInner>,
}

/// Lock-free handle to one counter cell.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Lock-free handle to one gauge cell (a settable signed level, e.g.
/// "tasks currently running").
#[derive(Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Get-or-create the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(c) = self.inner.counters.read().get(name) {
            return Counter(c.clone());
        }
        let mut w = self.inner.counters.write();
        Counter(w.entry(name.to_string()).or_default().clone())
    }

    /// Get-or-create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        if let Some(g) = self.inner.gauges.read().get(name) {
            return Gauge(g.clone());
        }
        let mut w = self.inner.gauges.write();
        Gauge(w.entry(name.to_string()).or_default().clone())
    }

    /// Get-or-create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = self.inner.histograms.read().get(name) {
            return h.clone();
        }
        let mut w = self.inner.histograms.write();
        w.entry(name.to_string()).or_default().clone()
    }

    /// A labeled scope: metric names created through it are prefixed
    /// `label/` — the `job/wave/task` addressing scheme. Scopes nest.
    pub fn scope(&self, label: &str) -> Scope {
        Scope {
            registry: self.clone(),
            prefix: format!("{label}/"),
        }
    }

    /// All counters, sorted by name.
    pub fn counter_snapshot(&self) -> Vec<(String, u64)> {
        self.inner
            .counters
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect()
    }

    /// All gauges, sorted by name.
    pub fn gauge_snapshot(&self) -> Vec<(String, i64)> {
        self.inner
            .gauges
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect()
    }

    /// One line per metric, sorted by key — stable for snapshot tests.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (k, v) in self.counter_snapshot() {
            out.push_str(&format!("counter {k} = {v}\n"));
        }
        for (k, v) in self.gauge_snapshot() {
            out.push_str(&format!("gauge {k} = {v}\n"));
        }
        let hists = self.inner.histograms.read();
        for (k, h) in hists.iter() {
            out.push_str(&format!(
                "histogram {k} count={} sum={} p50≤{} p95≤{} max≤{}\n",
                h.count(),
                h.sum(),
                h.quantile(0.5).unwrap_or(0),
                h.quantile(0.95).unwrap_or(0),
                h.quantile(1.0).unwrap_or(0),
            ));
        }
        out
    }
}

/// A name-prefixing view of a [`MetricsRegistry`].
#[derive(Clone)]
pub struct Scope {
    registry: MetricsRegistry,
    prefix: String,
}

impl Scope {
    pub fn counter(&self, name: &str) -> Counter {
        self.registry.counter(&format!("{}{name}", self.prefix))
    }

    pub fn gauge(&self, name: &str) -> Gauge {
        self.registry.gauge(&format!("{}{name}", self.prefix))
    }

    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.registry.histogram(&format!("{}{name}", self.prefix))
    }

    pub fn scope(&self, label: &str) -> Scope {
        Scope {
            registry: self.registry.clone(),
            prefix: format!("{}{label}/", self.prefix),
        }
    }
}

// ---------------------------------------------------------------------
// Counters — the engine's job-counter bag, now registry-backed
// ---------------------------------------------------------------------

/// A concurrent bag of named `u64` counters — the Hadoop job-counter
/// abstraction the engine threads through every task. Since the
/// telemetry refactor this is a veneer over [`MetricsRegistry`]: `add`
/// is one atomic increment after a cached-handle lookup, and snapshots
/// are sorted by key.
#[derive(Clone, Default)]
pub struct Counters {
    registry: MetricsRegistry,
}

impl Counters {
    pub fn new() -> Counters {
        Counters::default()
    }

    /// The registry backing this bag (for gauges/histograms/scopes).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Add `delta` to counter `name`.
    pub fn add(&self, name: &str, delta: u64) {
        self.registry.counter(name).add(delta);
    }

    /// Current value of `name` (0 if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.registry
            .inner
            .counters
            .read()
            .get(name)
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Snapshot of all counters, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        self.registry.counter_snapshot()
    }

    /// Merge another counter bag into this one.
    pub fn merge(&self, other: &Counters) {
        for (k, v) in other.snapshot() {
            if v > 0 {
                self.add(&k, v);
            }
        }
    }

    /// One `key = value` line per counter, sorted by key.
    pub fn render(&self) -> String {
        self.snapshot()
            .into_iter()
            .map(|(k, v)| format!("{k} = {v}\n"))
            .collect()
    }
}

impl std::fmt::Debug for Counters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map().entries(self.snapshot()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_add_get_snapshot() {
        let c = Counters::new();
        c.add("a", 5);
        c.add("a", 2);
        c.add("b", 1);
        assert_eq!(c.get("a"), 7);
        assert_eq!(c.get("missing"), 0);
        assert_eq!(
            c.snapshot(),
            vec![("a".to_string(), 7), ("b".to_string(), 1)]
        );
    }

    #[test]
    fn counters_merge_sums() {
        let a = Counters::new();
        let b = Counters::new();
        a.add("x", 1);
        b.add("x", 2);
        b.add("y", 3);
        a.merge(&b);
        assert_eq!(a.get("x"), 3);
        assert_eq!(a.get("y"), 3);
    }

    #[test]
    fn counters_concurrent_adds() {
        let c = Counters::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.add("n", 1);
                    }
                });
            }
        });
        assert_eq!(c.get("n"), 8000);
    }

    #[test]
    fn render_is_deterministically_sorted() {
        // Insertion order must not matter: two bags with the same
        // contents render byte-identically.
        let a = Counters::new();
        a.add("zeta", 1);
        a.add("alpha", 2);
        a.add("mid.key", 3);
        let b = Counters::new();
        b.add("mid.key", 3);
        b.add("alpha", 2);
        b.add("zeta", 1);
        assert_eq!(a.render(), b.render());
        let rendered = a.render();
        let keys: Vec<&str> = rendered.lines().map(|l| l.split(" = ").next().unwrap()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "render must be key-sorted");
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "Debug must be key-sorted too");
    }

    #[test]
    fn gauge_set_and_add() {
        let r = MetricsRegistry::new();
        let g = r.gauge("slots.busy");
        g.set(4);
        g.add(-1);
        assert_eq!(g.get(), 3);
        assert_eq!(r.gauge_snapshot(), vec![("slots.busy".to_string(), 3)]);
    }

    #[test]
    fn histogram_quantiles() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 4, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1110);
        // p50 of six samples = 3rd sample (value 3) → bucket upper 3.
        assert_eq!(h.quantile(0.5), Some(3));
        // max bucket for 1000 is [512, 1023].
        assert_eq!(h.quantile(1.0), Some(1023));
        assert_eq!(Histogram::new().quantile(0.5), None);
    }

    #[test]
    fn histogram_zero_and_large() {
        let h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile(0.0), Some(0));
    }

    #[test]
    fn scopes_prefix_names() {
        let r = MetricsRegistry::new();
        let job = r.scope("job0");
        let wave = job.scope("map-wave");
        wave.counter("tasks").add(3);
        assert_eq!(
            r.counter_snapshot(),
            vec![("job0/map-wave/tasks".to_string(), 3)]
        );
    }

    #[test]
    fn registry_render_sorted_and_stable() {
        let r = MetricsRegistry::new();
        r.counter("b").add(1);
        r.counter("a").add(2);
        r.gauge("g").set(-5);
        r.histogram("h").record(7);
        let s = r.render();
        let ca = s.find("counter a").unwrap();
        let cb = s.find("counter b").unwrap();
        assert!(ca < cb);
        assert!(s.contains("gauge g = -5"));
        assert!(s.contains("histogram h count=1"));
    }
}
