//! The six phases a MapReduce round's wall-clock time decomposes into —
//! the row/column structure of the paper's Tables 4–7.
//!
//! Instrumentation accumulates nanoseconds into per-phase counters (one
//! well-known key per phase); reports convert them to milliseconds.

/// One execution phase of a MapReduce round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// User map function (plus record decode), excluding buffer work.
    Map,
    /// Sorting + spilling the map-side sort buffer (`io.sort.mb`).
    SortSpill,
    /// Merging spill runs into the final partitioned map output.
    MapMerge,
    /// Fetching + decoding map-output segments on the reduce side.
    Shuffle,
    /// Reduce-side multipass merge (including the final merge + grouping).
    ReduceMerge,
    /// User reduce function.
    Reduce,
}

impl Phase {
    /// All phases, in pipeline order.
    pub const ALL: [Phase; 6] = [
        Phase::Map,
        Phase::SortSpill,
        Phase::MapMerge,
        Phase::Shuffle,
        Phase::ReduceMerge,
        Phase::Reduce,
    ];

    /// Short human name, as used in report columns.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Map => "map",
            Phase::SortSpill => "sort-spill",
            Phase::MapMerge => "map-merge",
            Phase::Shuffle => "shuffle",
            Phase::ReduceMerge => "reduce-merge",
            Phase::Reduce => "reduce",
        }
    }

    /// The counter key phase time (nanoseconds) accumulates under.
    pub fn counter_key(self) -> &'static str {
        match self {
            Phase::Map => "phase.map.nanos",
            Phase::SortSpill => "phase.sort-spill.nanos",
            Phase::MapMerge => "phase.map-merge.nanos",
            Phase::Shuffle => "phase.shuffle.nanos",
            Phase::ReduceMerge => "phase.reduce-merge.nanos",
            Phase::Reduce => "phase.reduce.nanos",
        }
    }

    /// Parse a phase from its short name.
    pub fn from_name(name: &str) -> Option<Phase> {
        Phase::ALL.into_iter().find(|p| p.name() == name)
    }
}

/// Extract per-phase milliseconds from a counter snapshot.
pub fn phase_ms_from_snapshot(snapshot: &[(String, u64)]) -> [f64; 6] {
    let mut out = [0.0; 6];
    for (i, p) in Phase::ALL.iter().enumerate() {
        if let Some((_, v)) = snapshot.iter().find(|(k, _)| k == p.counter_key()) {
            out[i] = *v as f64 / 1e6;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for p in Phase::ALL {
            assert_eq!(Phase::from_name(p.name()), Some(p));
        }
        assert_eq!(Phase::from_name("nope"), None);
    }

    #[test]
    fn snapshot_extraction() {
        let snap = vec![
            ("phase.map.nanos".to_string(), 2_000_000u64),
            ("phase.reduce.nanos".to_string(), 500_000),
            ("unrelated".to_string(), 7),
        ];
        let ms = phase_ms_from_snapshot(&snap);
        assert_eq!(ms[0], 2.0);
        assert_eq!(ms[5], 0.5);
        assert_eq!(ms[1], 0.0);
    }
}
