//! Derived performance reports: the paper's Table 4–7 per-phase
//! breakdowns, per-wave task timelines (text Gantt), shuffle-matrix
//! bytes moved, and straggler/skew statistics.
//!
//! Everything here is pure formatting over plain data, so each layer
//! can feed it whatever it measured without depending on the engine's
//! types.

use crate::phase::Phase;
use crate::span::ShuffleCell;

// ---------------------------------------------------------------------
// Per-phase breakdown (Tables 4–7 shape)
// ---------------------------------------------------------------------

/// One row of a phase-breakdown table: a labeled execution (a round, a
/// configuration, a job) with its wall-clock and per-phase times.
#[derive(Debug, Clone)]
pub struct PhaseRow {
    pub label: String,
    pub wall_ms: f64,
    /// Milliseconds per phase, indexed like [`Phase::ALL`].
    pub phase_ms: [f64; 6],
}

impl PhaseRow {
    /// Build a row from a counter snapshot holding `phase.*.nanos` keys.
    pub fn from_snapshot(label: impl Into<String>, wall_ms: f64, snapshot: &[(String, u64)]) -> PhaseRow {
        PhaseRow {
            label: label.into(),
            wall_ms,
            phase_ms: crate::phase::phase_ms_from_snapshot(snapshot),
        }
    }

    /// Does every phase carry a nonzero time?
    pub fn covers_all_phases(&self) -> bool {
        self.phase_ms.iter().all(|&ms| ms > 0.0)
    }
}

fn fmt_ms(ms: f64) -> String {
    if ms >= 100.0 {
        format!("{ms:.0}")
    } else if ms >= 1.0 {
        format!("{ms:.1}")
    } else {
        format!("{ms:.3}")
    }
}

/// Render rows × phases as an aligned text table with a Σ (total) row.
/// Column layout follows the paper's Tables 4–7: one column per phase
/// plus wall-clock. Phase times are summed across tasks, so on a
/// parallel cluster a row's phase total legitimately exceeds its wall.
pub fn phase_table(rows: &[PhaseRow]) -> String {
    let mut headers = vec!["round".to_string()];
    headers.extend(Phase::ALL.iter().map(|p| p.name().to_string()));
    headers.push("Σ phases".to_string());
    headers.push("wall".to_string());
    let mut cells: Vec<Vec<String>> = Vec::new();
    let mut totals = [0.0f64; 6];
    let mut total_wall = 0.0;
    for row in rows {
        let mut line = vec![row.label.clone()];
        for (i, &ms) in row.phase_ms.iter().enumerate() {
            totals[i] += ms;
            line.push(fmt_ms(ms));
        }
        line.push(fmt_ms(row.phase_ms.iter().sum()));
        line.push(fmt_ms(row.wall_ms));
        total_wall += row.wall_ms;
        cells.push(line);
    }
    if rows.len() > 1 {
        let mut line = vec!["TOTAL".to_string()];
        for &t in &totals {
            line.push(fmt_ms(t));
        }
        line.push(fmt_ms(totals.iter().sum()));
        line.push(fmt_ms(total_wall));
        cells.push(line);
    }
    render_aligned(&headers, &cells)
}

// ---------------------------------------------------------------------
// Task timeline (text Gantt)
// ---------------------------------------------------------------------

/// One bar of a Gantt chart.
#[derive(Debug, Clone)]
pub struct GanttRow {
    pub label: String,
    pub start_ms: f64,
    pub end_ms: f64,
}

/// Render task bars against a shared time axis, `width` columns wide.
/// Bars are `#` runs positioned proportionally between the earliest
/// start and the latest end; each row is annotated with `[start → end]`.
pub fn gantt(rows: &[GanttRow], width: usize) -> String {
    if rows.is_empty() {
        return "(no tasks)\n".to_string();
    }
    let width = width.max(10);
    let t0 = rows.iter().map(|r| r.start_ms).fold(f64::INFINITY, f64::min);
    let t1 = rows.iter().map(|r| r.end_ms).fold(0.0f64, f64::max);
    let span = (t1 - t0).max(1e-9);
    let label_w = rows.iter().map(|r| r.label.chars().count()).max().unwrap_or(0);
    let mut out = String::new();
    out.push_str(&format!(
        "{:label_w$} |{}| window {:.1}ms\n",
        "task",
        "-".repeat(width),
        span
    ));
    for r in rows {
        let a = (((r.start_ms - t0) / span) * width as f64).floor() as usize;
        let b = (((r.end_ms - t0) / span) * width as f64).ceil() as usize;
        let a = a.min(width.saturating_sub(1));
        let b = b.clamp(a + 1, width);
        let bar: String = (0..width)
            .map(|i| if i >= a && i < b { '#' } else { ' ' })
            .collect();
        out.push_str(&format!(
            "{:label_w$} |{bar}| [{:.1} → {:.1}]\n",
            r.label, r.start_ms, r.end_ms
        ));
    }
    out
}

// ---------------------------------------------------------------------
// Pipeline DAG: stage table + critical-path attribution
// ---------------------------------------------------------------------

/// One executed (or cache-served) stage node of a pipeline DAG, as
/// reconstructed from `SpanKind::Stage` spans or an executor's stage
/// report.
#[derive(Debug, Clone)]
pub struct DagStageRow {
    pub name: String,
    /// Names of the stages whose outputs this stage consumed.
    pub parents: Vec<String>,
    pub duration_ms: f64,
    /// Was the stage's output served from the content-addressed store
    /// instead of being recomputed?
    pub cached: bool,
}

/// The chain of stages that bounds the DAG's wall-clock: the
/// root-to-sink path maximizing summed stage duration. Returns the
/// stage names along the path (source first) and the path's total
/// milliseconds. Parents not present in `rows` contribute nothing;
/// a (malformed) cyclic input breaks the cycle rather than recursing
/// forever.
pub fn critical_path(rows: &[DagStageRow]) -> (Vec<String>, f64) {
    use std::collections::HashMap;
    let by_name: HashMap<&str, &DagStageRow> =
        rows.iter().map(|r| (r.name.as_str(), r)).collect();
    // cost[name] = duration + max(cost(parents)); memoized DFS with an
    // in-progress marker so a cycle terminates instead of overflowing.
    fn cost<'a>(
        name: &'a str,
        by_name: &HashMap<&'a str, &'a DagStageRow>,
        memo: &mut HashMap<&'a str, Option<f64>>,
    ) -> f64 {
        match memo.get(name) {
            Some(Some(c)) => return *c,
            Some(None) => return 0.0, // on the stack: cycle guard
            None => {}
        }
        let Some(row) = by_name.get(name) else { return 0.0 };
        memo.insert(name, None);
        let upstream = row
            .parents
            .iter()
            .map(|p| cost(p.as_str(), by_name, memo))
            .fold(0.0f64, f64::max);
        let c = row.duration_ms + upstream;
        memo.insert(name, Some(c));
        c
    }
    let mut memo = HashMap::new();
    let Some(sink) = rows
        .iter()
        .max_by(|a, b| {
            cost(a.name.as_str(), &by_name, &mut memo)
                .total_cmp(&cost(b.name.as_str(), &by_name, &mut memo))
        })
    else {
        return (Vec::new(), 0.0);
    };
    let total = cost(sink.name.as_str(), &by_name, &mut memo);
    // Walk back from the sink along the max-cost parent at each step.
    let mut path = vec![sink.name.clone()];
    let mut cur = sink;
    loop {
        let next = cur
            .parents
            .iter()
            .filter_map(|p| by_name.get(p.as_str()).copied())
            .max_by(|a, b| {
                cost(a.name.as_str(), &by_name, &mut memo)
                    .total_cmp(&cost(b.name.as_str(), &by_name, &mut memo))
            });
        match next {
            Some(p) if !path.contains(&p.name) => {
                path.push(p.name.clone());
                cur = p;
            }
            _ => break,
        }
    }
    path.reverse();
    (path, total)
}

/// Render the stage table — parents, duration, cache status, and a `*`
/// marker on critical-path stages — followed by the critical-path
/// chain and its total, the DAG analogue of the phase table.
pub fn dag_report(rows: &[DagStageRow]) -> String {
    if rows.is_empty() {
        return "(no stages recorded)\n".to_string();
    }
    let (path, total) = critical_path(rows);
    let headers = vec![
        "stage".to_string(),
        "parents".to_string(),
        "ms".to_string(),
        "cached".to_string(),
        "crit".to_string(),
    ];
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                if r.parents.is_empty() {
                    "-".to_string()
                } else {
                    r.parents.join(",")
                },
                fmt_ms(r.duration_ms),
                if r.cached { "hit" } else { "run" }.to_string(),
                if path.contains(&r.name) { "*" } else { "" }.to_string(),
            ]
        })
        .collect();
    let mut out = render_aligned(&headers, &cells);
    out.push_str(&format!(
        "critical path: {} ({} ms)\n",
        path.join(" → "),
        fmt_ms(total)
    ));
    out
}

// ---------------------------------------------------------------------
// Straggler / skew statistics
// ---------------------------------------------------------------------

/// Order statistics of a set of task durations.
#[derive(Debug, Clone, PartialEq)]
pub struct DurationStats {
    pub n: usize,
    pub mean_ms: f64,
    pub p50_ms: f64,
    pub p95_ms: f64,
    pub max_ms: f64,
    /// max / p50 — the skew ratio straggler analysis keys on.
    pub skew: f64,
}

/// Compute stats over raw durations (exact quantiles, nearest-rank).
pub fn duration_stats(durations_ms: &[f64]) -> Option<DurationStats> {
    if durations_ms.is_empty() {
        return None;
    }
    let mut sorted = durations_ms.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    let rank = |q: f64| -> f64 {
        let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
        sorted[idx]
    };
    let p50 = rank(0.5);
    let max = sorted[n - 1];
    Some(DurationStats {
        n,
        mean_ms: sorted.iter().sum::<f64>() / n as f64,
        p50_ms: p50,
        p95_ms: rank(0.95),
        max_ms: max,
        skew: if p50 > 0.0 { max / p50 } else { 1.0 },
    })
}

/// Render one stats row per labeled group (typically one per wave or
/// per phase): `n`, mean, p50, p95, max, and the max/p50 skew ratio.
pub fn straggler_report(groups: &[(String, Vec<f64>)]) -> String {
    let headers = vec![
        "group".to_string(),
        "tasks".to_string(),
        "mean".to_string(),
        "p50".to_string(),
        "p95".to_string(),
        "max".to_string(),
        "skew".to_string(),
    ];
    let mut cells = Vec::new();
    for (label, durs) in groups {
        let Some(s) = duration_stats(durs) else {
            continue;
        };
        cells.push(vec![
            label.clone(),
            s.n.to_string(),
            fmt_ms(s.mean_ms),
            fmt_ms(s.p50_ms),
            fmt_ms(s.p95_ms),
            fmt_ms(s.max_ms),
            format!("{:.2}×", s.skew),
        ]);
    }
    render_aligned(&headers, &cells)
}

// ---------------------------------------------------------------------
// Shuffle matrix
// ---------------------------------------------------------------------

/// Render the bytes-moved matrix (map tasks × reduce partitions) with
/// row/column totals, from recorded [`ShuffleCell`]s. Cells whose bytes
/// travelled compressed are marked `c` (mixed raw/compressed cells `~`)
/// so raw and by-reference compressed traffic can be told apart.
pub fn shuffle_matrix(cells: &[ShuffleCell]) -> String {
    if cells.is_empty() {
        return "(no shuffle traffic recorded)\n".to_string();
    }
    let n_maps = cells.iter().map(|c| c.map_task).max().unwrap_or(0) + 1;
    let n_reds = cells.iter().map(|c| c.reduce_task).max().unwrap_or(0) + 1;
    // (total bytes, of which travelled compressed)
    let mut matrix = vec![vec![(0u64, 0u64); n_reds]; n_maps];
    for c in cells {
        let cell = &mut matrix[c.map_task][c.reduce_task];
        cell.0 += c.bytes;
        if c.compressed {
            cell.1 += c.bytes;
        }
    }
    let fmt_cell = |(total, comp): (u64, u64)| -> String {
        if total == 0 || comp == 0 {
            total.to_string()
        } else if comp == total {
            format!("{total}c")
        } else {
            format!("{total}~")
        }
    };
    let mut headers = vec!["map\\reduce".to_string()];
    headers.extend((0..n_reds).map(|r| format!("r{r}")));
    headers.push("Σ".to_string());
    let mut rows = Vec::new();
    let mut col_totals = vec![0u64; n_reds];
    for (m, row) in matrix.iter().enumerate() {
        let mut line = vec![format!("m{m}")];
        for (r, &cell) in row.iter().enumerate() {
            col_totals[r] += cell.0;
            line.push(fmt_cell(cell));
        }
        line.push(row.iter().map(|c| c.0).sum::<u64>().to_string());
        rows.push(line);
    }
    let mut line = vec!["Σ".to_string()];
    for &t in &col_totals {
        line.push(t.to_string());
    }
    line.push(col_totals.iter().sum::<u64>().to_string());
    rows.push(line);
    let mut out = render_aligned(&headers, &rows);
    if cells.iter().any(|c| c.compressed) {
        out.push_str("c = travelled compressed (shipped by reference, decoded once at merge)\n");
    }
    out
}

/// One-line summary of the shuffle fetch path, from the
/// `shuffle.fetch.*` counters: the local/remote byte split the
/// locality-aware replica selection produced, and how many partition
/// fetches the bounded prefetch had already completed when the merge
/// asked. The matrix above says who moved bytes to whom; this says how
/// far those bytes travelled and whether the fetch pipeline hid them
/// behind the merge.
pub fn shuffle_fetch_summary(local_bytes: u64, remote_bytes: u64, prefetched: u64) -> String {
    let total = local_bytes + remote_bytes;
    if total == 0 && prefetched == 0 {
        return "(no shuffle fetch traffic recorded)\n".to_string();
    }
    let pct = if total > 0 {
        100.0 * local_bytes as f64 / total as f64
    } else {
        0.0
    };
    format!(
        "shuffle fetch: {local_bytes} B local / {remote_bytes} B remote \
         ({pct:.1}% served by the co-located replica); \
         {prefetched} fetches already resident when the merge asked\n"
    )
}

// ---------------------------------------------------------------------
// Shared table renderer
// ---------------------------------------------------------------------

fn render_aligned(headers: &[String], rows: &[Vec<String>]) -> String {
    let n = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        for (i, c) in row.iter().enumerate() {
            widths[i] = widths[i].max(c.chars().count());
        }
    }
    let line = |cells: &[String]| -> String {
        let mut out = String::new();
        for i in 0..n {
            let pad = widths[i] - cells[i].chars().count();
            out.push_str("| ");
            out.push_str(&cells[i]);
            out.push_str(&" ".repeat(pad + 1));
        }
        out.push('|');
        out
    };
    let mut out = line(headers);
    out.push('\n');
    let mut sep = String::new();
    for w in &widths {
        sep.push_str("|-");
        sep.push_str(&"-".repeat(w + 1));
    }
    sep.push('|');
    out.push_str(&sep);
    out.push('\n');
    for row in rows {
        out.push_str(&line(row));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_table_has_all_columns_and_totals() {
        let rows = vec![
            PhaseRow {
                label: "round2".into(),
                wall_ms: 100.0,
                phase_ms: [40.0, 5.0, 8.0, 12.0, 20.0, 15.0],
            },
            PhaseRow {
                label: "round4".into(),
                wall_ms: 60.0,
                phase_ms: [30.0, 2.0, 3.0, 10.0, 5.0, 10.0],
            },
        ];
        let t = phase_table(&rows);
        for p in Phase::ALL {
            assert!(t.contains(p.name()), "missing column {}", p.name());
        }
        assert!(t.contains("TOTAL"));
        assert!(t.contains("round2"));
        // Totals: map 70, sort-spill 7.0 …
        assert!(t.contains("70"), "{t}");
    }

    #[test]
    fn phase_row_from_snapshot_and_coverage() {
        let snap: Vec<(String, u64)> = Phase::ALL
            .iter()
            .map(|p| (p.counter_key().to_string(), 1_000_000u64))
            .collect();
        let row = PhaseRow::from_snapshot("x", 10.0, &snap);
        assert!(row.covers_all_phases());
        assert_eq!(row.phase_ms, [1.0; 6]);
        let partial = &snap[..3];
        assert!(!PhaseRow::from_snapshot("y", 10.0, partial).covers_all_phases());
    }

    #[test]
    fn gantt_positions_bars() {
        let rows = vec![
            GanttRow { label: "m0".into(), start_ms: 0.0, end_ms: 50.0 },
            GanttRow { label: "m1".into(), start_ms: 50.0, end_ms: 100.0 },
        ];
        let g = gantt(&rows, 20);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 3);
        // First bar occupies the left half, second the right half.
        let bar0: &str = lines[1];
        let bar1: &str = lines[2];
        assert!(bar0.find('#').unwrap() < bar1.find('#').unwrap());
        assert_eq!(gantt(&[], 20), "(no tasks)\n");
    }

    #[test]
    fn critical_path_follows_heaviest_chain() {
        // Diamond: a → {b, c} → d, with the b side heavier.
        let rows = vec![
            DagStageRow { name: "a".into(), parents: vec![], duration_ms: 10.0, cached: false },
            DagStageRow { name: "b".into(), parents: vec!["a".into()], duration_ms: 50.0, cached: false },
            DagStageRow { name: "c".into(), parents: vec!["a".into()], duration_ms: 5.0, cached: true },
            DagStageRow {
                name: "d".into(),
                parents: vec!["b".into(), "c".into()],
                duration_ms: 20.0,
                cached: false,
            },
        ];
        let (path, total) = critical_path(&rows);
        assert_eq!(path, vec!["a", "b", "d"]);
        assert!((total - 80.0).abs() < 1e-9);
        let report = dag_report(&rows);
        assert!(report.contains("critical path: a → b → d"));
        assert!(report.contains("hit"), "cached stage marked: {report}");
        assert!(report.contains("run"));
        assert_eq!(dag_report(&[]), "(no stages recorded)\n");
        // A malformed cyclic input terminates.
        let cyc = vec![
            DagStageRow { name: "x".into(), parents: vec!["y".into()], duration_ms: 1.0, cached: false },
            DagStageRow { name: "y".into(), parents: vec!["x".into()], duration_ms: 1.0, cached: false },
        ];
        let (_, t) = critical_path(&cyc);
        assert!(t.is_finite());
    }

    #[test]
    fn duration_stats_quantiles() {
        let durs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = duration_stats(&durs).unwrap();
        assert_eq!(s.n, 100);
        assert_eq!(s.p50_ms, 50.0);
        assert_eq!(s.p95_ms, 95.0);
        assert_eq!(s.max_ms, 100.0);
        assert!((s.skew - 2.0).abs() < 1e-9);
        assert!(duration_stats(&[]).is_none());
    }

    #[test]
    fn straggler_report_renders_groups() {
        let r = straggler_report(&[
            ("map".to_string(), vec![10.0, 12.0, 50.0]),
            ("reduce".to_string(), vec![5.0]),
            ("empty".to_string(), vec![]),
        ]);
        assert!(r.contains("map"));
        assert!(r.contains("reduce"));
        assert!(!r.contains("empty"));
        assert!(r.contains("skew"));
    }

    #[test]
    fn shuffle_fetch_summary_splits_and_degrades() {
        let s = shuffle_fetch_summary(750, 250, 3);
        assert!(s.contains("750 B local"), "{s}");
        assert!(s.contains("250 B remote"), "{s}");
        assert!(s.contains("75.0%"), "{s}");
        assert!(s.contains("3 fetches"), "{s}");
        // All-remote (no affinity) still renders a meaningful split.
        let r = shuffle_fetch_summary(0, 100, 0);
        assert!(r.contains("0.0%"), "{r}");
        // Nothing recorded at all — the placeholder, not a 0/0 percent.
        assert_eq!(
            shuffle_fetch_summary(0, 0, 0),
            "(no shuffle fetch traffic recorded)\n"
        );
    }

    #[test]
    fn shuffle_matrix_totals() {
        let cells = vec![
            ShuffleCell { map_task: 0, reduce_task: 0, bytes: 10, compressed: false },
            ShuffleCell { map_task: 0, reduce_task: 1, bytes: 20, compressed: false },
            ShuffleCell { map_task: 1, reduce_task: 1, bytes: 5, compressed: false },
        ];
        let m = shuffle_matrix(&cells);
        assert!(m.contains("m0"));
        assert!(m.contains("r1"));
        assert!(m.contains("35"), "grand total present: {m}");
        assert!(!m.contains("travelled compressed"), "all-raw matrix needs no legend");
        assert_eq!(shuffle_matrix(&[]), "(no shuffle traffic recorded)\n");
    }

    #[test]
    fn shuffle_matrix_marks_compressed_cells() {
        let cells = vec![
            ShuffleCell { map_task: 0, reduce_task: 0, bytes: 10, compressed: true },
            ShuffleCell { map_task: 0, reduce_task: 1, bytes: 20, compressed: false },
            // Mixed cell: raw + compressed contributions.
            ShuffleCell { map_task: 1, reduce_task: 0, bytes: 4, compressed: true },
            ShuffleCell { map_task: 1, reduce_task: 0, bytes: 6, compressed: false },
        ];
        let m = shuffle_matrix(&cells);
        assert!(m.contains("10c"), "fully compressed cell marked: {m}");
        assert!(m.contains("20 "), "raw cell unmarked: {m}");
        assert!(m.contains("10~"), "mixed cell marked: {m}");
        assert!(m.contains("travelled compressed"), "legend present: {m}");
    }
}
