//! Span-based structured tracing of job → wave → task-attempt → phase
//! lifecycles.
//!
//! A [`Recorder`] is a cheap-to-clone handle shared by every layer of
//! the stack. Spans carry a parent id (forming the lifecycle tree),
//! start/end timestamps in milliseconds since the recorder's epoch,
//! free-form string metadata, and attached metrics (name → u64). Closed
//! spans land in an in-memory event log and, when configured, are
//! appended to a JSONL sink — one JSON object per line, streamable into
//! offline analysis.
//!
//! The disabled recorder ([`Recorder::disabled`]) is a no-op: every
//! call checks one boolean and returns, so instrumented code pays
//! effectively nothing when tracing is off — the property the
//! `telemetry_overhead` test pins down.

use crate::json::Json;
use crate::metrics::MetricsRegistry;
use parking_lot::Mutex;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Identity of one span. `0` is reserved for "no parent".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

impl SpanId {
    pub const NONE: SpanId = SpanId(0);
}

/// What lifecycle a span describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A whole pipeline execution (many rounds).
    Pipeline,
    /// One MapReduce round of a pipeline.
    Round,
    /// One node of a pipeline stage DAG (carries `parents` metadata
    /// naming its upstream stages, and a `cached` flag when the stage's
    /// output was served from the content-addressed store).
    Stage,
    /// One MapReduce job.
    Job,
    /// One scheduling wave (map wave, reduce wave) within a job.
    Wave,
    /// One task attempt within a wave.
    TaskAttempt,
    /// One timed phase (map / sort-spill / … / reduce) within a task.
    Phase,
    /// Anything else (DFS sweeps, external sections).
    Custom,
}

impl SpanKind {
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Pipeline => "pipeline",
            SpanKind::Round => "round",
            SpanKind::Stage => "stage",
            SpanKind::Job => "job",
            SpanKind::Wave => "wave",
            SpanKind::TaskAttempt => "task-attempt",
            SpanKind::Phase => "phase",
            SpanKind::Custom => "custom",
        }
    }
}

/// One closed span.
#[derive(Debug, Clone)]
pub struct Span {
    pub id: SpanId,
    pub parent: SpanId,
    pub kind: SpanKind,
    pub name: String,
    /// Milliseconds since the recorder's epoch.
    pub start_ms: f64,
    pub end_ms: f64,
    /// Free-form string metadata (node, outcome, speculative, …).
    pub meta: Vec<(String, String)>,
    /// Attached metrics (phase nanos, record counts, …).
    pub metrics: Vec<(String, u64)>,
}

impl Span {
    pub fn duration_ms(&self) -> f64 {
        self.end_ms - self.start_ms
    }

    /// The JSONL representation (one line, no trailing newline).
    pub fn to_json(&self) -> Json {
        let mut meta = Json::obj();
        for (k, v) in &self.meta {
            meta = meta.field(k, v.as_str());
        }
        let mut metrics = Json::obj();
        for (k, v) in &self.metrics {
            metrics = metrics.field(k, *v);
        }
        Json::obj()
            .field("id", self.id.0)
            .field("parent", self.parent.0)
            .field("kind", self.kind.name())
            .field("name", self.name.as_str())
            .field("start_ms", self.start_ms)
            .field("end_ms", self.end_ms)
            .field("meta", meta)
            .field("metrics", metrics)
    }
}

/// A still-open span: close it with [`Recorder::end`] (or enrich and
/// close with [`Recorder::end_with`]).
#[derive(Debug, Clone, Copy)]
pub struct OpenSpan {
    pub id: SpanId,
    parent: SpanId,
    kind: SpanKind,
    start_ms: f64,
}

/// One cell of the shuffle matrix: bytes moved from one map task's
/// output to one reduce partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShuffleCell {
    pub map_task: usize,
    pub reduce_task: usize,
    pub bytes: u64,
    /// Did the bytes travel compressed (shipped by reference, decoded
    /// once at the reduce-side merge) or as raw record bytes?
    pub compressed: bool,
}

struct RecorderInner {
    epoch: Instant,
    next_id: AtomicU64,
    spans: Mutex<Vec<Span>>,
    shuffle_cells: Mutex<Vec<ShuffleCell>>,
    registry: MetricsRegistry,
    sink: Option<Mutex<Box<dyn Write + Send>>>,
}

/// The tracing handle. Clones share state; a disabled recorder is inert.
#[derive(Clone)]
pub struct Recorder {
    inner: Option<Arc<RecorderInner>>,
}

impl Default for Recorder {
    fn default() -> Recorder {
        Recorder::disabled()
    }
}

impl Recorder {
    /// An active recorder with an in-memory log only.
    pub fn new() -> Recorder {
        Recorder {
            inner: Some(Arc::new(RecorderInner {
                epoch: Instant::now(),
                next_id: AtomicU64::new(1),
                spans: Mutex::new(Vec::new()),
                shuffle_cells: Mutex::new(Vec::new()),
                registry: MetricsRegistry::new(),
                sink: None,
            })),
        }
    }

    /// The inert recorder: every operation is a no-op.
    pub fn disabled() -> Recorder {
        Recorder { inner: None }
    }

    /// An active recorder that additionally appends every closed span to
    /// `path` as JSON Lines.
    pub fn with_jsonl_sink(path: &std::path::Path) -> std::io::Result<Recorder> {
        let file = std::fs::File::create(path)?;
        Ok(Recorder::with_sink(Box::new(std::io::BufWriter::new(file))))
    }

    /// An active recorder writing JSONL to an arbitrary sink.
    pub fn with_sink(sink: Box<dyn Write + Send>) -> Recorder {
        Recorder {
            inner: Some(Arc::new(RecorderInner {
                epoch: Instant::now(),
                next_id: AtomicU64::new(1),
                spans: Mutex::new(Vec::new()),
                shuffle_cells: Mutex::new(Vec::new()),
                registry: MetricsRegistry::new(),
                sink: Some(Mutex::new(sink)),
            })),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Milliseconds since the recorder's epoch (0.0 when disabled).
    pub fn now_ms(&self) -> f64 {
        match &self.inner {
            Some(i) => i.epoch.elapsed().as_secs_f64() * 1e3,
            None => 0.0,
        }
    }

    /// The metrics registry attached to this recorder (a fresh detached
    /// registry when disabled, so callers need no special-casing).
    pub fn registry(&self) -> MetricsRegistry {
        match &self.inner {
            Some(i) => i.registry.clone(),
            None => MetricsRegistry::new(),
        }
    }

    /// Open a span. Returns an inert handle when disabled.
    pub fn start(&self, kind: SpanKind, name: &str, parent: SpanId) -> OpenSpan {
        let _ = name;
        match &self.inner {
            None => OpenSpan {
                id: SpanId::NONE,
                parent,
                kind,
                start_ms: 0.0,
            },
            Some(i) => OpenSpan {
                id: SpanId(i.next_id.fetch_add(1, Ordering::Relaxed)),
                parent,
                kind,
                start_ms: i.epoch.elapsed().as_secs_f64() * 1e3,
            },
        }
    }

    /// Close a span with no extra payload.
    pub fn end(&self, open: OpenSpan, name: &str) {
        self.end_with(open, name, Vec::new(), Vec::new());
    }

    /// Close a span, attaching metadata and metrics.
    pub fn end_with(
        &self,
        open: OpenSpan,
        name: &str,
        meta: Vec<(String, String)>,
        metrics: Vec<(String, u64)>,
    ) {
        let Some(i) = &self.inner else { return };
        let span = Span {
            id: open.id,
            parent: open.parent,
            kind: open.kind,
            name: name.to_string(),
            start_ms: open.start_ms,
            end_ms: i.epoch.elapsed().as_secs_f64() * 1e3,
            meta,
            metrics,
        };
        self.push(span);
    }

    /// Record a span whose start/end were measured by the caller (the
    /// engine times attempts itself to keep its hot path lock-free).
    pub fn record(&self, span: Span) {
        if self.inner.is_some() {
            self.push(span);
        }
    }

    /// Allocate an id for a caller-assembled span.
    pub fn fresh_id(&self) -> SpanId {
        match &self.inner {
            None => SpanId::NONE,
            Some(i) => SpanId(i.next_id.fetch_add(1, Ordering::Relaxed)),
        }
    }

    fn push(&self, span: Span) {
        let i = self.inner.as_ref().expect("push on disabled recorder");
        if let Some(sink) = &i.sink {
            let mut w = sink.lock();
            let _ = writeln!(w, "{}", span.to_json().render());
        }
        i.spans.lock().push(span);
    }

    /// Record one shuffle-matrix cell (map task → reduce partition),
    /// tagging whether the bytes travelled compressed.
    pub fn shuffle_cell(&self, map_task: usize, reduce_task: usize, bytes: u64, compressed: bool) {
        if let Some(i) = &self.inner {
            i.shuffle_cells.lock().push(ShuffleCell {
                map_task,
                reduce_task,
                bytes,
                compressed,
            });
        }
    }

    /// Snapshot of all closed spans, in completion order.
    pub fn spans(&self) -> Vec<Span> {
        match &self.inner {
            Some(i) => i.spans.lock().clone(),
            None => Vec::new(),
        }
    }

    /// Closed spans of one kind.
    pub fn spans_of_kind(&self, kind: SpanKind) -> Vec<Span> {
        self.spans().into_iter().filter(|s| s.kind == kind).collect()
    }

    /// Snapshot of the shuffle matrix cells recorded so far.
    pub fn shuffle_cells(&self) -> Vec<ShuffleCell> {
        match &self.inner {
            Some(i) => i.shuffle_cells.lock().clone(),
            None => Vec::new(),
        }
    }

    /// Flush the JSONL sink (no-op otherwise).
    pub fn flush(&self) {
        if let Some(i) = &self.inner {
            if let Some(sink) = &i.sink {
                let _ = sink.lock().flush();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_tree_parents_and_kinds() {
        let rec = Recorder::new();
        let job = rec.start(SpanKind::Job, "job", SpanId::NONE);
        let wave = rec.start(SpanKind::Wave, "map-wave", job.id);
        let task = rec.start(SpanKind::TaskAttempt, "map-0.0", wave.id);
        rec.end_with(
            task,
            "map-0.0",
            vec![("node".into(), "1".into())],
            vec![("records".into(), 10)],
        );
        rec.end(wave, "map-wave");
        rec.end(job, "job");
        let spans = rec.spans();
        assert_eq!(spans.len(), 3);
        // Completion order: task, wave, job.
        assert_eq!(spans[0].kind, SpanKind::TaskAttempt);
        assert_eq!(spans[0].parent, spans[1].id);
        assert_eq!(spans[1].parent, spans[2].id);
        assert_eq!(spans[2].parent, SpanId::NONE);
        assert!(spans.iter().all(|s| s.end_ms >= s.start_ms));
        assert_eq!(spans[0].metrics, vec![("records".to_string(), 10)]);
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = Recorder::disabled();
        let s = rec.start(SpanKind::Job, "j", SpanId::NONE);
        rec.end(s, "j");
        rec.shuffle_cell(0, 0, 100, false);
        assert!(rec.spans().is_empty());
        assert!(rec.shuffle_cells().is_empty());
        assert!(!rec.is_enabled());
    }

    #[test]
    fn jsonl_sink_gets_one_valid_line_per_span() {
        use std::sync::{Arc, Mutex as StdMutex};
        #[derive(Clone)]
        struct Buf(Arc<StdMutex<Vec<u8>>>);
        impl Write for Buf {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = Buf(Arc::new(StdMutex::new(Vec::new())));
        let rec = Recorder::with_sink(Box::new(buf.clone()));
        for i in 0..3 {
            let s = rec.start(SpanKind::Phase, "p", SpanId::NONE);
            rec.end_with(s, &format!("phase-{i}"), vec![], vec![("n".into(), i)]);
        }
        rec.flush();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for (i, line) in lines.iter().enumerate() {
            let v = crate::json::Json::parse(line).expect("valid json line");
            assert_eq!(v.get("kind").unwrap().as_str(), Some("phase"));
            assert_eq!(v.get("name").unwrap().as_str(), Some(format!("phase-{i}").as_str()));
        }
    }

    #[test]
    fn shuffle_cells_accumulate() {
        let rec = Recorder::new();
        rec.shuffle_cell(0, 1, 100, true);
        rec.shuffle_cell(2, 1, 50, false);
        assert_eq!(
            rec.shuffle_cells(),
            vec![
                ShuffleCell { map_task: 0, reduce_task: 1, bytes: 100, compressed: true },
                ShuffleCell { map_task: 2, reduce_task: 1, bytes: 50, compressed: false },
            ]
        );
    }
}
