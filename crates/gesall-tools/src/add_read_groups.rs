//! AddOrReplaceReadGroups (paper Table 2, step 3): stamp every record
//! with a read-group id and register the group in the header.

use gesall_formats::sam::header::ReadGroup;
use gesall_formats::sam::{SamHeader, SamRecord};

/// Set `read_group` on every record and ensure the header lists it.
/// Returns the number of records whose group was *replaced* (non-empty
/// before).
pub fn add_or_replace_read_groups(
    header: &mut SamHeader,
    records: &mut [SamRecord],
    group: &ReadGroup,
) -> usize {
    if !header.read_groups.iter().any(|g| g.id == group.id) {
        header.read_groups.push(group.clone());
    }
    let mut replaced = 0;
    for r in records.iter_mut() {
        if !r.read_group.is_empty() && r.read_group != group.id {
            replaced += 1;
        }
        r.read_group = group.id.clone();
    }
    if !header.programs.iter().any(|p| p == "AddOrReplaceReadGroups") {
        header.programs.push("AddOrReplaceReadGroups".into());
    }
    replaced
}

#[cfg(test)]
mod tests {
    use super::*;
    use gesall_formats::sam::header::ReferenceSeq;

    fn setup() -> (SamHeader, Vec<SamRecord>) {
        let header = SamHeader::new(vec![ReferenceSeq {
            name: "chr1".into(),
            len: 1000,
        }]);
        let records = vec![
            SamRecord::unmapped("a", b"AC".to_vec(), vec![30; 2]),
            SamRecord::unmapped("b", b"GT".to_vec(), vec![30; 2]),
        ];
        (header, records)
    }

    #[test]
    fn stamps_all_records_and_header() {
        let (mut h, mut recs) = setup();
        let rg = ReadGroup::new("rg1", "sampleX");
        let replaced = add_or_replace_read_groups(&mut h, &mut recs, &rg);
        assert_eq!(replaced, 0);
        assert!(recs.iter().all(|r| r.read_group == "rg1"));
        assert_eq!(h.read_groups.len(), 1);
        assert_eq!(h.read_groups[0].sample, "sampleX");
        assert!(h.programs.contains(&"AddOrReplaceReadGroups".to_string()));
    }

    #[test]
    fn replacement_is_counted_and_idempotent() {
        let (mut h, mut recs) = setup();
        recs[0].read_group = "old".into();
        let rg = ReadGroup::new("rg1", "s");
        assert_eq!(add_or_replace_read_groups(&mut h, &mut recs, &rg), 1);
        // Second run: nothing to replace, header not duplicated.
        assert_eq!(add_or_replace_read_groups(&mut h, &mut recs, &rg), 0);
        assert_eq!(h.read_groups.len(), 1);
        assert_eq!(
            h.programs
                .iter()
                .filter(|p| *p == "AddOrReplaceReadGroups")
                .count(),
            1
        );
    }
}
