//! CleanSam (paper Table 2, step 4): fix CIGAR and mapping-quality
//! fields, and drop reads whose alignment is irreparably inconsistent
//! (e.g. spanning past a chromosome end or "overlapping two
//! chromosomes" in the paper's wording).

use crate::refview::RefView;
use gesall_formats::sam::cigar::{Cigar, CigarOp};
use gesall_formats::sam::SamRecord;

/// What CleanSam did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CleanStats {
    pub records_in: usize,
    /// Alignments whose reference overhang was converted to soft clip.
    pub cigars_fixed: usize,
    /// Unmapped reads whose mapq was reset to 0.
    pub mapq_fixed: usize,
    /// Records dropped as unsalvageable.
    pub dropped: usize,
}

/// Clean a record set in place (dropping bad records). Mirrors Picard's
/// CleanSam plus the chromosome-overlap removal the paper mentions.
pub fn clean_sam(records: &mut Vec<SamRecord>, reference: RefView<'_>) -> CleanStats {
    let mut stats = CleanStats {
        records_in: records.len(),
        ..CleanStats::default()
    };
    records.retain_mut(|rec| {
        if !rec.is_mapped() {
            // Unmapped reads must carry mapq 0 and no CIGAR.
            if rec.mapq != 0 {
                rec.mapq = 0;
                stats.mapq_fixed += 1;
            }
            if !rec.cigar.is_unmapped() {
                rec.cigar = Cigar::unmapped();
                stats.cigars_fixed += 1;
            }
            return true;
        }
        let chrom_len = reference.chrom_len(rec.ref_id) as i64;
        if chrom_len == 0 || rec.pos > chrom_len {
            // Mapped beyond any reference sequence: unsalvageable.
            stats.dropped += 1;
            return false;
        }
        if rec.end_pos() > chrom_len {
            // Convert the overhanging reference span into a trailing soft
            // clip (Picard's CIGAR fix).
            match clip_overhang(&rec.cigar, rec.pos, chrom_len) {
                Some(fixed) => {
                    rec.cigar = fixed;
                    stats.cigars_fixed += 1;
                }
                None => {
                    stats.dropped += 1;
                    return false;
                }
            }
        }
        true
    });
    stats
}

/// Rewrite `cigar` so the alignment's reference span ends at `chrom_len`,
/// turning the cut query bases into a trailing soft clip. Returns `None`
/// when nothing would remain aligned.
fn clip_overhang(cigar: &Cigar, pos: i64, chrom_len: i64) -> Option<Cigar> {
    let budget = chrom_len - pos + 1; // reference bases available
    if budget <= 0 {
        return None;
    }
    let mut remaining = budget as u32;
    let mut ops: Vec<CigarOp> = Vec::new();
    let mut clipped_query: u32 = 0;
    let mut cutting = false;
    for op in &cigar.0 {
        if cutting {
            if op.consumes_query() {
                clipped_query += op.len();
            }
            continue;
        }
        match *op {
            CigarOp::Match(n) => {
                if n <= remaining {
                    remaining -= n;
                    ops.push(CigarOp::Match(n));
                } else {
                    if remaining > 0 {
                        ops.push(CigarOp::Match(remaining));
                    }
                    clipped_query += n - remaining;
                    remaining = 0;
                    cutting = true;
                }
            }
            CigarOp::Del(n) | CigarOp::Skip(n) => {
                if n <= remaining {
                    remaining -= n;
                    ops.push(*op);
                } else {
                    remaining = 0;
                    cutting = true;
                }
            }
            CigarOp::Ins(_) | CigarOp::SoftClip(_) | CigarOp::HardClip(_) => {
                ops.push(*op);
            }
        }
        if remaining == 0 && !cutting {
            cutting = true;
        }
    }
    // Drop trailing deletions exposed by the cut.
    while matches!(ops.last(), Some(CigarOp::Del(_) | CigarOp::Skip(_))) {
        ops.pop();
    }
    if clipped_query > 0 {
        // Merge with an existing trailing soft clip if the cut landed
        // right before one.
        if let Some(CigarOp::SoftClip(s)) = ops.last_mut() {
            *s += clipped_query;
        } else {
            ops.push(CigarOp::SoftClip(clipped_query));
        }
    }
    let fixed = Cigar(ops);
    if fixed.0.iter().any(|op| matches!(op, CigarOp::Match(_))) {
        Some(fixed)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gesall_formats::sam::Flags;

    fn mapped(pos: i64, cigar: &str) -> SamRecord {
        let cigar = Cigar::parse(cigar).unwrap();
        let qlen = cigar.query_len() as usize;
        let mut r = SamRecord::unmapped("r", vec![b'A'; qlen], vec![30; qlen]);
        r.flags = Flags(0);
        r.ref_id = 0;
        r.pos = pos;
        r.mapq = 60;
        r.cigar = cigar;
        r
    }

    fn refv(seqs: &[Vec<u8>]) -> RefView<'_> {
        RefView::new(seqs)
    }

    #[test]
    fn clean_record_untouched() {
        let seqs = vec![vec![b'A'; 1000]];
        let mut recs = vec![mapped(100, "50M")];
        let stats = clean_sam(&mut recs, refv(&seqs));
        assert_eq!(stats.cigars_fixed, 0);
        assert_eq!(stats.dropped, 0);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].cigar.to_string(), "50M");
    }

    #[test]
    fn overhang_becomes_soft_clip() {
        let seqs = vec![vec![b'A'; 120]];
        // 50M at pos 100 would span to 149 — 30 bases overhang.
        let mut recs = vec![mapped(100, "50M")];
        let stats = clean_sam(&mut recs, refv(&seqs));
        assert_eq!(stats.cigars_fixed, 1);
        assert_eq!(recs[0].cigar.to_string(), "21M29S");
        assert_eq!(recs[0].end_pos(), 120);
        recs[0].validate().unwrap();
    }

    #[test]
    fn overhang_merges_with_existing_clip() {
        let seqs = vec![vec![b'A'; 110]];
        let mut recs = vec![mapped(100, "20M5S")];
        clean_sam(&mut recs, refv(&seqs));
        assert_eq!(recs[0].cigar.to_string(), "11M14S");
        assert_eq!(recs[0].cigar.query_len(), 25);
    }

    #[test]
    fn fully_overhanging_read_dropped() {
        let seqs = vec![vec![b'A'; 100]];
        let mut recs = vec![mapped(150, "20M")];
        let stats = clean_sam(&mut recs, refv(&seqs));
        assert_eq!(stats.dropped, 1);
        assert!(recs.is_empty());
    }

    #[test]
    fn read_on_unknown_chromosome_dropped() {
        let seqs = vec![vec![b'A'; 100]];
        let mut r = mapped(10, "5M");
        r.ref_id = 7;
        let mut recs = vec![r];
        let stats = clean_sam(&mut recs, refv(&seqs));
        assert_eq!(stats.dropped, 1);
    }

    #[test]
    fn unmapped_read_normalized() {
        let seqs = vec![vec![b'A'; 100]];
        let mut r = SamRecord::unmapped("u", b"ACGT".to_vec(), vec![2; 4]);
        r.mapq = 37; // bogus
        r.cigar = Cigar::parse("4M").unwrap(); // bogus
        let mut recs = vec![r];
        let stats = clean_sam(&mut recs, refv(&seqs));
        assert_eq!(stats.mapq_fixed, 1);
        assert_eq!(stats.cigars_fixed, 1);
        assert_eq!(recs[0].mapq, 0);
        assert!(recs[0].cigar.is_unmapped());
    }

    #[test]
    fn deletion_at_cut_point_trimmed() {
        let seqs = vec![vec![b'A'; 105]];
        // 10M5D10M at pos 95: M spans 95..104, D spans 105..109 overhangs.
        let mut recs = vec![mapped(95, "10M5D10M")];
        clean_sam(&mut recs, refv(&seqs));
        let t = recs[0].cigar.to_string();
        assert!(
            !t.contains('D'),
            "trailing deletion must not survive the cut: {t}"
        );
        assert!(recs[0].end_pos() <= 105);
        recs[0].validate().unwrap();
        assert_eq!(recs[0].cigar.query_len(), 20);
    }
}
