//! FixMateInformation (paper Table 2, step 5): make the mate fields of
//! the two reads of a pair consistent — needed because alignment and
//! cleaning steps can leave `PNEXT`/`RNEXT`/`TLEN`/mate flags stale.
//!
//! The program's data-access requirement is the paper's canonical
//! example of **group partitioning by read name** (§3.2): both reads of
//! a pair must be in the same partition.

use gesall_formats::sam::cigar::Cigar;
use gesall_formats::sam::{Flags, SamRecord};
use std::collections::HashMap;

/// Outcome counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FixMateStats {
    pub pairs_fixed: usize,
    /// Reads whose mate was absent from the input (violates the grouping
    /// contract; left untouched).
    pub widowed: usize,
}

/// Synchronize mate information between the primary records of each
/// pair. Input records may be in any order but must contain both reads
/// of every pair (the logical-partitioning contract).
pub fn fix_mate_information(records: &mut [SamRecord]) -> FixMateStats {
    let mut stats = FixMateStats::default();
    // Index primary records by name.
    let mut by_name: HashMap<String, Vec<usize>> = HashMap::new();
    for (i, r) in records.iter().enumerate() {
        if r.flags.is_paired() && r.flags.is_primary() {
            by_name.entry(r.name.clone()).or_default().push(i);
        }
    }
    for (_, idxs) in by_name {
        if idxs.len() != 2 {
            stats.widowed += idxs.len();
            continue;
        }
        let (i, j) = (idxs[0], idxs[1]);
        // Split the borrow.
        let (a, b) = if i < j {
            let (lo, hi) = records.split_at_mut(j);
            (&mut lo[i], &mut hi[0])
        } else {
            let (lo, hi) = records.split_at_mut(i);
            (&mut hi[0], &mut lo[j])
        };
        sync_pair(a, b);
        stats.pairs_fixed += 1;
    }
    stats
}

/// Recompute every mate-dependent field of a pair from the records
/// themselves.
pub fn sync_pair(a: &mut SamRecord, b: &mut SamRecord) {
    a.flags.set(Flags::MATE_UNMAPPED, !b.is_mapped());
    b.flags.set(Flags::MATE_UNMAPPED, !a.is_mapped());
    a.flags.set(Flags::MATE_REVERSE, b.flags.is_reverse());
    b.flags.set(Flags::MATE_REVERSE, a.flags.is_reverse());

    match (a.is_mapped(), b.is_mapped()) {
        (true, true) => {
            a.mate_ref_id = b.ref_id;
            a.mate_pos = b.pos;
            b.mate_ref_id = a.ref_id;
            b.mate_pos = a.pos;
            if a.ref_id == b.ref_id {
                let left = a.pos.min(b.pos);
                let right = a.end_pos().max(b.end_pos());
                let frag = right - left + 1;
                if a.pos <= b.pos {
                    a.tlen = frag;
                    b.tlen = -frag;
                } else {
                    b.tlen = frag;
                    a.tlen = -frag;
                }
            } else {
                a.tlen = 0;
                b.tlen = 0;
                // Cross-chromosome pairs are never proper.
                a.flags.set(Flags::PROPER_PAIR, false);
                b.flags.set(Flags::PROPER_PAIR, false);
            }
        }
        (true, false) => place_unmapped_at_mate(b, a),
        (false, true) => place_unmapped_at_mate(a, b),
        (false, false) => {
            for r in [a, b] {
                r.mate_ref_id = gesall_formats::sam::record::NO_REF;
                r.mate_pos = 0;
                r.tlen = 0;
                r.flags.set(Flags::PROPER_PAIR, false);
            }
        }
    }
}

fn place_unmapped_at_mate(unmapped: &mut SamRecord, mapped: &mut SamRecord) {
    unmapped.ref_id = mapped.ref_id;
    unmapped.pos = mapped.pos;
    unmapped.cigar = Cigar::unmapped();
    unmapped.mapq = 0;
    unmapped.mate_ref_id = mapped.ref_id;
    unmapped.mate_pos = mapped.pos;
    unmapped.tlen = 0;
    mapped.mate_ref_id = mapped.ref_id;
    mapped.mate_pos = mapped.pos;
    mapped.tlen = 0;
    unmapped.flags.set(Flags::PROPER_PAIR, false);
    mapped.flags.set(Flags::PROPER_PAIR, false);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mapped(name: &str, ref_id: i32, pos: i64, len: u32, reverse: bool) -> SamRecord {
        let mut r = SamRecord::unmapped(name, vec![b'A'; len as usize], vec![30; len as usize]);
        r.flags = Flags(Flags::PAIRED);
        r.flags.set(Flags::REVERSE, reverse);
        r.ref_id = ref_id;
        r.pos = pos;
        r.mapq = 60;
        r.cigar = Cigar::full_match(len);
        r
    }

    #[test]
    fn stale_fields_are_repaired() {
        let mut a = mapped("p", 0, 100, 100, false);
        let mut b = mapped("p", 0, 400, 100, true);
        // Stale garbage.
        a.mate_pos = 77;
        a.tlen = -1;
        b.mate_ref_id = 5;
        let mut recs = vec![a, b];
        let stats = fix_mate_information(&mut recs);
        assert_eq!(stats.pairs_fixed, 1);
        assert_eq!(recs[0].mate_pos, 400);
        assert_eq!(recs[1].mate_pos, 100);
        assert_eq!(recs[0].tlen, 400);
        assert_eq!(recs[1].tlen, -400);
        assert!(recs[0].flags.is_mate_reverse());
        assert!(!recs[1].flags.is_mate_reverse());
    }

    #[test]
    fn order_in_input_does_not_matter() {
        let a = mapped("p", 0, 400, 50, true);
        let b = mapped("p", 0, 100, 50, false);
        let mut recs = vec![a, b];
        fix_mate_information(&mut recs);
        // Leftmost (pos 100) gets positive tlen: 449 - 100 + 1.
        assert_eq!(recs[1].tlen, 350);
        assert_eq!(recs[0].tlen, -350);
    }

    #[test]
    fn unmapped_mate_placed() {
        let a = mapped("p", 0, 250, 100, false);
        let mut b = SamRecord::unmapped("p", vec![b'C'; 100], vec![20; 100]);
        b.flags.set(Flags::PAIRED, true);
        b.mapq = 9; // stale
        let mut recs = vec![a, b];
        fix_mate_information(&mut recs);
        assert_eq!(recs[1].pos, 250);
        assert_eq!(recs[1].ref_id, 0);
        assert_eq!(recs[1].mapq, 0);
        assert!(recs[0].flags.is_mate_unmapped());
        assert!(!recs[1].flags.is_mate_unmapped());
    }

    #[test]
    fn cross_chromosome_pair_not_proper() {
        let mut a = mapped("p", 0, 100, 50, false);
        let mut b = mapped("p", 1, 900, 50, true);
        a.flags.set(Flags::PROPER_PAIR, true);
        b.flags.set(Flags::PROPER_PAIR, true);
        let mut recs = vec![a, b];
        fix_mate_information(&mut recs);
        assert!(!recs[0].flags.is_proper_pair());
        assert_eq!(recs[0].tlen, 0);
        assert_eq!(recs[0].mate_ref_id, 1);
    }

    #[test]
    fn widowed_reads_counted_and_untouched() {
        let mut a = mapped("alone", 0, 100, 50, false);
        a.mate_pos = 123; // stale but cannot be fixed without the mate
        let mut recs = vec![a];
        let stats = fix_mate_information(&mut recs);
        assert_eq!(stats.widowed, 1);
        assert_eq!(stats.pairs_fixed, 0);
        assert_eq!(recs[0].mate_pos, 123);
    }

    #[test]
    fn secondary_records_ignored() {
        let a = mapped("p", 0, 100, 50, false);
        let b = mapped("p", 0, 300, 50, true);
        let mut sec = mapped("p", 1, 999, 50, false);
        sec.flags.set(Flags::SECONDARY, true);
        let mut recs = vec![a, sec, b];
        let stats = fix_mate_information(&mut recs);
        assert_eq!(stats.pairs_fixed, 1);
        // Secondary untouched.
        assert_eq!(recs[1].pos, 999);
        assert_eq!(recs[0].mate_pos, 300);
    }
}
