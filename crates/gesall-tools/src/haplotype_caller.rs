//! HaplotypeCaller (paper Table 2, step v2): small-variant calling via
//! **greedy sequential segmentation** of the genome into active windows.
//!
//! The caller walks every position of a chromosome in order, computing an
//! *activity* statistic from the reads overlapping it (mismatches,
//! indels, clip boundaries); it greedily opens an *active window* when
//! activity rises, extends it, and closes it subject to minimum/maximum
//! window-length constraints; variants are detected only **inside**
//! windows. This is exactly the data-access pattern the paper says
//! prevents naive positional partitioning (§3.2): a window's boundaries
//! depend on the sequential walk, so cutting the genome mid-walk can
//! shift windows and flip borderline calls.

use crate::pileup::Pileup;
use crate::refview::RefView;
use crate::unified_genotyper::{call_region, GenotyperConfig};
use gesall_formats::sam::SamRecord;
use gesall_formats::vcf::VariantRecord;

/// Active-window segmentation parameters.
#[derive(Debug, Clone)]
pub struct HaplotypeCallerConfig {
    /// Activity level that opens a window.
    pub activity_on: f64,
    /// A window closes after this many consecutive quiet positions.
    pub quiet_gap: i64,
    /// Minimum window length (short bursts are padded to this).
    pub min_window: i64,
    /// Maximum window length (longer activity is force-split — the
    /// constraint the paper calls out).
    pub max_window: i64,
    /// Padding added around the active core.
    pub pad: i64,
    /// Pileup/genotyping parameters used inside windows.
    pub genotyper: GenotyperConfig,
    /// Chromosome is walked in tiles of this size (memory bound); the
    /// walk state carries across tiles so segmentation stays sequential.
    pub tile: usize,
}

impl Default for HaplotypeCallerConfig {
    fn default() -> HaplotypeCallerConfig {
        HaplotypeCallerConfig {
            activity_on: 0.12,
            quiet_gap: 20,
            min_window: 40,
            max_window: 300,
            pad: 10,
            genotyper: GenotyperConfig::default(),
            tile: 1 << 16,
        }
    }
}

/// One active window on a chromosome (1-based inclusive bounds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActiveWindow {
    pub start: i64,
    pub end: i64,
}

impl ActiveWindow {
    pub fn len(&self) -> i64 {
        self.end - self.start + 1
    }

    pub fn is_empty(&self) -> bool {
        self.end < self.start
    }
}

/// The sequential greedy segmentation over a stream of per-position
/// activity values.
struct WindowWalker {
    cfg_on: f64,
    quiet_gap: i64,
    min_window: i64,
    max_window: i64,
    pad: i64,
    open_start: Option<i64>,
    last_active: i64,
    windows: Vec<ActiveWindow>,
}

impl WindowWalker {
    fn new(cfg: &HaplotypeCallerConfig) -> WindowWalker {
        WindowWalker {
            cfg_on: cfg.activity_on,
            quiet_gap: cfg.quiet_gap,
            min_window: cfg.min_window,
            max_window: cfg.max_window,
            pad: cfg.pad,
            open_start: None,
            last_active: 0,
            windows: Vec::new(),
        }
    }

    fn step(&mut self, pos: i64, activity: f64) {
        let active = activity >= self.cfg_on;
        match self.open_start {
            None => {
                if active {
                    self.open_start = Some(pos);
                    self.last_active = pos;
                }
            }
            Some(start) => {
                if active {
                    self.last_active = pos;
                }
                let too_long = pos - start + 1 >= self.max_window;
                let quiet_long_enough = pos - self.last_active >= self.quiet_gap;
                if too_long || quiet_long_enough {
                    self.close(start);
                    // Forced split while still active: reopen immediately
                    // so a long active region becomes adjacent windows.
                    if too_long && active {
                        self.open_start = Some(pos + 1);
                        self.last_active = pos;
                    }
                }
            }
        }
    }

    fn close(&mut self, start: i64) {
        let mut s = start - self.pad;
        let mut e = self.last_active + self.pad;
        if e - s + 1 < self.min_window {
            let deficit = self.min_window - (e - s + 1);
            s -= deficit / 2;
            e += deficit - deficit / 2;
        }
        self.windows.push(ActiveWindow {
            start: s.max(1),
            end: e,
        });
        self.open_start = None;
    }

    fn finish(&mut self) {
        if let Some(start) = self.open_start {
            self.close(start);
        }
    }
}

/// Per-position activity from a pileup column: the fraction of evidence
/// that disagrees with the reference.
fn activity(col: &crate::pileup::PileupColumn) -> f64 {
    let depth = col.depth.max(1) as f64;
    let indel_obs: u32 = col.indels.iter().map(|(_, c)| *c).sum();
    (col.mismatches as f64 + 2.0 * indel_obs as f64 + 0.5 * col.clips as f64) / depth
}

/// Result of a HaplotypeCaller run over one chromosome.
#[derive(Debug, Clone)]
pub struct HaplotypeCallerResult {
    pub variants: Vec<VariantRecord>,
    pub windows: Vec<ActiveWindow>,
}

/// Run the caller over `[start, end]` of one chromosome. `records` must
/// be coordinate-sorted reads of that chromosome (others are ignored).
///
/// Running over sub-ranges of a chromosome is exactly the fine-grained
/// partitioning the paper analyzes: windows near the cut differ from the
/// full-chromosome walk.
pub fn call_range(
    records: &[SamRecord],
    ref_id: i32,
    chrom: &str,
    start: i64,
    end: i64,
    reference: RefView<'_>,
    cfg: &HaplotypeCallerConfig,
) -> HaplotypeCallerResult {
    assert!(start >= 1 && end >= start, "bad range");
    // Phase 1: sequential walk computing activity and segmentation.
    let mut walker = WindowWalker::new(cfg);
    let mut tile_start = start;
    while tile_start <= end {
        let tile_end = (tile_start + cfg.tile as i64 - 1).min(end);
        let mut pileup = Pileup::build(records, ref_id, tile_start, tile_end, &cfg.genotyper.pileup);
        let ref_slice = reference.slice(ref_id, tile_start, tile_end);
        if ref_slice.len() == pileup.columns.len() {
            pileup.annotate_mismatches(ref_slice);
        }
        for (off, col) in pileup.columns.iter().enumerate() {
            if col.depth == 0 && col.indels.is_empty() && col.clips == 0 {
                walker.step(tile_start + off as i64, 0.0);
            } else {
                walker.step(tile_start + off as i64, activity(col));
            }
        }
        tile_start = tile_end + 1;
    }
    walker.finish();
    let windows = std::mem::take(&mut walker.windows);

    // Phase 2: genotype inside each window only.
    let mut variants = Vec::new();
    for w in &windows {
        let w_end = w.end.min(reference.chrom_len(ref_id) as i64).min(end + cfg.pad);
        let w_start = w.start.max(1);
        if w_end < w_start {
            continue;
        }
        let calls = call_region(
            records,
            ref_id,
            chrom,
            w_start,
            w_end,
            reference,
            &cfg.genotyper,
        );
        variants.extend(calls);
    }
    // Adjacent windows can overlap after padding; dedup by site.
    variants.sort_by_key(|v| (v.pos, v.ref_allele.clone(), v.alt_allele.clone()));
    variants.dedup_by(|a, b| a.site_key() == b.site_key());
    HaplotypeCallerResult { variants, windows }
}

/// Run the caller over a whole chromosome.
pub fn call_chromosome(
    records: &[SamRecord],
    ref_id: i32,
    chrom: &str,
    reference: RefView<'_>,
    cfg: &HaplotypeCallerConfig,
) -> HaplotypeCallerResult {
    let len = reference.chrom_len(ref_id) as i64;
    if len == 0 {
        return HaplotypeCallerResult {
            variants: Vec::new(),
            windows: Vec::new(),
        };
    }
    call_range(records, ref_id, chrom, 1, len, reference, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gesall_formats::sam::{Cigar, Flags};
    use gesall_formats::vcf::Genotype;

    fn read(name: &str, pos: i64, seq: &[u8]) -> SamRecord {
        let mut r = SamRecord::unmapped(name, seq.to_vec(), vec![35; seq.len()]);
        r.flags = Flags(0);
        r.ref_id = 0;
        r.pos = pos;
        r.mapq = 60;
        r.cigar = Cigar::full_match(seq.len() as u32);
        r
    }

    fn reference(n: usize) -> Vec<Vec<u8>> {
        vec![(0..n).map(|i| b"ACGT"[(i * 7 + i / 9) % 4]).collect()]
    }

    #[test]
    fn window_walker_segments_bursts() {
        let cfg = HaplotypeCallerConfig::default();
        let mut w = WindowWalker::new(&cfg);
        for pos in 1..=1000 {
            let a = if (200..=230).contains(&pos) || (600..=640).contains(&pos) {
                0.5
            } else {
                0.0
            };
            w.step(pos, a);
        }
        w.finish();
        assert_eq!(w.windows.len(), 2, "windows: {:?}", w.windows);
        let w0 = w.windows[0];
        assert!(w0.start <= 200 && w0.end >= 230);
        assert!(w0.len() >= cfg.min_window);
    }

    #[test]
    fn long_activity_is_force_split() {
        let cfg = HaplotypeCallerConfig::default();
        let mut w = WindowWalker::new(&cfg);
        for pos in 1..=2000 {
            w.step(pos, if (100..=1500).contains(&pos) { 0.9 } else { 0.0 });
        }
        w.finish();
        assert!(
            w.windows.len() >= 4,
            "1400 active bases must split at max_window=300: {:?}",
            w.windows
        );
        for win in &w.windows {
            assert!(win.len() <= cfg.max_window + 2 * cfg.pad + 2);
        }
    }

    #[test]
    fn trailing_open_window_closed_at_finish() {
        let cfg = HaplotypeCallerConfig::default();
        let mut w = WindowWalker::new(&cfg);
        for pos in 1..=100 {
            w.step(pos, if pos > 90 { 1.0 } else { 0.0 });
        }
        w.finish();
        assert_eq!(w.windows.len(), 1);
    }

    #[test]
    fn calls_variant_inside_window_only() {
        let seqs = reference(2000);
        let rv = RefView::new(&seqs);
        // 12 reads carrying a hom SNP at position 501.
        let mut reads = Vec::new();
        for k in 0..12 {
            let mut s = seqs[0][480..560].to_vec();
            s[20] = match s[20] {
                b'A' => b'T',
                _ => b'A',
            };
            reads.push(read(&format!("v{k}"), 481, &s));
        }
        // Plenty of clean coverage elsewhere.
        for k in 0..12 {
            reads.push(read(&format!("c{k}"), 1001, &seqs[0][1000..1080]));
        }
        let res = call_chromosome(&reads, 0, "chr1", rv, &HaplotypeCallerConfig::default());
        assert_eq!(res.variants.len(), 1, "{:?}", res.variants);
        assert_eq!(res.variants[0].pos, 501);
        assert_eq!(res.variants[0].genotype, Genotype::HomAlt);
        // Exactly one active window, around the SNP.
        assert_eq!(res.windows.len(), 1);
        let w = res.windows[0];
        assert!(w.start <= 501 && 501 <= w.end, "window {w:?}");
    }

    #[test]
    fn clean_coverage_produces_no_windows() {
        let seqs = reference(1000);
        let rv = RefView::new(&seqs);
        let reads: Vec<SamRecord> = (0..20)
            .map(|k| read(&format!("c{k}"), 101 + (k as i64 % 5) * 37, &seqs[0][100..180]))
            .collect();
        // Adjust: reads must match reference at their positions.
        let reads: Vec<SamRecord> = reads
            .into_iter()
            .map(|mut r| {
                let s = seqs[0][(r.pos - 1) as usize..(r.pos - 1) as usize + 80].to_vec();
                r.seq = s;
                r
            })
            .collect();
        let res = call_chromosome(&reads, 0, "chr1", rv, &HaplotypeCallerConfig::default());
        assert!(res.windows.is_empty(), "windows: {:?}", res.windows);
        assert!(res.variants.is_empty());
    }

    #[test]
    fn range_partitioning_can_shift_boundary_windows() {
        // The paper's point: a positional cut mid-activity changes the
        // segmentation relative to the sequential whole-chromosome walk.
        let seqs = reference(4000);
        let rv = RefView::new(&seqs);
        let mut reads = Vec::new();
        // An active stretch straddling position 2000 (noisy bases 1960..2040).
        for k in 0..10 {
            let start = 1940 + k * 8;
            let mut s = seqs[0][start..start + 100].to_vec();
            for j in (10..90).step_by(9) {
                s[j] = match s[j] {
                    b'A' => b'C',
                    b'C' => b'G',
                    b'G' => b'T',
                    _ => b'A',
                };
            }
            reads.push(read(&format!("n{k}"), start as i64 + 1, &s));
        }
        let cfg = HaplotypeCallerConfig::default();
        let whole = call_range(&reads, 0, "chr1", 1, 4000, rv, &cfg);
        let left = call_range(&reads, 0, "chr1", 1, 2000, rv, &cfg);
        let right = call_range(&reads, 0, "chr1", 2001, 4000, rv, &cfg);
        let whole_windows = whole.windows.len();
        let split_windows = left.windows.len() + right.windows.len();
        // The cut lands inside the active region: the split run must see
        // a different segmentation (usually one extra window).
        assert!(whole_windows >= 1);
        assert!(
            split_windows != whole_windows
                || left.windows.last().map(|w| w.end) != whole.windows.first().map(|w| w.end),
            "expected boundary effects: whole={:?} left={:?} right={:?}",
            whole.windows,
            left.windows,
            right.windows
        );
    }
}
