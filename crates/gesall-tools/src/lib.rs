//! # gesall-tools
//!
//! Serial reference implementations of the genome-analysis programs in
//! the paper's pipeline (Table 2). These are the "existing single-node
//! programs" that Gesall's wrapper technology runs unmodified over
//! logical partitions; they are also the gold-standard serial baseline
//! that the parallel pipeline is diffed against (Table 8).
//!
//! | Paper step | Module |
//! |---|---|
//! | 3. Add Replace Groups     | [`add_read_groups`] |
//! | 4. Clean Sam              | [`clean_sam`] |
//! | 5. Fix Mate Info          | [`fix_mate`] |
//! | 6. Mark Duplicates        | [`mark_duplicates`] |
//! | 7. Sort Sam               | [`sort_sam`] |
//! | 11–12. Base Recalibrator / Print Reads | [`recalibration`] |
//! | v1. Unified Genotyper     | [`unified_genotyper`] |
//! | v2. Haplotype Caller      | [`haplotype_caller`] |
//!
//! Plus the shared [`pileup`] substrate, a [`refview`] over reference
//! sequences, and [`vcf_metrics`] implementing the quality metrics of the
//! paper's Tables 9/10 (MQ, DP, FS, AB, Ti/Tv, Het/Hom, precision/
//! sensitivity against a truth set).

pub mod add_read_groups;
pub mod clean_sam;
pub mod fix_mate;
pub mod haplotype_caller;
pub mod mark_duplicates;
pub mod pileup;
pub mod recalibration;
pub mod refview;
pub mod sort_sam;
pub mod sv_caller;
pub mod unified_genotyper;
pub mod vcf_metrics;

pub use refview::RefView;
