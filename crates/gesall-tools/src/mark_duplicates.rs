//! MarkDuplicates (paper Table 2, step 6) — serial reference
//! implementation of the PicardTools algorithm described in §3.2.
//!
//! Duplicates are read pairs mapped to exactly the same fragment
//! endpoints, keyed by the derived **5′ unclipped end** of each read:
//!
//! * **Criterion 1** (complete matching pairs — both reads mapped): pairs
//!   sharing the compound key (both 5′ unclipped ends + strands) are
//!   duplicates of each other; the pair with the highest base-quality sum
//!   is kept, the rest are flagged. Equal-quality ties are broken
//!   *randomly* — the nondeterminism the paper observes in Table 8.
//! * **Criterion 2** (partial matchings — one read unmapped): the mapped
//!   read competes on its single 5′ end. If any complete-pair read covers
//!   the same end, *all* partials there are duplicates; otherwise the
//!   best partial survives.

use gesall_formats::sam::{Flags, SamRecord};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// A read's duplicate-relevant endpoint: (ref id, 5′ unclipped end,
/// strand).
pub type EndKey = (i32, i64, u8);

/// The compound key of a complete matching pair: both end keys, in
/// canonical (sorted) order so pair orientation does not matter.
pub type PairKey = (EndKey, EndKey);

/// Endpoint key of one mapped read.
pub fn end_key(rec: &SamRecord) -> EndKey {
    (rec.ref_id, rec.unclipped_5p_end(), rec.strand())
}

/// Compound key of a complete pair.
pub fn pair_key(a: &SamRecord, b: &SamRecord) -> PairKey {
    let (ka, kb) = (end_key(a), end_key(b));
    if ka <= kb {
        (ka, kb)
    } else {
        (kb, ka)
    }
}

/// Outcome counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MarkDupStats {
    pub complete_pairs: usize,
    pub partial_pairs: usize,
    pub duplicate_pairs_marked: usize,
    pub duplicate_reads_marked: usize,
    /// Equal-quality groups resolved by the RNG.
    pub ties_broken: usize,
}

/// Mark duplicates in place. Records may arrive in any order but must
/// contain both primary reads of every pair (the compound-group
/// partitioning contract of §3.2). `seed` drives the equal-quality
/// tie-breaks.
pub fn mark_duplicates(records: &mut [SamRecord], seed: u64) -> MarkDupStats {
    let mut stats = MarkDupStats::default();
    let mut rng = StdRng::seed_from_u64(seed);

    // Pair up primary records by name, forming pairs in input order so
    // tie-break outcomes are deterministic given the seed.
    let mut first_seen: HashMap<&str, usize> = HashMap::new();
    let mut complete: BTreeMap<PairKey, Vec<(usize, usize)>> = BTreeMap::new();
    let mut partial: BTreeMap<EndKey, Vec<usize>> = BTreeMap::new();
    for (j, r) in records.iter().enumerate() {
        if !r.flags.is_paired() || !r.flags.is_primary() {
            continue;
        }
        let Some(i) = first_seen.remove(r.name.as_str()) else {
            first_seen.insert(r.name.as_str(), j);
            continue;
        };
        let (a, b) = (&records[i], &records[j]);
        match (a.is_mapped(), b.is_mapped()) {
            (true, true) => {
                complete.entry(pair_key(a, b)).or_default().push((i, j));
                stats.complete_pairs += 1;
            }
            (true, false) => {
                partial.entry(end_key(a)).or_default().push(i);
                stats.partial_pairs += 1;
            }
            (false, true) => {
                partial.entry(end_key(b)).or_default().push(j);
                stats.partial_pairs += 1;
            }
            (false, false) => {}
        }
    }
    drop(first_seen); // release the immutable borrow of `records`

    // Criterion 1: dedup complete pairs per compound key.
    let mut covered_ends: BTreeSet<EndKey> = BTreeSet::new();
    for (key, pairs) in &complete {
        covered_ends.insert(key.0);
        covered_ends.insert(key.1);
        if pairs.len() < 2 {
            continue;
        }
        let score =
            |&(i, j): &(usize, usize)| records[i].quality_sum() + records[j].quality_sum();
        let best_score = pairs.iter().map(score).max().expect("non-empty group");
        let ties: Vec<usize> = pairs
            .iter()
            .enumerate()
            .filter(|(_, p)| score(p) == best_score)
            .map(|(gi, _)| gi)
            .collect();
        if ties.len() > 1 {
            stats.ties_broken += 1;
        }
        let keeper = ties[rng.gen_range(0..ties.len())];
        for (gi, &(i, j)) in pairs.iter().enumerate() {
            if gi == keeper {
                continue;
            }
            records[i].flags.set(Flags::DUPLICATE, true);
            records[j].flags.set(Flags::DUPLICATE, true);
            stats.duplicate_pairs_marked += 1;
            stats.duplicate_reads_marked += 2;
        }
    }

    // Criterion 2: partial matchings compete against complete-pair ends
    // and each other.
    for (key, reads) in &partial {
        let against_complete = covered_ends.contains(key);
        let keeper = if against_complete {
            None // everyone here is a duplicate
        } else {
            let best_score = reads
                .iter()
                .map(|&i| records[i].quality_sum())
                .max()
                .expect("non-empty group");
            let ties: Vec<usize> = reads
                .iter()
                .enumerate()
                .filter(|(_, &i)| records[i].quality_sum() == best_score)
                .map(|(gi, _)| gi)
                .collect();
            if ties.len() > 1 {
                stats.ties_broken += 1;
            }
            Some(ties[rng.gen_range(0..ties.len())])
        };
        for (gi, &i) in reads.iter().enumerate() {
            if Some(gi) == keeper {
                continue;
            }
            records[i].flags.set(Flags::DUPLICATE, true);
            stats.duplicate_reads_marked += 1;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use gesall_formats::sam::Cigar;

    /// Build a mapped paired read.
    fn pread(name: &str, pos: i64, reverse: bool, cigar: &str, qual: u8) -> SamRecord {
        let cigar = Cigar::parse(cigar).unwrap();
        let qlen = cigar.query_len() as usize;
        let mut r = SamRecord::unmapped(name, vec![b'A'; qlen], vec![qual; qlen]);
        let mut flags = Flags(Flags::PAIRED);
        flags.set(Flags::REVERSE, reverse);
        r.flags = flags;
        r.ref_id = 0;
        r.pos = pos;
        r.mapq = 60;
        r.cigar = cigar;
        r
    }

    /// A complete pair: forward at `pos`, reverse ending so the two 5′
    /// ends are (pos, pos+fraglen-1).
    fn complete_pair(name: &str, pos: i64, frag: i64, qual: u8) -> (SamRecord, SamRecord) {
        let a = pread(name, pos, false, "100M", qual);
        let b = pread(name, pos + frag - 100, true, "100M", qual);
        (a, b)
    }

    #[test]
    fn exact_duplicate_pairs_marked_keeping_best() {
        let (a1, b1) = complete_pair("p1", 1000, 400, 35); // higher quality
        let (a2, b2) = complete_pair("p2", 1000, 400, 20); // duplicate
        let mut recs = vec![a1, b1, a2, b2];
        let stats = mark_duplicates(&mut recs, 1);
        assert_eq!(stats.complete_pairs, 2);
        assert_eq!(stats.duplicate_pairs_marked, 1);
        assert_eq!(stats.ties_broken, 0);
        let dup_names: Vec<&str> = recs
            .iter()
            .filter(|r| r.flags.is_duplicate())
            .map(|r| r.name.as_str())
            .collect();
        assert_eq!(dup_names, vec!["p2", "p2"]);
    }

    #[test]
    fn distinct_positions_not_duplicates() {
        let (a1, b1) = complete_pair("p1", 1000, 400, 30);
        let (a2, b2) = complete_pair("p2", 1001, 400, 30);
        let (a3, b3) = complete_pair("p3", 1000, 401, 30);
        let mut recs = vec![a1, b1, a2, b2, a3, b3];
        let stats = mark_duplicates(&mut recs, 1);
        assert_eq!(stats.duplicate_pairs_marked, 0);
        assert!(recs.iter().all(|r| !r.flags.is_duplicate()));
        assert_eq!(stats.ties_broken, 0);
    }

    #[test]
    fn clipping_does_not_hide_duplicates() {
        // Same fragment, but p2's forward read got 5 bases soft-clipped:
        // POS differs (1005) yet the unclipped 5′ end is still 1000.
        let (a1, b1) = complete_pair("p1", 1000, 400, 35);
        let mut a2 = pread("p2", 1005, false, "5S95M", 20);
        a2.pos = 1005;
        let b2 = pread("p2", 1300, true, "100M", 20);
        let mut recs = vec![a1, b1, a2, b2];
        let stats = mark_duplicates(&mut recs, 1);
        assert_eq!(
            stats.duplicate_pairs_marked, 1,
            "clipped duplicate must still be caught (5' unclipped end)"
        );
        assert!(recs[2].flags.is_duplicate());
    }

    #[test]
    fn orientation_matters() {
        // Same endpoints but both-forward vs forward/reverse are
        // different fragments.
        let a1 = pread("p1", 1000, false, "100M", 30);
        let b1 = pread("p1", 1300, true, "100M", 30);
        let a2 = pread("p2", 1000, false, "100M", 30);
        let b2 = pread("p2", 1300, false, "100M", 30);
        let mut recs = vec![a1, b1, a2, b2];
        let stats = mark_duplicates(&mut recs, 1);
        assert_eq!(stats.duplicate_pairs_marked, 0);
    }

    #[test]
    fn equal_quality_tie_broken_randomly() {
        let mut kept_first = 0;
        for seed in 0..40 {
            let (a1, b1) = complete_pair("p1", 1000, 400, 30);
            let (a2, b2) = complete_pair("p2", 1000, 400, 30);
            let mut recs = vec![a1, b1, a2, b2];
            let stats = mark_duplicates(&mut recs, seed);
            assert_eq!(stats.duplicate_pairs_marked, 1);
            assert_eq!(stats.ties_broken, 1);
            if !recs[0].flags.is_duplicate() {
                kept_first += 1;
            }
        }
        assert!(
            kept_first > 5 && kept_first < 35,
            "both outcomes should occur across seeds ({kept_first}/40)"
        );
    }

    #[test]
    fn partial_matching_duplicate_of_complete_pair() {
        // Fig. 4's R7 scenario: a partial matching whose mapped read
        // coincides with a complete-pair read's 5′ end.
        let (a1, b1) = complete_pair("p1", 1000, 400, 30);
        let mapped = pread("p2", 1000, false, "100M", 40); // same 5' end as a1
        let mut unmapped = SamRecord::unmapped("p2", vec![b'C'; 100], vec![20; 100]);
        unmapped.flags.set(Flags::PAIRED, true);
        let mut recs = vec![a1, b1, mapped, unmapped];
        let stats = mark_duplicates(&mut recs, 1);
        assert_eq!(stats.partial_pairs, 1);
        assert!(
            recs[2].flags.is_duplicate(),
            "partial matching must be duplicate even with higher quality"
        );
        // The complete pair itself is NOT marked.
        assert!(!recs[0].flags.is_duplicate());
        assert!(!recs[1].flags.is_duplicate());
    }

    #[test]
    fn partials_compete_among_themselves() {
        let m1 = pread("q1", 5000, false, "100M", 40);
        let mut u1 = SamRecord::unmapped("q1", vec![b'C'; 100], vec![20; 100]);
        u1.flags.set(Flags::PAIRED, true);
        let m2 = pread("q2", 5000, false, "100M", 25);
        let mut u2 = SamRecord::unmapped("q2", vec![b'C'; 100], vec![20; 100]);
        u2.flags.set(Flags::PAIRED, true);
        let mut recs = vec![m1, u1, m2, u2];
        let stats = mark_duplicates(&mut recs, 1);
        assert_eq!(stats.duplicate_reads_marked, 1);
        assert!(!recs[0].flags.is_duplicate(), "best partial survives");
        assert!(recs[2].flags.is_duplicate());
    }

    #[test]
    fn secondary_alignments_ignored() {
        let (a1, b1) = complete_pair("p1", 1000, 400, 30);
        let mut sec = pread("p1", 1000, false, "100M", 30);
        sec.flags.set(Flags::SECONDARY, true);
        let mut recs = vec![a1, b1, sec];
        let stats = mark_duplicates(&mut recs, 1);
        assert_eq!(stats.complete_pairs, 1);
        assert_eq!(stats.duplicate_pairs_marked, 0);
        assert!(!recs[2].flags.is_duplicate());
    }

    #[test]
    fn deterministic_given_seed() {
        let build = || {
            let mut recs = Vec::new();
            for k in 0..6 {
                let (a, b) = complete_pair(&format!("p{k}"), 1000, 400, 30);
                recs.push(a);
                recs.push(b);
            }
            recs
        };
        let mut r1 = build();
        let mut r2 = build();
        mark_duplicates(&mut r1, 99);
        mark_duplicates(&mut r2, 99);
        assert_eq!(r1, r2);
        let mut r3 = build();
        mark_duplicates(&mut r3, 100);
        // 6-way tie: different seeds usually keep different pairs; we only
        // require determinism, not difference, so just count duplicates.
        assert_eq!(
            r3.iter().filter(|r| r.flags.is_duplicate()).count(),
            10
        );
    }
}
