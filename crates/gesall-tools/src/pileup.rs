//! Pileup: per-reference-position summaries of the reads covering it —
//! the substrate both variant callers walk.

use gesall_formats::sam::cigar::CigarOp;
use gesall_formats::sam::SamRecord;

/// An observed indel allele at a position.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum IndelAllele {
    /// Inserted bases after this position.
    Ins(Vec<u8>),
    /// Number of reference bases deleted after this position.
    Del(u32),
}

/// Everything observed at one 1-based reference position.
#[derive(Debug, Clone, Default)]
pub struct PileupColumn {
    /// Aligned base counts indexed A,C,G,T.
    pub base_counts: [u32; 4],
    /// Sum of base qualities per base letter.
    pub qual_sums: [u64; 4],
    /// Forward/reverse strand counts per base letter.
    pub strand_counts: [[u32; 2]; 4],
    /// Sum of squared mapping qualities (for RMS MQ).
    pub mapq_sq_sum: u64,
    /// Reads contributing an aligned base here.
    pub depth: u32,
    /// Indel alleles anchored at this position, with observation counts.
    pub indels: Vec<(IndelAllele, u32)>,
    /// Reads with a soft clip boundary adjacent to this position.
    pub clips: u32,
    /// Mismatching bases vs the reference (filled by the caller walk).
    pub mismatches: u32,
}

impl PileupColumn {
    #[inline]
    fn base_index(b: u8) -> Option<usize> {
        match b {
            b'A' | b'a' => Some(0),
            b'C' | b'c' => Some(1),
            b'G' | b'g' => Some(2),
            b'T' | b't' => Some(3),
            _ => None,
        }
    }

    /// RMS mapping quality of covering reads.
    pub fn rms_mapq(&self) -> f64 {
        if self.depth == 0 {
            return 0.0;
        }
        ((self.mapq_sq_sum as f64) / self.depth as f64).sqrt()
    }

    /// Most frequent non-reference base and its count.
    pub fn top_alt(&self, ref_base: u8) -> Option<(u8, u32)> {
        let ref_idx = Self::base_index(ref_base);
        let mut best: Option<(u8, u32)> = None;
        for (i, &c) in self.base_counts.iter().enumerate() {
            if Some(i) == ref_idx || c == 0 {
                continue;
            }
            if best.map(|(_, bc)| c > bc).unwrap_or(true) {
                best = Some(([b'A', b'C', b'G', b'T'][i], c));
            }
        }
        best
    }

    /// Most frequent indel allele and its count.
    pub fn top_indel(&self) -> Option<(&IndelAllele, u32)> {
        self.indels
            .iter()
            .max_by_key(|(_, c)| *c)
            .map(|(a, c)| (a, *c))
    }

    /// Count of a specific base letter.
    pub fn count_of(&self, base: u8) -> u32 {
        Self::base_index(base)
            .map(|i| self.base_counts[i])
            .unwrap_or(0)
    }
}

/// Filters applied before a read contributes to the pileup — the quality
/// thresholds real callers use (duplicates and low-mapq reads excluded).
#[derive(Debug, Clone, Copy)]
pub struct PileupFilter {
    pub min_mapq: u8,
    pub min_base_qual: u8,
    pub include_duplicates: bool,
}

impl Default for PileupFilter {
    fn default() -> PileupFilter {
        PileupFilter {
            min_mapq: 10,
            min_base_qual: 10,
            include_duplicates: false,
        }
    }
}

/// A pileup over one chromosome region `[start, end]` (1-based,
/// inclusive).
pub struct Pileup {
    pub ref_id: i32,
    pub start: i64,
    /// Columns for positions `start ..= start + columns.len() - 1`.
    pub columns: Vec<PileupColumn>,
}

impl Pileup {
    /// Build the pileup of `records` over `[start, end]` on `ref_id`.
    /// Records outside the window, unmapped, secondary, or filtered reads
    /// contribute nothing.
    pub fn build(
        records: &[SamRecord],
        ref_id: i32,
        start: i64,
        end: i64,
        filter: &PileupFilter,
    ) -> Pileup {
        assert!(start >= 1 && end >= start, "bad pileup window");
        let n = (end - start + 1) as usize;
        let mut columns = vec![PileupColumn::default(); n];
        let in_window = |pos: i64| pos >= start && pos <= end;
        for rec in records {
            if !rec.is_mapped()
                || rec.ref_id != ref_id
                || !rec.flags.is_primary()
                || rec.mapq < filter.min_mapq
                || (!filter.include_duplicates && rec.flags.is_duplicate())
            {
                continue;
            }
            if rec.end_pos() < start || rec.pos > end {
                continue;
            }
            let mut ref_pos = rec.pos;
            let mut read_pos = 0usize;
            let reverse = rec.flags.is_reverse();
            for (oi, op) in rec.cigar.0.iter().enumerate() {
                match *op {
                    CigarOp::Match(len) => {
                        for k in 0..len as i64 {
                            let rp = ref_pos + k;
                            let qp = read_pos + k as usize;
                            if !in_window(rp) {
                                continue;
                            }
                            let col = &mut columns[(rp - start) as usize];
                            let (Some(&base), Some(&q)) = (rec.seq.get(qp), rec.qual.get(qp))
                            else {
                                continue;
                            };
                            if q < filter.min_base_qual {
                                continue;
                            }
                            if let Some(bi) = PileupColumn::base_index(base) {
                                col.base_counts[bi] += 1;
                                col.qual_sums[bi] += q as u64;
                                col.strand_counts[bi][usize::from(reverse)] += 1;
                                col.depth += 1;
                                col.mapq_sq_sum += (rec.mapq as u64) * (rec.mapq as u64);
                            }
                        }
                        ref_pos += len as i64;
                        read_pos += len as usize;
                    }
                    CigarOp::Ins(len) => {
                        // Anchored at the base before the insertion.
                        let anchor = ref_pos - 1;
                        if in_window(anchor) {
                            let seq: Vec<u8> = rec
                                .seq
                                .get(read_pos..read_pos + len as usize)
                                .map(|s| s.to_vec())
                                .unwrap_or_default();
                            add_indel(
                                &mut columns[(anchor - start) as usize],
                                IndelAllele::Ins(seq),
                            );
                        }
                        read_pos += len as usize;
                    }
                    CigarOp::Del(len) => {
                        let anchor = ref_pos - 1;
                        if in_window(anchor) {
                            add_indel(
                                &mut columns[(anchor - start) as usize],
                                IndelAllele::Del(len),
                            );
                        }
                        ref_pos += len as i64;
                    }
                    CigarOp::SoftClip(len) => {
                        // A clip boundary hints at trouble (activity score).
                        let boundary = if oi == 0 { rec.pos } else { ref_pos };
                        if in_window(boundary) {
                            columns[(boundary - start) as usize].clips += 1;
                        }
                        read_pos += len as usize;
                    }
                    CigarOp::HardClip(_) => {}
                    CigarOp::Skip(len) => {
                        ref_pos += len as i64;
                    }
                }
            }
        }
        Pileup {
            ref_id,
            start,
            columns,
        }
    }

    /// Column at 1-based position `pos`, if inside the window.
    pub fn at(&self, pos: i64) -> Option<&PileupColumn> {
        if pos < self.start {
            return None;
        }
        self.columns.get((pos - self.start) as usize)
    }

    /// Fill per-column mismatch counts against the reference slice
    /// covering this window (same length as `columns`).
    pub fn annotate_mismatches(&mut self, reference: &[u8]) {
        for (col, &rb) in self.columns.iter_mut().zip(reference) {
            let total: u32 = col.base_counts.iter().sum();
            col.mismatches = total - col.count_of(rb);
        }
    }
}

fn add_indel(col: &mut PileupColumn, allele: IndelAllele) {
    for (a, c) in col.indels.iter_mut() {
        if *a == allele {
            *c += 1;
            return;
        }
    }
    col.indels.push((allele, 1));
}

#[cfg(test)]
mod tests {
    use super::*;
    use gesall_formats::sam::{Cigar, Flags};

    fn read(name: &str, pos: i64, cigar: &str, seq: &[u8]) -> SamRecord {
        let cigar = Cigar::parse(cigar).unwrap();
        let mut r = SamRecord::unmapped(name, seq.to_vec(), vec![30; seq.len()]);
        r.flags = Flags(0);
        r.ref_id = 0;
        r.pos = pos;
        r.mapq = 60;
        r.cigar = cigar;
        r
    }

    #[test]
    fn simple_column_counts() {
        let reads = vec![
            read("a", 10, "4M", b"ACGT"),
            read("b", 11, "4M", b"CGTA"),
            read("c", 12, "2M", b"GT"),
        ];
        let p = Pileup::build(&reads, 0, 10, 20, &PileupFilter::default());
        assert_eq!(p.at(10).unwrap().count_of(b'A'), 1);
        assert_eq!(p.at(11).unwrap().count_of(b'C'), 2);
        assert_eq!(p.at(12).unwrap().count_of(b'G'), 3);
        assert_eq!(p.at(12).unwrap().depth, 3);
        assert_eq!(p.at(13).unwrap().depth, 3);
        assert_eq!(p.at(14).unwrap().depth, 1);
        assert_eq!(p.at(15).unwrap().depth, 0);
    }

    #[test]
    fn filters_exclude_reads() {
        let mut dup = read("d", 10, "4M", b"AAAA");
        dup.flags.set(Flags::DUPLICATE, true);
        let mut lowq = read("l", 10, "4M", b"AAAA");
        lowq.mapq = 3;
        let mut secondary = read("s", 10, "4M", b"AAAA");
        secondary.flags.set(Flags::SECONDARY, true);
        let good = read("g", 10, "4M", b"AAAA");
        let reads = vec![dup, lowq, secondary, good];
        let p = Pileup::build(&reads, 0, 10, 13, &PileupFilter::default());
        assert_eq!(p.at(10).unwrap().depth, 1);
        // With duplicates allowed, two reads count.
        let f = PileupFilter {
            include_duplicates: true,
            ..PileupFilter::default()
        };
        let p2 = Pileup::build(&reads, 0, 10, 13, &f);
        assert_eq!(p2.at(10).unwrap().depth, 2);
    }

    #[test]
    fn insertion_and_deletion_anchoring() {
        // 3M 2I 3M: insertion anchored at pos+2 (last base before ins).
        let reads = vec![
            read("i", 10, "3M2I3M", b"ACGTTACG"),
            read("d", 10, "3M2D3M", b"ACGACG"),
        ];
        let p = Pileup::build(&reads, 0, 10, 20, &PileupFilter::default());
        let col = p.at(12).unwrap();
        assert_eq!(col.indels.len(), 2);
        let (top, count) = col.top_indel().unwrap();
        assert_eq!(count, 1);
        assert!(matches!(top, IndelAllele::Ins(_) | IndelAllele::Del(2)));
        // Deletion consumes reference: read "d" contributes aligned bases
        // at 15,16,17.
        assert_eq!(p.at(15).unwrap().depth, 2); // i's 4th M is at 13.. wait
    }

    #[test]
    fn strand_counts_follow_flags() {
        let fwd = read("f", 10, "2M", b"AA");
        let mut rev = read("r", 10, "2M", b"AA");
        rev.flags.set(Flags::REVERSE, true);
        let p = Pileup::build(&[fwd, rev], 0, 10, 11, &PileupFilter::default());
        let col = p.at(10).unwrap();
        assert_eq!(col.strand_counts[0], [1, 1]);
    }

    #[test]
    fn soft_clip_boundaries_counted() {
        let reads = vec![read("c", 50, "5S10M5S", b"AAAAACCCCCGGGGGTTTTT")];
        let p = Pileup::build(&reads, 0, 40, 70, &PileupFilter::default());
        assert_eq!(p.at(50).unwrap().clips, 1);
        assert_eq!(p.at(60).unwrap().clips, 1);
    }

    #[test]
    fn mismatch_annotation() {
        let reads = vec![read("a", 1, "4M", b"ACGT"), read("b", 1, "4M", b"AGGT")];
        let mut p = Pileup::build(&reads, 0, 1, 4, &PileupFilter::default());
        p.annotate_mismatches(b"ACGT");
        assert_eq!(p.at(1).unwrap().mismatches, 0);
        assert_eq!(p.at(2).unwrap().mismatches, 1);
        assert_eq!(p.at(3).unwrap().mismatches, 0);
    }

    #[test]
    fn top_alt_ignores_reference_base() {
        let reads = vec![
            read("a", 1, "1M", b"A"),
            read("b", 1, "1M", b"A"),
            read("c", 1, "1M", b"G"),
        ];
        let p = Pileup::build(&reads, 0, 1, 1, &PileupFilter::default());
        assert_eq!(p.at(1).unwrap().top_alt(b'A'), Some((b'G', 1)));
        assert_eq!(p.at(1).unwrap().top_alt(b'G'), Some((b'A', 2)));
    }

    #[test]
    fn rms_mapq() {
        let mut a = read("a", 1, "1M", b"A");
        a.mapq = 60;
        let mut b = read("b", 1, "1M", b"A");
        b.mapq = 20;
        let p = Pileup::build(&[a, b], 0, 1, 1, &PileupFilter {
            min_mapq: 0,
            ..PileupFilter::default()
        });
        let rms = p.at(1).unwrap().rms_mapq();
        assert!((rms - ((3600.0f64 + 400.0) / 2.0).sqrt()).abs() < 1e-9);
    }
}
