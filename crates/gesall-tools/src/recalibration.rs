//! Base quality score recalibration (paper Table 2, steps 11–12).
//!
//! The sequencer's reported base qualities are systematically biased —
//! e.g. by machine cycle (bases near read ends are worse than reported).
//! **BaseRecalibrator** tallies empirical error rates per *covariate*
//! (read group, reported quality, machine-cycle bucket, dinucleotide
//! context) by comparing aligned bases against the reference away from
//! known variant sites; **PrintReads** rewrites each base's quality to
//! the empirical value.
//!
//! GDPT-wise this is the paper's example of *group partitioning by
//! user-defined covariates* (§3.2): the tally is a distributive
//! aggregation, so the platform parallelizes pass 1 as map-side partial
//! tables merged in reducers.

use crate::refview::RefView;
use gesall_formats::quality::error_prob_to_phred;
use gesall_formats::sam::cigar::CigarOp;
use gesall_formats::sam::SamRecord;
use std::collections::{BTreeMap, HashSet};

/// One covariate bucket.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Covariate {
    pub read_group: String,
    pub reported_qual: u8,
    /// Machine cycle / 8 (bucketed).
    pub cycle_bucket: u8,
    /// Preceding base and current base (dinucleotide context), as called.
    pub context: [u8; 2],
}

/// Tallied observations for one bucket.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Tally {
    pub observations: u64,
    pub errors: u64,
}

impl Tally {
    /// Empirical quality with a +1/+2 pseudo-count (Laplace) smoother.
    pub fn empirical_quality(&self) -> u8 {
        let p = (self.errors as f64 + 1.0) / (self.observations as f64 + 2.0);
        error_prob_to_phred(p)
    }
}

/// The recalibration table: full covariates plus a coarse
/// (read group, reported quality) fallback for sparse buckets.
#[derive(Debug, Clone, Default)]
pub struct RecalTable {
    pub by_covariate: BTreeMap<Covariate, Tally>,
    pub by_reported: BTreeMap<(String, u8), Tally>,
}

impl RecalTable {
    /// Merge another table into this one (the reduce step of the
    /// parallel recalibrator).
    pub fn merge(&mut self, other: &RecalTable) {
        for (k, t) in &other.by_covariate {
            let e = self.by_covariate.entry(k.clone()).or_default();
            e.observations += t.observations;
            e.errors += t.errors;
        }
        for (k, t) in &other.by_reported {
            let e = self.by_reported.entry(k.clone()).or_default();
            e.observations += t.observations;
            e.errors += t.errors;
        }
    }

    pub fn total_observations(&self) -> u64 {
        self.by_reported.values().map(|t| t.observations).sum()
    }
}

impl gesall_formats::wire::Wire for Covariate {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.read_group.encode(buf);
        (self.reported_qual as u32).encode(buf);
        (self.cycle_bucket as u32).encode(buf);
        self.context.to_vec().encode(buf);
    }

    fn decode(
        cur: &mut gesall_formats::wire::Cursor<'_>,
    ) -> gesall_formats::error::Result<Self> {
        let read_group = String::decode(cur)?;
        let reported_qual = u32::decode(cur)? as u8;
        let cycle_bucket = u32::decode(cur)? as u8;
        let ctx = Vec::<u8>::decode(cur)?;
        if ctx.len() != 2 {
            return Err(gesall_formats::FormatError::Bam(
                "covariate context must be 2 bytes".into(),
            ));
        }
        Ok(Covariate {
            read_group,
            reported_qual,
            cycle_bucket,
            context: [ctx[0], ctx[1]],
        })
    }
}

impl gesall_formats::wire::Wire for RecalTable {
    fn encode(&self, buf: &mut Vec<u8>) {
        let fine: Vec<(Covariate, (u64, u64))> = self
            .by_covariate
            .iter()
            .map(|(k, t)| (k.clone(), (t.observations, t.errors)))
            .collect();
        let coarse: Vec<((String, u64), (u64, u64))> = self
            .by_reported
            .iter()
            .map(|((rg, q), t)| ((rg.clone(), *q as u64), (t.observations, t.errors)))
            .collect();
        fine.encode(buf);
        coarse.encode(buf);
    }

    fn decode(
        cur: &mut gesall_formats::wire::Cursor<'_>,
    ) -> gesall_formats::error::Result<Self> {
        let fine = Vec::<(Covariate, (u64, u64))>::decode(cur)?;
        let coarse = Vec::<((String, u64), (u64, u64))>::decode(cur)?;
        let mut table = RecalTable::default();
        for (k, (observations, errors)) in fine {
            table.by_covariate.insert(
                k,
                Tally {
                    observations,
                    errors,
                },
            );
        }
        for ((rg, q), (observations, errors)) in coarse {
            table.by_reported.insert(
                (rg, q as u8),
                Tally {
                    observations,
                    errors,
                },
            );
        }
        Ok(table)
    }
}

/// Recalibration parameters.
#[derive(Debug, Clone)]
pub struct RecalConfig {
    pub min_mapq: u8,
    /// Buckets with fewer observations fall back to the coarse table.
    pub min_observations: u64,
}

impl Default for RecalConfig {
    fn default() -> RecalConfig {
        RecalConfig {
            min_mapq: 20,
            min_observations: 30,
        }
    }
}

fn cycle_of(i: usize, read_len: usize, reverse: bool) -> usize {
    if reverse {
        read_len - 1 - i
    } else {
        i
    }
}

fn covariate(rec: &SamRecord, read_index: usize) -> Covariate {
    let cycle = cycle_of(read_index, rec.seq.len(), rec.flags.is_reverse());
    let prev = if read_index > 0 {
        rec.seq[read_index - 1]
    } else {
        b'N'
    };
    Covariate {
        read_group: rec.read_group.clone(),
        reported_qual: rec.qual[read_index],
        cycle_bucket: (cycle / 8).min(255) as u8,
        context: [prev, rec.seq[read_index]],
    }
}

/// Walk a record's aligned (M) bases, yielding (read index, 1-based ref
/// position).
fn aligned_bases(rec: &SamRecord) -> Vec<(usize, i64)> {
    let mut out = Vec::with_capacity(rec.seq.len());
    let mut rp = rec.pos;
    let mut qp = 0usize;
    for op in &rec.cigar.0 {
        match *op {
            CigarOp::Match(n) => {
                for k in 0..n as usize {
                    out.push((qp + k, rp + k as i64));
                }
                qp += n as usize;
                rp += n as i64;
            }
            CigarOp::Ins(n) | CigarOp::SoftClip(n) => qp += n as usize,
            CigarOp::Del(n) | CigarOp::Skip(n) => rp += n as i64,
            CigarOp::HardClip(_) => {}
        }
    }
    out
}

/// Pass 1: build the table from aligned records. `known_sites` are
/// (ref_id, 1-based pos) positions to exclude (known variants must not
/// count as sequencing errors).
pub fn base_recalibrator(
    records: &[SamRecord],
    reference: RefView<'_>,
    known_sites: &HashSet<(i32, i64)>,
    config: &RecalConfig,
) -> RecalTable {
    let mut table = RecalTable::default();
    for rec in records {
        if !rec.is_mapped()
            || !rec.flags.is_primary()
            || rec.flags.is_duplicate()
            || rec.mapq < config.min_mapq
        {
            continue;
        }
        for (qi, rp) in aligned_bases(rec) {
            if known_sites.contains(&(rec.ref_id, rp)) {
                continue;
            }
            let Some(ref_base) = reference.base(rec.ref_id, rp) else {
                continue;
            };
            let called = rec.seq[qi];
            if !matches!(called, b'A' | b'C' | b'G' | b'T') {
                continue;
            }
            let err = u64::from(called != ref_base);
            let cov = covariate(rec, qi);
            let coarse = (cov.read_group.clone(), cov.reported_qual);
            let t = table.by_covariate.entry(cov).or_default();
            t.observations += 1;
            t.errors += err;
            let t = table.by_reported.entry(coarse).or_default();
            t.observations += 1;
            t.errors += err;
        }
    }
    table
}

/// Pass 2 (PrintReads): rewrite base qualities from the table. Returns
/// how many base qualities changed.
pub fn print_reads(records: &mut [SamRecord], table: &RecalTable, config: &RecalConfig) -> u64 {
    let mut changed = 0u64;
    for rec in records.iter_mut() {
        if rec.seq.is_empty() {
            continue;
        }
        for qi in 0..rec.seq.len() {
            let cov = covariate(rec, qi);
            let fine = table.by_covariate.get(&cov);
            let new_q = match fine {
                Some(t) if t.observations >= config.min_observations => t.empirical_quality(),
                _ => match table
                    .by_reported
                    .get(&(cov.read_group.clone(), cov.reported_qual))
                {
                    Some(t) if t.observations >= config.min_observations => {
                        t.empirical_quality()
                    }
                    _ => rec.qual[qi],
                },
            };
            if new_q != rec.qual[qi] {
                rec.qual[qi] = new_q;
                changed += 1;
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use gesall_formats::sam::{Cigar, Flags};

    fn aligned(name: &str, pos: i64, seq: &[u8], qual: u8) -> SamRecord {
        let mut r = SamRecord::unmapped(name, seq.to_vec(), vec![qual; seq.len()]);
        r.flags = Flags(0);
        r.ref_id = 0;
        r.pos = pos;
        r.mapq = 60;
        r.cigar = Cigar::full_match(seq.len() as u32);
        r.read_group = "rg1".into();
        r
    }

    #[test]
    fn tally_empirical_quality() {
        let t = Tally {
            observations: 998,
            errors: 9,
        };
        // (9+1)/(998+2) = 0.01 → Q20.
        assert_eq!(t.empirical_quality(), 20);
        let perfect = Tally {
            observations: 100_000,
            errors: 0,
        };
        assert!(perfect.empirical_quality() >= 50);
    }

    #[test]
    fn recalibrator_counts_errors_against_reference() {
        let seqs = vec![b"ACGTACGTACGTACGT".to_vec()];
        let reference = RefView::new(&seqs);
        // Read matches reference except one base.
        let mut seq = seqs[0].clone();
        seq[5] = b'A'; // ref has C at pos 6
        let rec = aligned("r", 1, &seq, 30);
        let table = base_recalibrator(
            &[rec],
            reference,
            &HashSet::new(),
            &RecalConfig::default(),
        );
        let coarse = table.by_reported.get(&("rg1".to_string(), 30)).unwrap();
        assert_eq!(coarse.observations, 16);
        assert_eq!(coarse.errors, 1);
    }

    #[test]
    fn known_sites_excluded() {
        let seqs = vec![b"ACGTACGTACGTACGT".to_vec()];
        let reference = RefView::new(&seqs);
        let mut seq = seqs[0].clone();
        seq[5] = b'A';
        let rec = aligned("r", 1, &seq, 30);
        let mut known = HashSet::new();
        known.insert((0, 6i64)); // the mismatch site is a known variant
        let table = base_recalibrator(&[rec], reference, &known, &RecalConfig::default());
        let coarse = table.by_reported.get(&("rg1".to_string(), 30)).unwrap();
        assert_eq!(coarse.observations, 15);
        assert_eq!(coarse.errors, 0);
    }

    #[test]
    fn duplicates_and_low_mapq_skipped() {
        let seqs = vec![b"ACGTACGT".to_vec()];
        let reference = RefView::new(&seqs);
        let mut dup = aligned("d", 1, &seqs[0], 30);
        dup.flags.set(Flags::DUPLICATE, true);
        let mut low = aligned("l", 1, &seqs[0], 30);
        low.mapq = 5;
        let table = base_recalibrator(
            &[dup, low],
            reference,
            &HashSet::new(),
            &RecalConfig::default(),
        );
        assert_eq!(table.total_observations(), 0);
    }

    #[test]
    fn print_reads_corrects_overconfident_qualities() {
        // Reported Q40 but the empirical error rate is ~3%: PrintReads
        // must lower the qualities.
        let seqs = vec![(0..64).map(|i| b"ACGT"[i % 4]).collect::<Vec<u8>>()];
        let reference = RefView::new(&seqs);
        let mut records = Vec::new();
        for k in 0..50 {
            let mut seq = seqs[0].clone();
            if k % 2 == 0 {
                // one error per even read ≈ 1/64 per base... concentrate:
                seq[(k / 2) % 64] = match seq[(k / 2) % 64] {
                    b'A' => b'C',
                    _ => b'A',
                };
            }
            records.push(aligned(&format!("r{k}"), 1, &seq, 40));
        }
        let table = base_recalibrator(
            &records,
            reference,
            &HashSet::new(),
            &RecalConfig::default(),
        );
        let changed = print_reads(&mut records, &table, &RecalConfig::default());
        assert!(changed > 0);
        let q = records[0].qual[0];
        assert!(
            q < 40,
            "empirical quality should be below reported 40, got {q}"
        );
        // Error rate 25/(50*64) ≈ 0.78% → ~Q21.
        assert!((15..=30).contains(&q), "unexpected empirical q {q}");
    }

    #[test]
    fn table_merge_is_additive() {
        let seqs = vec![b"ACGTACGT".to_vec()];
        let reference = RefView::new(&seqs);
        let r1 = aligned("a", 1, &seqs[0], 30);
        let r2 = aligned("b", 1, &seqs[0], 30);
        let both = base_recalibrator(
            &[r1.clone(), r2.clone()],
            reference,
            &HashSet::new(),
            &RecalConfig::default(),
        );
        let mut merged = base_recalibrator(
            &[r1],
            reference,
            &HashSet::new(),
            &RecalConfig::default(),
        );
        merged.merge(&base_recalibrator(
            &[r2],
            reference,
            &HashSet::new(),
            &RecalConfig::default(),
        ));
        assert_eq!(merged.by_reported, both.by_reported);
        assert_eq!(merged.by_covariate, both.by_covariate);
    }

    #[test]
    fn recal_table_wire_roundtrip() {
        use gesall_formats::wire::Wire;
        let seqs = vec![b"ACGTACGTACGTACGT".to_vec()];
        let reference = RefView::new(&seqs);
        let mut seq = seqs[0].clone();
        seq[3] = b'A';
        let rec = aligned("r", 1, &seq, 30);
        let table = base_recalibrator(
            &[rec],
            reference,
            &HashSet::new(),
            &RecalConfig::default(),
        );
        assert!(!table.by_covariate.is_empty());
        let bytes = table.to_wire_bytes();
        let back = RecalTable::from_wire_bytes(&bytes).unwrap();
        assert_eq!(back.by_covariate, table.by_covariate);
        assert_eq!(back.by_reported, table.by_reported);
    }

    #[test]
    fn cycle_accounts_for_strand() {
        assert_eq!(cycle_of(0, 100, false), 0);
        assert_eq!(cycle_of(0, 100, true), 99);
        assert_eq!(cycle_of(99, 100, true), 0);
    }
}
