//! A read-only view of the reference sequences, keyed by the `ref_id`
//! used in SAM records.

/// Borrowed reference sequences: `seqs[ref_id]` is the chromosome's ASCII
/// bases.
#[derive(Clone, Copy)]
pub struct RefView<'a> {
    seqs: &'a [Vec<u8>],
}

impl<'a> RefView<'a> {
    pub fn new(seqs: &'a [Vec<u8>]) -> RefView<'a> {
        RefView { seqs }
    }

    pub fn n_chromosomes(&self) -> usize {
        self.seqs.len()
    }

    /// Chromosome length, 0 for out-of-range ids.
    pub fn chrom_len(&self, ref_id: i32) -> usize {
        usize::try_from(ref_id)
            .ok()
            .and_then(|i| self.seqs.get(i))
            .map(|s| s.len())
            .unwrap_or(0)
    }

    /// Base at 1-based position `pos` on `ref_id`, or `None` out of range.
    pub fn base(&self, ref_id: i32, pos: i64) -> Option<u8> {
        if pos < 1 {
            return None;
        }
        usize::try_from(ref_id)
            .ok()
            .and_then(|i| self.seqs.get(i))
            .and_then(|s| s.get(pos as usize - 1))
            .copied()
    }

    /// Slice `[start, end]` (1-based inclusive), clamped to the
    /// chromosome.
    pub fn slice(&self, ref_id: i32, start: i64, end: i64) -> &'a [u8] {
        let Ok(i) = usize::try_from(ref_id) else {
            return &[];
        };
        let Some(s) = self.seqs.get(i) else {
            return &[];
        };
        let lo = (start.max(1) - 1) as usize;
        let hi = (end.clamp(0, s.len() as i64)) as usize;
        if lo >= hi {
            &[]
        } else {
            &s[lo..hi]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookups() {
        let seqs = vec![b"ACGT".to_vec(), b"TTAA".to_vec()];
        let v = RefView::new(&seqs);
        assert_eq!(v.n_chromosomes(), 2);
        assert_eq!(v.chrom_len(0), 4);
        assert_eq!(v.chrom_len(-1), 0);
        assert_eq!(v.chrom_len(9), 0);
        assert_eq!(v.base(0, 1), Some(b'A'));
        assert_eq!(v.base(0, 4), Some(b'T'));
        assert_eq!(v.base(0, 5), None);
        assert_eq!(v.base(0, 0), None);
        assert_eq!(v.base(1, 2), Some(b'T'));
    }

    #[test]
    fn slices_clamped() {
        let seqs = vec![b"ACGTACGT".to_vec()];
        let v = RefView::new(&seqs);
        assert_eq!(v.slice(0, 2, 4), b"CGT");
        assert_eq!(v.slice(0, -5, 3), b"ACG");
        assert_eq!(v.slice(0, 7, 100), b"GT");
        assert_eq!(v.slice(0, 5, 4), b"");
        assert_eq!(v.slice(3, 1, 4), b"");
    }
}
