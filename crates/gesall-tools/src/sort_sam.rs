//! SortSam (paper Table 2, step 7 companion): coordinate sort, the
//! arrangement variant callers require. NovoSort [24] plays this role in
//! the paper's single-node pipeline.

use gesall_formats::sam::{SamHeader, SamRecord, SortOrder};

/// Sort records by (reference id, position), unmapped reads last; updates
/// the header's declared sort order. Stable: equal-coordinate records
/// keep their input order (which is what makes serial/parallel diffing
/// meaningful).
pub fn sort_sam(header: &mut SamHeader, records: &mut [SamRecord]) {
    records.sort_by_key(|r| r.coordinate_key());
    header.sort_order = SortOrder::Coordinate;
}

/// Sort records by read name (queryname order) — the arrangement
/// FixMateInformation and the MarkDuplicates mapper expect.
pub fn sort_by_name(header: &mut SamHeader, records: &mut [SamRecord]) {
    records.sort_by(|a, b| a.name.cmp(&b.name));
    header.sort_order = SortOrder::QueryName;
}

/// Verify coordinate order (used by validation tests and the platform's
/// round-4 output checks).
pub fn is_coordinate_sorted(records: &[SamRecord]) -> bool {
    records
        .windows(2)
        .all(|w| w[0].coordinate_key() <= w[1].coordinate_key())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gesall_formats::sam::header::ReferenceSeq;
    use gesall_formats::sam::{Cigar, Flags};

    fn rec(name: &str, ref_id: i32, pos: i64) -> SamRecord {
        let mut r = SamRecord::unmapped(name, b"AC".to_vec(), vec![30; 2]);
        if ref_id >= 0 {
            r.flags = Flags(0);
            r.ref_id = ref_id;
            r.pos = pos;
            r.cigar = Cigar::full_match(2);
        }
        r
    }

    #[test]
    fn coordinate_sort_orders_and_marks_header() {
        let mut h = SamHeader::new(vec![ReferenceSeq {
            name: "chr1".into(),
            len: 100,
        }]);
        let mut recs = vec![
            rec("u", -1, 0),
            rec("c", 1, 5),
            rec("a", 0, 50),
            rec("b", 0, 7),
        ];
        sort_sam(&mut h, &mut recs);
        let names: Vec<&str> = recs.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["b", "a", "c", "u"]);
        assert_eq!(h.sort_order, SortOrder::Coordinate);
        assert!(is_coordinate_sorted(&recs));
    }

    #[test]
    fn sort_is_stable_for_equal_coordinates() {
        let mut h = SamHeader::default();
        let mut recs = vec![rec("first", 0, 10), rec("second", 0, 10)];
        sort_sam(&mut h, &mut recs);
        assert_eq!(recs[0].name, "first");
        assert_eq!(recs[1].name, "second");
    }

    #[test]
    fn name_sort() {
        let mut h = SamHeader::default();
        let mut recs = vec![rec("z", 0, 1), rec("a", 0, 99), rec("m", 0, 5)];
        sort_by_name(&mut h, &mut recs);
        let names: Vec<&str> = recs.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["a", "m", "z"]);
        assert_eq!(h.sort_order, SortOrder::QueryName);
    }
}
