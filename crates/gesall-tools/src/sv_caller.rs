//! Structural-variant detection from discordant read pairs — the role
//! GASV [33] plays in the paper's pipeline ("Large structure variants
//! span thousands of bases or across chromosomes", §2.1). A
//! paired-end-signature caller:
//!
//! * **Deletions**: clusters of pairs whose observed insert size is far
//!   above the library distribution (the reads flank the deleted
//!   segment);
//! * **Inversions**: clusters of pairs in same-strand (FF/RR)
//!   orientation;
//! * **Translocations**: clusters of pairs whose mates map to different
//!   chromosomes.
//!
//! GDPT-wise this is range partitioning with a *large* overlap (SV
//! breakpoints can sit thousands of bases apart), which is why the paper
//! treats SV callers as the hard case for fine-grained partitioning.

use gesall_formats::sam::SamRecord;

/// The kinds of structural events this caller reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SvKind {
    /// Deleted segment between the mates.
    Deletion,
    /// Inverted segment (same-strand pair orientation).
    Inversion,
    /// Mates on different chromosomes.
    Translocation { other_chrom: i32 },
}

/// One structural-variant call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SvCall {
    pub kind: SvKind,
    pub chrom: i32,
    /// Approximate 1-based breakpoint interval.
    pub start: i64,
    pub end: i64,
    /// Supporting discordant pairs.
    pub support: u32,
}

/// Caller parameters.
#[derive(Debug, Clone)]
pub struct SvConfig {
    /// Library insert mean/sd (from alignment-time statistics).
    pub insert_mean: f64,
    pub insert_sd: f64,
    /// Pairs with |tlen| above mean + z·sd are deletion evidence.
    pub deletion_z: f64,
    /// Minimum supporting pairs per call.
    pub min_support: u32,
    /// Pairs whose starts are within this distance cluster together.
    pub cluster_window: i64,
    /// Minimum mapping quality of both reads.
    pub min_mapq: u8,
}

impl Default for SvConfig {
    fn default() -> SvConfig {
        SvConfig {
            insert_mean: 400.0,
            insert_sd: 50.0,
            deletion_z: 6.0,
            min_support: 4,
            cluster_window: 600,
            min_mapq: 30,
        }
    }
}

#[derive(Debug, Clone)]
struct Evidence {
    chrom: i32,
    start: i64,
    end: i64,
}

/// Detect structural variants from primary aligned pairs. `records`
/// should be the full (or per-chromosome) record set; mates are matched
/// by read name.
pub fn call_structural_variants(records: &[SamRecord], cfg: &SvConfig) -> Vec<SvCall> {
    use std::collections::HashMap;
    // Collect one entry per pair (from the leftmost mate's perspective).
    let mut first_seen: HashMap<&str, &SamRecord> = HashMap::new();
    let mut deletions: Vec<Evidence> = Vec::new();
    let mut inversions: Vec<Evidence> = Vec::new();
    let mut translocations: Vec<(i32, i64, i32)> = Vec::new();
    for r in records {
        if !r.flags.is_primary() || !r.is_mapped() || r.flags.is_duplicate() {
            continue;
        }
        let Some(mate) = first_seen.remove(r.name.as_str()) else {
            first_seen.insert(r.name.as_str(), r);
            continue;
        };
        if mate.mapq < cfg.min_mapq || r.mapq < cfg.min_mapq {
            continue;
        }
        let (left, right) = if (mate.ref_id, mate.pos) <= (r.ref_id, r.pos) {
            (mate, r)
        } else {
            (r, mate)
        };
        if left.ref_id != right.ref_id {
            translocations.push((left.ref_id, left.pos, right.ref_id));
            continue;
        }
        let span = right.end_pos() - left.pos + 1;
        let same_strand = left.flags.is_reverse() == right.flags.is_reverse();
        if same_strand {
            inversions.push(Evidence {
                chrom: left.ref_id,
                start: left.pos,
                end: right.end_pos(),
            });
        } else if (span as f64) > cfg.insert_mean + cfg.deletion_z * cfg.insert_sd {
            // The deleted segment sits between the inner mate ends.
            deletions.push(Evidence {
                chrom: left.ref_id,
                start: left.end_pos() + 1,
                end: right.pos - 1,
            });
        }
    }

    let mut calls = Vec::new();
    for (evidence, kind) in [(deletions, SvKind::Deletion), (inversions, SvKind::Inversion)] {
        calls.extend(cluster_evidence(evidence, kind, cfg));
    }
    // Translocations cluster by (chrom, window, other chrom).
    translocations.sort_unstable();
    let mut i = 0;
    while i < translocations.len() {
        let (chrom, pos, other) = translocations[i];
        let mut j = i;
        while j + 1 < translocations.len() {
            let (c2, p2, o2) = translocations[j + 1];
            if c2 == chrom && o2 == other && p2 - translocations[j].1 <= cfg.cluster_window {
                j += 1;
            } else {
                break;
            }
        }
        let support = (j - i + 1) as u32;
        if support >= cfg.min_support {
            calls.push(SvCall {
                kind: SvKind::Translocation { other_chrom: other },
                chrom,
                start: pos,
                end: translocations[j].1,
                support,
            });
        }
        i = j + 1;
    }
    calls.sort_by_key(|c| (c.chrom, c.start, c.end));
    calls
}

fn cluster_evidence(mut evidence: Vec<Evidence>, kind: SvKind, cfg: &SvConfig) -> Vec<SvCall> {
    evidence.sort_by_key(|e| (e.chrom, e.start));
    let mut calls = Vec::new();
    let mut i = 0;
    while i < evidence.len() {
        let mut j = i;
        while j + 1 < evidence.len()
            && evidence[j + 1].chrom == evidence[i].chrom
            && evidence[j + 1].start - evidence[j].start <= cfg.cluster_window
        {
            j += 1;
        }
        let cluster = &evidence[i..=j];
        let support = cluster.len() as u32;
        if support >= cfg.min_support {
            // Breakpoint interval: the intersection-ish median of the
            // supporting pairs.
            let mut starts: Vec<i64> = cluster.iter().map(|e| e.start).collect();
            let mut ends: Vec<i64> = cluster.iter().map(|e| e.end).collect();
            starts.sort_unstable();
            ends.sort_unstable();
            let start = starts[starts.len() / 2];
            let end = ends[ends.len() / 2].max(start);
            calls.push(SvCall {
                kind: kind.clone(),
                chrom: cluster[0].chrom,
                start,
                end,
                support,
            });
        }
        i = j + 1;
    }
    let _ = kind;
    calls
}

#[cfg(test)]
mod tests {
    use super::*;
    use gesall_formats::sam::{Cigar, Flags};

    fn pair(
        name: &str,
        chrom_a: i32,
        pos_a: i64,
        rev_a: bool,
        chrom_b: i32,
        pos_b: i64,
        rev_b: bool,
    ) -> [SamRecord; 2] {
        let mk = |first: bool, chrom: i32, pos: i64, rev: bool| {
            let mut r = SamRecord::unmapped(name, vec![b'A'; 100], vec![30; 100]);
            let mut f = Flags(Flags::PAIRED);
            f.set(Flags::REVERSE, rev);
            f.set(
                if first {
                    Flags::FIRST_IN_PAIR
                } else {
                    Flags::SECOND_IN_PAIR
                },
                true,
            );
            r.flags = f;
            r.ref_id = chrom;
            r.pos = pos;
            r.mapq = 60;
            r.cigar = Cigar::full_match(100);
            r
        };
        [mk(true, chrom_a, pos_a, rev_a), mk(false, chrom_b, pos_b, rev_b)]
    }

    /// A normal FR pair with ~400 bp insert.
    fn normal_pair(name: &str, pos: i64) -> [SamRecord; 2] {
        pair(name, 0, pos, false, 0, pos + 300, true)
    }

    #[test]
    fn clean_library_calls_nothing() {
        let mut records = Vec::new();
        for i in 0..200 {
            records.extend(normal_pair(&format!("n{i}"), 1000 + i * 40));
        }
        let calls = call_structural_variants(&records, &SvConfig::default());
        assert!(calls.is_empty(), "{calls:?}");
    }

    #[test]
    fn deletion_detected_from_stretched_pairs() {
        let mut records = Vec::new();
        for i in 0..200 {
            records.extend(normal_pair(&format!("n{i}"), 1000 + i * 40));
        }
        // 6 pairs spanning a ~2 kb deletion at ~[10100, 12050]:
        // insert ≈ 2400 ≫ 400 + 6·50.
        for k in 0..6 {
            records.extend(pair(
                &format!("d{k}"),
                0,
                9900 + k * 20,
                false,
                0,
                12_200 + k * 20,
                true,
            ));
        }
        let calls = call_structural_variants(&records, &SvConfig::default());
        assert_eq!(calls.len(), 1, "{calls:?}");
        let c = &calls[0];
        assert_eq!(c.kind, SvKind::Deletion);
        assert_eq!(c.support, 6);
        assert!(
            (c.start - 10_050).abs() < 200 && (c.end - 12_250).abs() < 200,
            "breakpoints {c:?}"
        );
    }

    #[test]
    fn inversion_detected_from_same_strand_pairs() {
        let mut records = Vec::new();
        for i in 0..100 {
            records.extend(normal_pair(&format!("n{i}"), 500 + i * 60));
        }
        for k in 0..5 {
            // FF orientation.
            records.extend(pair(&format!("i{k}"), 0, 5000 + k * 30, false, 0, 5400 + k * 30, false));
        }
        let calls = call_structural_variants(&records, &SvConfig::default());
        assert_eq!(calls.len(), 1, "{calls:?}");
        assert_eq!(calls[0].kind, SvKind::Inversion);
        assert_eq!(calls[0].support, 5);
    }

    #[test]
    fn translocation_detected_from_cross_chromosome_pairs() {
        let mut records = Vec::new();
        for i in 0..100 {
            records.extend(normal_pair(&format!("n{i}"), 500 + i * 60));
        }
        for k in 0..4 {
            records.extend(pair(&format!("t{k}"), 0, 8000 + k * 50, false, 1, 2000, true));
        }
        let calls = call_structural_variants(&records, &SvConfig::default());
        assert_eq!(calls.len(), 1, "{calls:?}");
        assert!(matches!(
            calls[0].kind,
            SvKind::Translocation { other_chrom: 1 }
        ));
        assert_eq!(calls[0].support, 4);
    }

    #[test]
    fn low_support_and_low_mapq_suppressed() {
        let mut records = Vec::new();
        for i in 0..50 {
            records.extend(normal_pair(&format!("n{i}"), 500 + i * 60));
        }
        // Only 2 supporting pairs (< min_support 4).
        for k in 0..2 {
            records.extend(pair(&format!("d{k}"), 0, 9000 + k * 10, false, 0, 12_000, true));
        }
        // 6 pairs but low mapq.
        for k in 0..6 {
            let mut p = pair(&format!("q{k}"), 0, 20_000 + k * 10, false, 0, 24_000, true);
            p[0].mapq = 5;
            records.extend(p);
        }
        let calls = call_structural_variants(&records, &SvConfig::default());
        assert!(calls.is_empty(), "{calls:?}");
    }

    #[test]
    fn duplicates_do_not_add_support() {
        let mut records = Vec::new();
        for i in 0..50 {
            records.extend(normal_pair(&format!("n{i}"), 500 + i * 60));
        }
        for k in 0..6 {
            let mut p = pair(&format!("d{k}"), 0, 9000 + k * 10, false, 0, 12_000, true);
            if k >= 3 {
                p[0].flags.set(Flags::DUPLICATE, true);
                p[1].flags.set(Flags::DUPLICATE, true);
            }
            records.extend(p);
        }
        // Only 3 non-duplicate supporters < min_support.
        let calls = call_structural_variants(&records, &SvConfig::default());
        assert!(calls.is_empty(), "{calls:?}");
    }
}
