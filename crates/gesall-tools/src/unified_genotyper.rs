//! UnifiedGenotyper (paper Table 2, step v1): pileup-based diploid
//! small-variant calling — SNPs and short indels.
//!
//! GDPT-wise this is the paper's example of **non-overlapping range
//! partitioning by chromosome** (§3.2): each chromosome's reads can be
//! genotyped independently.

use crate::pileup::{IndelAllele, Pileup, PileupColumn, PileupFilter};
use crate::refview::RefView;
use gesall_formats::vcf::{Genotype, VariantRecord};
use gesall_formats::sam::SamRecord;

/// Caller parameters.
#[derive(Debug, Clone)]
pub struct GenotyperConfig {
    pub min_depth: u32,
    pub min_alt_count: u32,
    /// Minimum Phred-scaled site quality to emit a call.
    pub min_qual: f64,
    /// Heterozygosity prior (human ≈ 1e-3).
    pub het_prior: f64,
    pub pileup: PileupFilter,
    /// Genotype the region in tiles of this many bases (bounds pileup
    /// memory on long chromosomes).
    pub tile: usize,
}

impl Default for GenotyperConfig {
    fn default() -> GenotyperConfig {
        GenotyperConfig {
            min_depth: 4,
            min_alt_count: 2,
            min_qual: 30.0,
            het_prior: 1e-3,
            pileup: PileupFilter::default(),
            tile: 1 << 16,
        }
    }
}

/// log10 of the three diploid genotype posteriors (RR, RA, AA) from
/// allele counts and mean base qualities.
fn genotype_posteriors(
    ref_count: u32,
    alt_count: u32,
    ref_err: f64,
    alt_err: f64,
    het_prior: f64,
) -> [f64; 3] {
    let e_ref = ref_err.clamp(1e-6, 0.5);
    let e_alt = alt_err.clamp(1e-6, 0.5);
    let rc = ref_count as f64;
    let ac = alt_count as f64;
    // log10 likelihoods.
    let l_rr = rc * (1.0 - e_ref).log10() + ac * (e_alt / 3.0).log10();
    let l_ra = rc * 0.5f64.log10() + ac * 0.5f64.log10();
    let l_aa = rc * (e_ref / 3.0).log10() + ac * (1.0 - e_alt).log10();
    // Priors.
    let p_ra = het_prior;
    let p_aa = het_prior / 2.0;
    let p_rr = 1.0 - p_ra - p_aa;
    let mut post = [
        l_rr + p_rr.log10(),
        l_ra + p_ra.log10(),
        l_aa + p_aa.log10(),
    ];
    // Normalize in log space.
    let max = post.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let sum: f64 = post.iter().map(|&x| 10f64.powf(x - max)).sum();
    let log_sum = max + sum.log10();
    for p in &mut post {
        *p -= log_sum;
    }
    post
}

/// Phred-scaled two-sided Fisher's exact test of strand bias on the 2×2
/// table [[ref_fwd, ref_rev], [alt_fwd, alt_rev]].
pub fn fisher_strand(ref_fwd: u32, ref_rev: u32, alt_fwd: u32, alt_rev: u32) -> f64 {
    let (a, b, c, d) = (
        ref_fwd as usize,
        ref_rev as usize,
        alt_fwd as usize,
        alt_rev as usize,
    );
    let n = a + b + c + d;
    if n == 0 || (a + b == 0) || (c + d == 0) {
        return 0.0;
    }
    // log-factorials.
    let lf: Vec<f64> = {
        let mut v = vec![0.0; n + 1];
        for i in 1..=n {
            v[i] = v[i - 1] + (i as f64).ln();
        }
        v
    };
    // Fixed marginals of the observed table.
    let (r1, r2, c1, c2) = (a + b, c + d, a + c, b + d);
    let log_hyper = |x: usize| -> f64 {
        // Cell (1,1) = x; the rest follow from the marginals.
        if x > r1 || x > c1 {
            return f64::NEG_INFINITY;
        }
        let b_ = r1 - x;
        let c_ = c1 - x;
        if c_ > r2 || b_ > c2 {
            return f64::NEG_INFINITY;
        }
        let d_ = r2 - c_;
        lf[r1] + lf[r2] + lf[c1] + lf[c2] - lf[n] - lf[x] - lf[b_] - lf[c_] - lf[d_]
    };
    let observed = log_hyper(a);
    // Two-sided: sum of all tables at most as probable as observed.
    let lo = c1.saturating_sub(r2);
    let hi = r1.min(c1);
    let mut p = 0.0f64;
    for x in lo..=hi {
        let lp = log_hyper(x);
        if lp <= observed + 1e-9 {
            p += lp.exp();
        }
    }
    let p = p.clamp(1e-300, 1.0);
    -10.0 * p.log10()
}

fn mean_err_from_quals(qual_sum: u64, count: u32) -> f64 {
    if count == 0 {
        return 0.01;
    }
    let mean_q = qual_sum as f64 / count as f64;
    10f64.powf(-mean_q / 10.0)
}

/// Try to call a SNP at one column. `pos` is 1-based.
fn call_snp(
    col: &PileupColumn,
    chrom: &str,
    pos: i64,
    ref_base: u8,
    cfg: &GenotyperConfig,
) -> Option<VariantRecord> {
    if col.depth < cfg.min_depth {
        return None;
    }
    let (alt, alt_count) = col.top_alt(ref_base)?;
    if alt_count < cfg.min_alt_count {
        return None;
    }
    let ref_count = col.count_of(ref_base);
    let bi = |b: u8| match b {
        b'A' => 0,
        b'C' => 1,
        b'G' => 2,
        _ => 3,
    };
    let ref_err = mean_err_from_quals(col.qual_sums[bi(ref_base)], ref_count);
    let alt_err = mean_err_from_quals(col.qual_sums[bi(alt)], alt_count);
    let post = genotype_posteriors(ref_count, alt_count, ref_err, alt_err, cfg.het_prior);
    let qual = -10.0 * log10_p_from_log10(post[0]);
    if qual < cfg.min_qual {
        return None;
    }
    let genotype = if post[2] > post[1] {
        Genotype::HomAlt
    } else {
        Genotype::Het
    };
    let fs = fisher_strand(
        col.strand_counts[bi(ref_base)][0],
        col.strand_counts[bi(ref_base)][1],
        col.strand_counts[bi(alt)][0],
        col.strand_counts[bi(alt)][1],
    );
    Some(VariantRecord {
        chrom: chrom.to_string(),
        pos,
        ref_allele: (ref_base as char).to_string(),
        alt_allele: (alt as char).to_string(),
        qual: qual.min(3000.0),
        genotype,
        depth: col.depth,
        mapping_quality: col.rms_mapq(),
        fisher_strand: fs,
        allele_balance: alt_count as f64 / (ref_count + alt_count).max(1) as f64,
    })
}

/// log10(P) where the input is already log10(P) — clamp to avoid -inf
/// when the posterior saturates at 1.
fn log10_p_from_log10(log10_p: f64) -> f64 {
    log10_p.max(-300.0)
}

/// Try to call an indel anchored at `pos`.
fn call_indel(
    col: &PileupColumn,
    chrom: &str,
    pos: i64,
    reference: RefView<'_>,
    ref_id: i32,
    cfg: &GenotyperConfig,
) -> Option<VariantRecord> {
    let (allele, count) = col.top_indel()?;
    if count < cfg.min_alt_count {
        return None;
    }
    // Depth context: reads aligned at the anchor (indel carriers included
    // in depth only via their M bases, so combine).
    let depth = col.depth.max(count);
    if depth < cfg.min_depth {
        return None;
    }
    let ratio = count as f64 / depth as f64;
    if ratio < 0.15 {
        return None;
    }
    // Binary allele likelihood with a fixed indel error rate.
    let e = 0.01f64;
    let wc = count as f64;
    let wr = (depth - count) as f64;
    let l_rr = wr * (1.0 - e).log10() + wc * e.log10();
    let l_ra = (wr + wc) * 0.5f64.log10();
    let l_aa = wr * e.log10() + wc * (1.0 - e).log10();
    let p_ra = cfg.het_prior / 8.0; // indels rarer than SNPs
    let p_aa = p_ra / 2.0;
    let p_rr = 1.0 - p_ra - p_aa;
    let mut post = [
        l_rr + p_rr.log10(),
        l_ra + p_ra.log10(),
        l_aa + p_aa.log10(),
    ];
    let max = post.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let sum: f64 = post.iter().map(|&x| 10f64.powf(x - max)).sum();
    let log_sum = max + sum.log10();
    for p in &mut post {
        *p -= log_sum;
    }
    let qual = -10.0 * log10_p_from_log10(post[0]);
    if qual < cfg.min_qual {
        return None;
    }
    let genotype = if post[2] > post[1] {
        Genotype::HomAlt
    } else {
        Genotype::Het
    };
    let anchor_base = reference.base(ref_id, pos)? as char;
    let (ref_allele, alt_allele) = match allele {
        IndelAllele::Ins(seq) => (
            anchor_base.to_string(),
            format!("{anchor_base}{}", String::from_utf8_lossy(seq)),
        ),
        IndelAllele::Del(len) => {
            let deleted = reference.slice(ref_id, pos + 1, pos + *len as i64);
            if deleted.len() != *len as usize {
                return None; // deletion runs past the chromosome
            }
            (
                format!("{anchor_base}{}", String::from_utf8_lossy(deleted)),
                anchor_base.to_string(),
            )
        }
    };
    Some(VariantRecord {
        chrom: chrom.to_string(),
        pos,
        ref_allele,
        alt_allele,
        qual: qual.min(3000.0),
        genotype,
        depth,
        mapping_quality: col.rms_mapq(),
        fisher_strand: 0.0,
        allele_balance: ratio,
    })
}

/// Genotype one region `[start, end]` (1-based inclusive) of one
/// chromosome. `records` should be the reads overlapping the region
/// (extra reads are ignored by the pileup).
pub fn call_region(
    records: &[SamRecord],
    ref_id: i32,
    chrom: &str,
    start: i64,
    end: i64,
    reference: RefView<'_>,
    cfg: &GenotyperConfig,
) -> Vec<VariantRecord> {
    let mut calls = Vec::new();
    let mut tile_start = start;
    while tile_start <= end {
        let tile_end = (tile_start + cfg.tile as i64 - 1).min(end);
        let pileup = Pileup::build(records, ref_id, tile_start, tile_end, &cfg.pileup);
        for (off, col) in pileup.columns.iter().enumerate() {
            let pos = tile_start + off as i64;
            let Some(ref_base) = reference.base(ref_id, pos) else {
                continue;
            };
            if let Some(v) = call_snp(col, chrom, pos, ref_base, cfg) {
                calls.push(v);
            }
            if let Some(v) = call_indel(col, chrom, pos, reference, ref_id, cfg) {
                calls.push(v);
            }
        }
        tile_start = tile_end + 1;
    }
    calls
}

/// Genotype whole chromosomes: `chroms[i]` names reference id `i`.
pub fn unified_genotyper(
    records: &[SamRecord],
    chroms: &[String],
    reference: RefView<'_>,
    cfg: &GenotyperConfig,
) -> Vec<VariantRecord> {
    let mut calls = Vec::new();
    for (ref_id, name) in chroms.iter().enumerate() {
        let len = reference.chrom_len(ref_id as i32) as i64;
        if len == 0 {
            continue;
        }
        calls.extend(call_region(
            records,
            ref_id as i32,
            name,
            1,
            len,
            reference,
            cfg,
        ));
    }
    calls
}

#[cfg(test)]
mod tests {
    use super::*;
    use gesall_formats::sam::{Cigar, Flags};

    fn read(name: &str, pos: i64, seq: &[u8], reverse: bool) -> SamRecord {
        let mut r = SamRecord::unmapped(name, seq.to_vec(), vec![35; seq.len()]);
        let mut f = Flags(0);
        f.set(Flags::REVERSE, reverse);
        r.flags = f;
        r.ref_id = 0;
        r.pos = pos;
        r.mapq = 60;
        r.cigar = Cigar::full_match(seq.len() as u32);
        r
    }

    fn reference() -> Vec<Vec<u8>> {
        vec![(0..200).map(|i| b"ACGT"[i % 4]).collect()]
    }

    fn cfg() -> GenotyperConfig {
        GenotyperConfig::default()
    }

    #[test]
    fn hom_snp_called() {
        let seqs = reference();
        let rv = RefView::new(&seqs);
        // All 12 reads carry T at reference position 21 (ref A).
        let reads: Vec<SamRecord> = (0..12)
            .map(|k| {
                let mut s = seqs[0][10..60].to_vec();
                s[10] = b'T';
                read(&format!("r{k}"), 11, &s, k % 2 == 0)
            })
            .collect();
        let calls = call_region(&reads, 0, "chr1", 1, 200, rv, &cfg());
        assert_eq!(calls.len(), 1, "calls: {calls:?}");
        let v = &calls[0];
        assert_eq!(v.pos, 21);
        assert_eq!(v.ref_allele, "A");
        assert_eq!(v.alt_allele, "T");
        assert_eq!(v.genotype, Genotype::HomAlt);
        assert!(v.qual > 100.0);
        assert_eq!(v.depth, 12);
        assert!((v.allele_balance - 1.0).abs() < 1e-9);
    }

    #[test]
    fn het_snp_called() {
        let seqs = reference();
        let rv = RefView::new(&seqs);
        let reads: Vec<SamRecord> = (0..16)
            .map(|k| {
                let mut s = seqs[0][10..60].to_vec();
                if k % 2 == 0 {
                    s[10] = b'T';
                }
                read(&format!("r{k}"), 11, &s, k % 4 == 0)
            })
            .collect();
        let calls = call_region(&reads, 0, "chr1", 1, 200, rv, &cfg());
        assert_eq!(calls.len(), 1);
        assert_eq!(calls[0].genotype, Genotype::Het);
        assert!((calls[0].allele_balance - 0.5).abs() < 0.1);
    }

    #[test]
    fn sequencing_noise_not_called() {
        let seqs = reference();
        let rv = RefView::new(&seqs);
        // One read in 20 has an error at position 21.
        let reads: Vec<SamRecord> = (0..20)
            .map(|k| {
                let mut s = seqs[0][10..60].to_vec();
                if k == 0 {
                    s[10] = b'T';
                }
                read(&format!("r{k}"), 11, &s, false)
            })
            .collect();
        let calls = call_region(&reads, 0, "chr1", 1, 200, rv, &cfg());
        assert!(calls.is_empty(), "noise must not be called: {calls:?}");
    }

    #[test]
    fn insertion_called_with_datagen_compatible_alleles() {
        let seqs = reference();
        let rv = RefView::new(&seqs);
        // 10 reads with a GG insertion after reference position 20.
        let reads: Vec<SamRecord> = (0..10)
            .map(|k| {
                let mut s = seqs[0][10..40].to_vec(); // 30 bases: 10M..
                s.splice(10..10, [b'G', b'G']);
                let mut r = read(&format!("r{k}"), 11, &s, false);
                r.cigar = Cigar::parse("10M2I20M").unwrap();
                r
            })
            .collect();
        let calls = call_region(&reads, 0, "chr1", 1, 200, rv, &cfg());
        let ins = calls
            .iter()
            .find(|v| v.alt_allele.len() > v.ref_allele.len())
            .expect("insertion called");
        assert_eq!(ins.pos, 20);
        assert_eq!(ins.ref_allele, seqs[0][19..20].iter().map(|&b| b as char).collect::<String>());
        assert_eq!(ins.alt_allele.len(), 3);
        assert_eq!(ins.genotype, Genotype::HomAlt);
    }

    #[test]
    fn deletion_called() {
        let seqs = reference();
        let rv = RefView::new(&seqs);
        let reads: Vec<SamRecord> = (0..10)
            .map(|k| {
                let s: Vec<u8> = [&seqs[0][10..20], &seqs[0][23..43]].concat();
                let mut r = read(&format!("r{k}"), 11, &s, false);
                r.cigar = Cigar::parse("10M3D20M").unwrap();
                r
            })
            .collect();
        let calls = call_region(&reads, 0, "chr1", 1, 200, rv, &cfg());
        let del = calls
            .iter()
            .find(|v| v.ref_allele.len() > v.alt_allele.len())
            .expect("deletion called");
        assert_eq!(del.pos, 20);
        assert_eq!(del.ref_allele.len(), 4);
        assert_eq!(del.alt_allele.len(), 1);
    }

    #[test]
    fn low_depth_suppressed() {
        let seqs = reference();
        let rv = RefView::new(&seqs);
        let mut s = seqs[0][10..60].to_vec();
        s[10] = b'T';
        let reads = vec![read("a", 11, &s, false), read("b", 11, &s, true)];
        let calls = call_region(&reads, 0, "chr1", 1, 200, rv, &cfg());
        assert!(calls.is_empty());
    }

    #[test]
    fn fisher_strand_detects_bias() {
        // Unbiased: alt on both strands.
        let unbiased = fisher_strand(20, 20, 10, 10);
        // Heavily biased: all alt reads on one strand.
        let biased = fisher_strand(20, 20, 20, 0);
        assert!(biased > unbiased + 6.0, "biased {biased} vs {unbiased}");
        // Two-sided p for the unbiased table is ~0.5–1.0 → FS ≤ ~3.
        assert!(unbiased < 4.0, "unbiased {unbiased}");
        assert!(biased > 10.0, "biased {biased}");
        assert_eq!(fisher_strand(0, 0, 0, 0), 0.0);
    }

    #[test]
    fn genotype_posteriors_sane() {
        // 15 ref, 0 alt → RR wins decisively.
        let p = genotype_posteriors(15, 0, 0.001, 0.001, 1e-3);
        assert!(p[0] > p[1] && p[0] > p[2]);
        // 8 ref, 8 alt → RA.
        let p = genotype_posteriors(8, 8, 0.001, 0.001, 1e-3);
        assert!(p[1] > p[0] && p[1] > p[2]);
        // 0 ref, 15 alt → AA.
        let p = genotype_posteriors(0, 15, 0.001, 0.001, 1e-3);
        assert!(p[2] > p[0] && p[2] > p[1]);
    }
}
