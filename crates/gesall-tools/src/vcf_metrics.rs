//! Variant-set comparison metrics — the paper's Tables 9/10 and the
//! GIAB-style precision/sensitivity evaluation of Appendix B.3.

use gesall_formats::vcf::{Genotype, VariantRecord};
use std::collections::HashSet;

/// A site identity usable as a set element.
pub type SiteKey = (String, i64, String, String);

/// The three-way split of two call sets (paper's Intersection / Hybrid /
/// Serial labels).
#[derive(Debug, Clone)]
pub struct VariantSetSplit {
    /// Calls present in both sets (taken from set `a`).
    pub intersection: Vec<VariantRecord>,
    /// Calls only in `a`.
    pub only_a: Vec<VariantRecord>,
    /// Calls only in `b`.
    pub only_b: Vec<VariantRecord>,
}

/// Split two call sets by site identity.
pub fn split_call_sets(a: &[VariantRecord], b: &[VariantRecord]) -> VariantSetSplit {
    let keys_a: HashSet<SiteKey> = a.iter().map(|v| v.site_key()).collect();
    let keys_b: HashSet<SiteKey> = b.iter().map(|v| v.site_key()).collect();
    VariantSetSplit {
        intersection: a
            .iter()
            .filter(|v| keys_b.contains(&v.site_key()))
            .cloned()
            .collect(),
        only_a: a
            .iter()
            .filter(|v| !keys_b.contains(&v.site_key()))
            .cloned()
            .collect(),
        only_b: b
            .iter()
            .filter(|v| !keys_a.contains(&v.site_key()))
            .cloned()
            .collect(),
    }
}

/// Aggregate quality metrics of one variant set — the columns of the
/// paper's Tables 9/10.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariantSetMetrics {
    pub n: usize,
    pub mean_qual: f64,
    /// Mean RMS mapping quality (MQ).
    pub mean_mq: f64,
    /// Mean read depth (DP).
    pub mean_dp: f64,
    /// Mean Fisher strand (FS).
    pub mean_fs: f64,
    /// Mean allele balance (AB).
    pub mean_ab: f64,
    /// Transition/transversion ratio (≈2 for good human call sets).
    pub ti_tv: f64,
    /// Het/hom-alt genotype ratio.
    pub het_hom: f64,
}

/// Compute the metric row for a variant set.
pub fn variant_set_metrics(vs: &[VariantRecord]) -> VariantSetMetrics {
    let n = vs.len();
    let nf = n.max(1) as f64;
    let mean = |f: &dyn Fn(&VariantRecord) -> f64| vs.iter().map(f).sum::<f64>() / nf + 0.0;
    let ti = vs
        .iter()
        .filter(|v| v.is_transition() == Some(true))
        .count() as f64;
    let tv = vs
        .iter()
        .filter(|v| v.is_transition() == Some(false))
        .count() as f64;
    let het = vs.iter().filter(|v| v.genotype == Genotype::Het).count() as f64;
    let hom = vs
        .iter()
        .filter(|v| v.genotype == Genotype::HomAlt)
        .count() as f64;
    VariantSetMetrics {
        n,
        mean_qual: mean(&|v| v.qual),
        mean_mq: mean(&|v| v.mapping_quality),
        mean_dp: mean(&|v| v.depth as f64),
        mean_fs: mean(&|v| v.fisher_strand),
        mean_ab: mean(&|v| v.allele_balance),
        ti_tv: if tv > 0.0 { ti / tv } else { ti },
        het_hom: if hom > 0.0 { het / hom } else { het },
    }
}

/// Precision/sensitivity of `calls` against a truth set of site keys.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecisionSensitivity {
    pub true_positives: usize,
    pub false_positives: usize,
    pub false_negatives: usize,
    pub precision: f64,
    pub sensitivity: f64,
}

/// Score calls against truth (both matched by exact site key).
pub fn precision_sensitivity(
    calls: &[VariantRecord],
    truth: &HashSet<SiteKey>,
) -> PrecisionSensitivity {
    let call_keys: HashSet<SiteKey> = calls.iter().map(|v| v.site_key()).collect();
    let tp = call_keys.intersection(truth).count();
    let fp = call_keys.difference(truth).count();
    let fn_ = truth.difference(&call_keys).count();
    PrecisionSensitivity {
        true_positives: tp,
        false_positives: fp,
        false_negatives: fn_,
        precision: if tp + fp > 0 {
            tp as f64 / (tp + fp) as f64
        } else {
            1.0
        },
        sensitivity: if tp + fn_ > 0 {
            tp as f64 / (tp + fn_) as f64
        } else {
            1.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var(pos: i64, r: &str, a: &str, qual: f64, gt: Genotype) -> VariantRecord {
        VariantRecord {
            chrom: "chr1".into(),
            pos,
            ref_allele: r.into(),
            alt_allele: a.into(),
            qual,
            genotype: gt,
            depth: 30,
            mapping_quality: 55.0,
            fisher_strand: 1.0,
            allele_balance: 0.5,
        }
    }

    #[test]
    fn split_three_ways() {
        let a = vec![
            var(1, "A", "G", 50.0, Genotype::Het),
            var(2, "C", "T", 60.0, Genotype::Het),
        ];
        let b = vec![
            var(2, "C", "T", 61.0, Genotype::Het),
            var(3, "G", "A", 70.0, Genotype::HomAlt),
        ];
        let s = split_call_sets(&a, &b);
        assert_eq!(s.intersection.len(), 1);
        assert_eq!(s.intersection[0].pos, 2);
        assert_eq!(s.only_a.len(), 1);
        assert_eq!(s.only_a[0].pos, 1);
        assert_eq!(s.only_b.len(), 1);
        assert_eq!(s.only_b[0].pos, 3);
    }

    #[test]
    fn same_pos_different_allele_is_discordant() {
        let a = vec![var(5, "A", "G", 50.0, Genotype::Het)];
        let b = vec![var(5, "A", "T", 50.0, Genotype::Het)];
        let s = split_call_sets(&a, &b);
        assert!(s.intersection.is_empty());
        assert_eq!(s.only_a.len(), 1);
        assert_eq!(s.only_b.len(), 1);
    }

    #[test]
    fn metrics_computation() {
        let vs = vec![
            var(1, "A", "G", 40.0, Genotype::Het),    // transition
            var(2, "C", "T", 60.0, Genotype::Het),    // transition
            var(3, "A", "C", 80.0, Genotype::HomAlt), // transversion
            var(4, "AT", "A", 20.0, Genotype::Het),   // indel: no ti/tv
        ];
        let m = variant_set_metrics(&vs);
        assert_eq!(m.n, 4);
        assert!((m.mean_qual - 50.0).abs() < 1e-9);
        assert!((m.ti_tv - 2.0).abs() < 1e-9);
        assert!((m.het_hom - 3.0).abs() < 1e-9);
        assert!((m.mean_dp - 30.0).abs() < 1e-9);
    }

    #[test]
    fn metrics_empty_set() {
        let m = variant_set_metrics(&[]);
        assert_eq!(m.n, 0);
        assert_eq!(m.mean_qual, 0.0);
        assert_eq!(m.ti_tv, 0.0);
    }

    #[test]
    fn precision_sensitivity_basic() {
        let calls = vec![
            var(1, "A", "G", 50.0, Genotype::Het),
            var(2, "C", "T", 50.0, Genotype::Het),
            var(3, "G", "A", 50.0, Genotype::Het), // FP
        ];
        let truth: HashSet<SiteKey> = [
            ("chr1".to_string(), 1i64, "A".to_string(), "G".to_string()),
            ("chr1".to_string(), 2, "C".to_string(), "T".to_string()),
            ("chr1".to_string(), 9, "T".to_string(), "C".to_string()), // FN
        ]
        .into_iter()
        .collect();
        let ps = precision_sensitivity(&calls, &truth);
        assert_eq!(ps.true_positives, 2);
        assert_eq!(ps.false_positives, 1);
        assert_eq!(ps.false_negatives, 1);
        assert!((ps.precision - 2.0 / 3.0).abs() < 1e-9);
        assert!((ps.sensitivity - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_edge_cases() {
        let ps = precision_sensitivity(&[], &HashSet::new());
        assert_eq!(ps.precision, 1.0);
        assert_eq!(ps.sensitivity, 1.0);
    }
}
