//! Property-based tests of the analysis tools' semantic invariants.

use gesall_formats::sam::cigar::Cigar;
use gesall_formats::sam::{Flags, SamHeader, SamRecord};
use gesall_tools::clean_sam::clean_sam;
use gesall_tools::fix_mate::fix_mate_information;
use gesall_tools::haplotype_caller::{call_range, HaplotypeCallerConfig};
use gesall_tools::mark_duplicates::{mark_duplicates, pair_key};
use gesall_tools::refview::RefView;
use gesall_tools::sort_sam::{is_coordinate_sorted, sort_sam};
use proptest::prelude::*;
use std::collections::HashMap;

/// A random mapped paired read.
fn arb_pair() -> impl Strategy<Value = (i64, i64, bool, u8)> {
    // (fwd pos, fragment len, hom-strand?, quality)
    (1i64..5000, 200i64..600, any::<bool>(), 10u8..40)
}

fn build_pair(name: &str, pos: i64, frag: i64, qual: u8) -> [SamRecord; 2] {
    let mk = |first: bool, p: i64, rev: bool| {
        let mut r = SamRecord::unmapped(name, vec![b'A'; 100], vec![qual; 100]);
        let mut f = Flags(Flags::PAIRED);
        f.set(
            if first {
                Flags::FIRST_IN_PAIR
            } else {
                Flags::SECOND_IN_PAIR
            },
            true,
        );
        f.set(Flags::REVERSE, rev);
        r.flags = f;
        r.ref_id = 0;
        r.pos = p;
        r.mapq = 60;
        r.cigar = Cigar::full_match(100);
        r
    };
    [mk(true, pos, false), mk(false, pos + frag - 100, true)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn markdup_keeps_exactly_one_pair_per_duplicate_group(
        pairs in proptest::collection::vec(arb_pair(), 2..60),
        seed in any::<u64>(),
    ) {
        let mut records = Vec::new();
        for (i, (pos, frag, _, qual)) in pairs.iter().enumerate() {
            records.extend(build_pair(&format!("p{i}"), *pos, *frag, *qual));
        }
        mark_duplicates(&mut records, seed);
        // Group complete pairs by their compound key; exactly one pair in
        // each group must be unmarked.
        let mut by_name: HashMap<&str, Vec<&SamRecord>> = HashMap::new();
        for r in &records {
            by_name.entry(r.name.as_str()).or_default().push(r);
        }
        let mut groups: HashMap<_, (usize, usize)> = HashMap::new();
        for reads in by_name.values() {
            prop_assert_eq!(reads.len(), 2);
            // Both reads of a pair get the same duplicate flag.
            prop_assert_eq!(
                reads[0].flags.is_duplicate(),
                reads[1].flags.is_duplicate()
            );
            let key = pair_key(reads[0], reads[1]);
            let e = groups.entry(key).or_insert((0, 0));
            e.0 += 1;
            if !reads[0].flags.is_duplicate() {
                e.1 += 1;
            }
        }
        for (key, (total, kept)) in groups {
            prop_assert_eq!(kept, 1, "group {:?} of {} pairs kept {}", key, total, kept);
        }
    }

    #[test]
    fn markdup_marks_are_input_order_insensitive_in_count(
        pairs in proptest::collection::vec(arb_pair(), 2..40),
        seed in any::<u64>(),
        rotate in 0usize..40,
    ) {
        let mut records = Vec::new();
        for (i, (pos, frag, _, qual)) in pairs.iter().enumerate() {
            records.extend(build_pair(&format!("p{i}"), *pos, *frag, *qual));
        }
        let mut rotated = records.clone();
        let shift = (rotate * 2) % rotated.len().max(1);
        rotated.rotate_left(shift);
        mark_duplicates(&mut records, seed);
        mark_duplicates(&mut rotated, seed);
        // The NUMBER of duplicates is invariant (which pair survives a
        // tie may differ — that is the paper's nondeterminism).
        let count = |rs: &[SamRecord]| rs.iter().filter(|r| r.flags.is_duplicate()).count();
        prop_assert_eq!(count(&records), count(&rotated));
    }

    #[test]
    fn clean_sam_output_always_validates(
        positions in proptest::collection::vec((1i64..1200, 20u32..120), 1..40),
    ) {
        // Chromosome of 1000 bp; many reads overhang or fall outside.
        let seqs = vec![vec![b'A'; 1000]];
        let mut records: Vec<SamRecord> = positions
            .iter()
            .enumerate()
            .map(|(i, (pos, len))| {
                let mut r = SamRecord::unmapped(
                    format!("r{i}"),
                    vec![b'C'; *len as usize],
                    vec![30; *len as usize],
                );
                r.flags = Flags(0);
                r.ref_id = 0;
                r.pos = *pos;
                r.mapq = 50;
                r.cigar = Cigar::full_match(*len);
                r
            })
            .collect();
        clean_sam(&mut records, RefView::new(&seqs));
        for r in &records {
            prop_assert!(r.validate().is_ok(), "{r:?}");
            if r.is_mapped() {
                prop_assert!(r.end_pos() <= 1000, "{r:?}");
                prop_assert!(r.pos >= 1);
            }
        }
    }

    #[test]
    fn fix_mate_makes_mate_fields_consistent(
        pairs in proptest::collection::vec(arb_pair(), 1..30),
    ) {
        let mut records = Vec::new();
        for (i, (pos, frag, _, qual)) in pairs.iter().enumerate() {
            let mut p = build_pair(&format!("p{i}"), *pos, *frag, *qual);
            // Stale garbage in the mate fields.
            p[0].mate_pos = 1;
            p[1].mate_ref_id = 7;
            p[0].tlen = -99;
            records.extend(p);
        }
        fix_mate_information(&mut records);
        let mut by_name: HashMap<&str, Vec<&SamRecord>> = HashMap::new();
        for r in &records {
            by_name.entry(r.name.as_str()).or_default().push(r);
        }
        for reads in by_name.values() {
            let (a, b) = (reads[0], reads[1]);
            prop_assert_eq!(a.mate_pos, b.pos);
            prop_assert_eq!(b.mate_pos, a.pos);
            prop_assert_eq!(a.mate_ref_id, b.ref_id);
            prop_assert_eq!(a.tlen, -b.tlen);
            prop_assert_eq!(a.flags.is_mate_reverse(), b.flags.is_reverse());
        }
    }

    #[test]
    fn sort_sam_sorts_and_preserves_multiset(
        pairs in proptest::collection::vec(arb_pair(), 1..40),
    ) {
        let mut records = Vec::new();
        for (i, (pos, frag, _, qual)) in pairs.iter().enumerate() {
            records.extend(build_pair(&format!("p{i}"), *pos, *frag, *qual));
        }
        let mut header = SamHeader::default();
        let mut sorted = records.clone();
        sort_sam(&mut header, &mut sorted);
        prop_assert!(is_coordinate_sorted(&sorted));
        // Same multiset.
        let key = |r: &SamRecord| (r.name.clone(), r.pos, r.flags.0);
        let mut a: Vec<_> = records.iter().map(key).collect();
        let mut b: Vec<_> = sorted.iter().map(key).collect();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
        // Idempotent.
        let again = {
            let mut s = sorted.clone();
            sort_sam(&mut header, &mut s);
            s
        };
        prop_assert_eq!(again, sorted);
    }

    #[test]
    fn haplotype_caller_windows_respect_bounds(
        noisy_stretches in proptest::collection::vec((100i64..3500, 1usize..8), 1..4),
    ) {
        // Plant noisy read stacks; every produced window must respect the
        // configured min/max (+padding) lengths and lie on the chromosome.
        let reference = vec![(0..4000).map(|i| b"ACGT"[i % 4]).collect::<Vec<u8>>()];
        let mut records = Vec::new();
        let mut serial = 0;
        for (start, depth) in &noisy_stretches {
            for d in 0..(*depth + 4) {
                let s = (*start + d as i64 * 7).min(3900);
                let mut seq: Vec<u8> =
                    reference[0][(s - 1) as usize..(s - 1) as usize + 80].to_vec();
                for j in (5..75).step_by(6) {
                    seq[j] = if seq[j] == b'A' { b'C' } else { b'A' };
                }
                let mut r = SamRecord::unmapped(format!("n{serial}"), seq, vec![35; 80]);
                serial += 1;
                r.flags = Flags(0);
                r.ref_id = 0;
                r.pos = s;
                r.mapq = 60;
                r.cigar = Cigar::full_match(80);
                records.push(r);
            }
        }
        let cfg = HaplotypeCallerConfig::default();
        let res = call_range(&records, 0, "chr1", 1, 4000, RefView::new(&reference), &cfg);
        for w in &res.windows {
            prop_assert!(w.start >= 1);
            prop_assert!(w.len() >= cfg.min_window, "{w:?}");
            prop_assert!(
                w.len() <= cfg.max_window + 2 * cfg.pad + cfg.quiet_gap + 2,
                "window too long: {w:?}"
            );
        }
        // Windows are emitted in order.
        prop_assert!(res.windows.windows(2).all(|p| p[0].start <= p[1].start));
    }
}
