//! Cluster tuning with the performance model: explore the paper's
//! parameter space — logical partition sizes, process-vs-thread
//! hierarchy, disks per node, slow-start — before buying hardware.
//!
//! ```text
//! cargo run --release --example cluster_tuning
//! ```

use gesall::sim::bwa_model::{
    alignment_round_seconds, thread_speedup, AlignRoundConfig, Readahead,
};
use gesall::sim::mr_model::{job_metrics, markdup_job, simulate_mr_job};
use gesall::sim::{ClusterSpec, WorkloadSpec};

fn hms(s: f64) -> String {
    let s = s.round() as i64;
    format!("{}h {:02}m", s / 3600, (s % 3600) / 60)
}

fn main() {
    let w = WorkloadSpec::na12878();
    let a = ClusterSpec::cluster_a();

    println!("=== 1. How should I slice the alignment mappers? (Cluster A) ===");
    println!("{:<28} {:>12}", "config (mappers x threads)", "wall");
    for (m, t) in [(1usize, 24usize), (2, 12), (4, 6), (6, 4), (12, 2), (24, 1)] {
        let cfg = AlignRoundConfig {
            n_partitions: 90,
            mappers_per_node: m,
            threads_per_mapper: t,
            readahead: Readahead::Small,
            streaming_overhead: 1.12,
        };
        println!(
            "{:<28} {:>12}",
            format!("{m} x {t}"),
            hms(alignment_round_seconds(&a, &w, &cfg))
        );
    }
    println!(
        "(thread speedup saturates: 24 threads only give {:.1}x — use processes)",
        thread_speedup(24, Readahead::Small)
    );

    println!("\n=== 2. How many disks does MarkDuplicates need? (Cluster B) ===");
    println!(
        "{:<10} {:>14} {:>14}  rule: 1 disk per ~100 GB shuffled",
        "disks", "MarkDup_reg", "MarkDup_opt"
    );
    for d in [1usize, 2, 3, 6] {
        let c = ClusterSpec::cluster_b_with_disks(d);
        let reg = simulate_mr_job(&c, &markdup_job(&w, false, 64, 16, 16, 0.05));
        let opt = simulate_mr_job(&c, &markdup_job(&w, true, 64, 16, 16, 0.05));
        println!("{:<10} {:>14} {:>14}", d, hms(reg.wall_s), hms(opt.wall_s));
    }

    println!("\n=== 3. Does the bloom-filter MarkDup_opt pay off everywhere? ===");
    for nodes in [5usize, 15] {
        let mut c = ClusterSpec::cluster_a();
        c.n_nodes = nodes;
        let gold = 14.45 * 3600.0;
        let (_, reg) = job_metrics(&c, &markdup_job(&w, false, nodes * 6, 6, 6, 0.05), gold);
        let (_, opt) = job_metrics(&c, &markdup_job(&w, true, nodes * 6, 6, 6, 0.05), gold);
        println!(
            "{nodes:>2} nodes: reg {} (eff {:.2}) vs opt {} (eff {:.2})",
            hms(reg.wall_s),
            reg.resource_efficiency,
            hms(opt.wall_s),
            opt.resource_efficiency
        );
    }

    println!("\n=== 4. Slow-start: stop reducers from squatting ===");
    for ss in [0.05, 0.5, 0.8] {
        let c = ClusterSpec::cluster_a();
        let gold = 14.45 * 3600.0;
        let (b, m) = job_metrics(&c, &markdup_job(&w, true, 90, 6, 6, ss), gold);
        println!(
            "slowstart {ss:<4}: wall {}, idle reducer slot-time {}, efficiency {:.3}",
            hms(m.wall_s),
            hms(b.reducer_idle_slot_s),
            m.resource_efficiency
        );
    }

    println!("\n=== 5. What if we upgraded Cluster A's network to 10 Gbps? ===");
    let mut fast = ClusterSpec::cluster_a();
    fast.node.network_gbps = 10.0;
    for (label, c) in [("1 Gbps", &a), ("10 Gbps", &fast)] {
        let b = simulate_mr_job(c, &markdup_job(&w, false, 90, 6, 6, 0.05));
        println!(
            "{label}: MarkDup_reg wall {} (shuffle+merge {})",
            hms(b.wall_s),
            hms(b.shuffle_merge_s)
        );
    }
    println!("(disks, not the network, bound the shuffle on Cluster A)");
}
