//! Error diagnosis: why does the parallel pipeline differ (slightly)
//! from the serial one? Runs both on the same synthetic sample and walks
//! the toolkit: D-count, weighted D-count, D-impact, and where the
//! disagreements live.
//!
//! ```text
//! cargo run --release --example error_diagnosis
//! ```

use gesall::aligner::{Aligner, AlignerConfig, ReferenceIndex};
use gesall::datagen::donor::DonorConfig;
use gesall::datagen::reads::ReadSimConfig;
use gesall::datagen::{DonorGenome, GenomeConfig, ReadSimulator, ReferenceGenome};
use gesall::formats::fastq::split_pairs_into_partitions;
use gesall::platform::diagnosis::{diff_alignments, diff_variants};
use gesall::platform::pipeline::{serial_tail_from_aligned, PlatformConfig};

fn main() {
    let genome = ReferenceGenome::generate(&GenomeConfig::default());
    let donor = DonorGenome::generate(&genome, &DonorConfig::default());
    let (pairs, _) = ReadSimulator::new(
        &genome,
        &donor,
        ReadSimConfig {
            n_pairs: 20_000,
            ..ReadSimConfig::default()
        },
    )
    .simulate();
    let chroms: Vec<(String, Vec<u8>)> = genome
        .chromosomes
        .iter()
        .map(|c| (c.name.clone(), c.seq.clone()))
        .collect();
    let references: Vec<Vec<u8>> = chroms.iter().map(|(_, s)| s.clone()).collect();
    let chrom_names: Vec<String> = chroms.iter().map(|(n, _)| n.clone()).collect();
    let aligner = Aligner::new(ReferenceIndex::build(&chroms), AlignerConfig::default());
    let cfg = PlatformConfig::default();

    // Serial alignment vs partitioned ("parallel") alignment.
    println!("aligning {} pairs serially and in 4 partitions...", pairs.len());
    let serial: Vec<_> = aligner
        .align_pairs(&pairs)
        .into_iter()
        .flat_map(|(a, b)| [a, b])
        .collect();
    let parallel: Vec<_> = split_pairs_into_partitions(pairs.clone(), 4)
        .iter()
        .flat_map(|p| aligner.align_pairs(p).into_iter().flat_map(|(a, b)| [a, b]))
        .collect();

    let d = diff_alignments(&serial, &parallel);
    println!("\n-- alignment stage (the paper's P1) --");
    println!("concordant read ends : {}", d.concordant);
    println!("discordant (D count) : {}", d.d_count());
    println!("weighted D count     : {:.1} ({:.4}% of reads)", d.weighted_d_count(), d.weighted_d_count_pct(serial.len() as u64));
    println!(
        "low-quality fraction of discordants: {:.0}% — partitioning does not\n  corrupt confident alignments, it perturbs the already-ambiguous ones",
        100.0 * d.low_quality_fraction()
    );
    // Which regions? Repetitive = centromere + blacklist + segmental
    // duplications (multi-mapping territory).
    let hard = d
        .discordant
        .iter()
        .filter(|x| {
            let c = &genome.chromosomes[x.serial.ref_id.max(0) as usize];
            let p = (x.serial.pos - 1).max(0) as usize;
            x.serial.pos >= 1
                && (c.is_hard_to_map(p)
                    || c.seg_dups.iter().any(|(s, t)| s.contains(p) || t.contains(p)))
        })
        .count();
    println!(
        "discordants inside repetitive regions (centromere/blacklist/segdup): {}/{}",
        hard,
        d.discordant.len()
    );

    // D-impact: run the serial tail on both alignment outputs and diff
    // the final variant calls.
    println!("\n-- final-variant impact (D impact) --");
    let (_, v_serial) = serial_tail_from_aligned(
        &aligner,
        &references,
        &chrom_names,
        serial,
        &cfg.read_group,
        cfg.seed,
        &cfg.hc,
    );
    let (_, v_hybrid) = serial_tail_from_aligned(
        &aligner,
        &references,
        &chrom_names,
        parallel,
        &cfg.read_group,
        cfg.seed,
        &cfg.hc,
    );
    let vd = diff_variants(&v_serial, &v_hybrid);
    println!("concordant variants  : {}", vd.concordant);
    println!("discordant (D impact): {} ({} serial-only, {} hybrid-only)", vd.d_impact(), vd.only_serial.len(), vd.only_parallel.len());
    println!("weighted D impact    : {:.2} ({:.3}% of calls)", vd.weighted_d_impact(), vd.weighted_d_impact_pct());
    if vd.d_impact() > 0 {
        let (inter, s_only, h_only) = vd.metric_rows(&v_serial, &v_hybrid);
        println!(
            "mean QUAL: intersection {:.0} vs serial-only {:.0} / hybrid-only {:.0}\n  (discordant calls are the low-confidence ones — the paper's conclusion)",
            inter.mean_qual, s_only.mean_qual, h_only.mean_qual
        );
    }
}
