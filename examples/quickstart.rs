//! Quickstart: generate a synthetic genome, sequence it, and run the
//! full Gesall parallel pipeline — alignment through variant calling —
//! in a few dozen lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gesall::aligner::{Aligner, AlignerConfig, ReferenceIndex};
use gesall::datagen::donor::DonorConfig;
use gesall::datagen::reads::ReadSimConfig;
use gesall::datagen::{DonorGenome, GenomeConfig, ReadSimulator, ReferenceGenome};
use gesall::dfs::{Dfs, DfsConfig};
use gesall::mapreduce::{ClusterResources, MapReduceEngine};
use gesall::platform::{GesallPlatform, PlatformConfig};

fn main() {
    // 1. A reference genome (two chromosomes, ~100 kb) and a diploid
    //    donor carrying ground-truth SNPs/indels.
    let genome = ReferenceGenome::generate(&GenomeConfig::tiny());
    let donor = DonorGenome::generate(&genome, &DonorConfig::default());
    println!(
        "reference: {} chromosomes, {} bp; donor truth set: {} variants",
        genome.chromosomes.len(),
        genome.total_len(),
        donor.truth.len()
    );

    // 2. Sequence the donor: paired-end reads with errors and PCR
    //    duplicates.
    let (pairs, _) = ReadSimulator::new(
        &genome,
        &donor,
        ReadSimConfig {
            n_pairs: 3_000,
            ..ReadSimConfig::default()
        },
    )
    .simulate();
    println!("sequenced {} read pairs", pairs.len());

    // 3. Build the alignment index (the expensive in-memory object every
    //    alignment mapper loads).
    let chroms: Vec<(String, Vec<u8>)> = genome
        .chromosomes
        .iter()
        .map(|c| (c.name.clone(), c.seq.clone()))
        .collect();
    let aligner = Aligner::new(ReferenceIndex::build(&chroms), AlignerConfig::default());

    // 4. A 4-node platform: DFS + MapReduce engine.
    let dfs = Dfs::new(DfsConfig {
        n_nodes: 4,
        block_size: 256 * 1024,
        replication: 1,
        ..DfsConfig::default()
    });
    let engine = MapReduceEngine::new(ClusterResources::uniform(4, 2, 8192));
    let platform = GesallPlatform::new(dfs, engine, PlatformConfig::default());

    // 5. Run all five rounds: align → clean/fix-mate → mark duplicates →
    //    sort → call variants.
    let out = platform.run_pipeline(&aligner, pairs).expect("pipeline");
    let dups = out
        .records
        .iter()
        .filter(|r| r.flags.is_duplicate())
        .count();
    println!(
        "pipeline done: {} records ({} duplicates flagged), {} variants called",
        out.records.len(),
        dups,
        out.variants.len()
    );
    for r in &out.rounds {
        println!("  {:<24} {:>8.0} ms  ({} maps, {} reduces)", r.name, r.wall_ms, r.n_map_tasks, r.n_reduce_tasks);
    }
    for v in out.variants.iter().take(5) {
        println!("  e.g. {v}");
    }
}
