//! Tracing a MapReduce job with `gesall-telemetry`.
//!
//! ```text
//! cargo run --example telemetry
//! ```
//!
//! Runs a small word-count job with a live [`Recorder`], then derives
//! every report the subsystem offers: the span tree, the six-phase
//! breakdown, a task Gantt chart, straggler statistics, and the
//! shuffle matrix.

use gesall::mapreduce::{
    ClusterResources, HashPartitioner, InputSplit, JobConfig, MapContext, MapReduceEngine, Mapper,
    Phase, Recorder, ReduceContext, Reducer, SpanKind,
};
use gesall::telemetry::report::{gantt, phase_table, straggler_report, GanttRow, PhaseRow};
use gesall::telemetry::report::shuffle_matrix;

struct Tokenize;
impl Mapper for Tokenize {
    type InKey = u64;
    type InValue = String;
    type OutKey = String;
    type OutValue = u64;
    fn map(&self, _k: &u64, line: &String, ctx: &mut MapContext<'_, String, u64>) {
        for w in line.split_whitespace() {
            ctx.emit(w.to_string(), 1);
        }
    }
}

struct Sum;
impl Reducer for Sum {
    type InKey = String;
    type InValue = u64;
    type OutKey = String;
    type OutValue = u64;
    fn reduce(&self, k: String, vs: Vec<u64>, ctx: &mut ReduceContext<'_, String, u64>) {
        ctx.emit(k, vs.iter().sum());
    }
}

fn main() {
    // 1. An enabled recorder, shared with the engine. Swap in
    //    `Recorder::with_jsonl_sink(path)` to also stream spans to disk.
    let recorder = Recorder::new();
    let engine = MapReduceEngine::new(ClusterResources::uniform(3, 2, 4096))
        .with_recorder(recorder.clone());

    // 2. Run a job. The tiny sort buffer forces spills and merge passes
    //    so all six phases of the paper's decomposition show up.
    let splits: Vec<InputSplit<u64, String>> = (0..6)
        .map(|s| {
            let records = (0..200u64)
                .map(|i| (i, format!("the quick brown fox w{} jumps", (s * 37 + i) % 53)))
                .collect();
            InputSplit::new(format!("split-{s}"), records)
        })
        .collect();
    let result = engine
        .run_job(
            JobConfig {
                name: "wordcount".into(),
                n_reducers: 4,
                io_sort_bytes: 4096,
                merge_factor: 2,
                ..JobConfig::default()
            },
            &Tokenize,
            &Sum,
            &HashPartitioner,
            splits,
        )
        .expect("job runs");

    // 3. The span tree: job → waves → task attempts.
    println!("== span tree ==");
    for span in recorder.spans() {
        println!(
            "  {:<13} {:<16} parent={:<3} [{:.2} → {:.2} ms]",
            span.kind.name(),
            span.name,
            span.parent.0,
            span.start_ms,
            span.end_ms
        );
    }

    // 4. Per-phase breakdown from the job's counters (Tables 4–7 shape).
    println!("\n== six-phase breakdown ==");
    let row = PhaseRow::from_snapshot("wordcount", result.wall_ms, &result.counters.snapshot());
    assert!(row.covers_all_phases(), "all six phases timed");
    print!("{}", phase_table(&[row]));
    for phase in Phase::ALL {
        println!(
            "  {:<12} {:>12} ns",
            phase.name(),
            result.counters.get(phase.counter_key())
        );
    }

    // 5. Task Gantt + straggler stats from the attempt spans.
    let attempts = recorder.spans_of_kind(SpanKind::TaskAttempt);
    let bars: Vec<GanttRow> = attempts
        .iter()
        .map(|s| GanttRow {
            label: s.name.clone(),
            start_ms: s.start_ms,
            end_ms: s.end_ms,
        })
        .collect();
    println!("\n== task timeline ==");
    print!("{}", gantt(&bars, 48));
    let durations: Vec<f64> = attempts.iter().map(|s| s.duration_ms()).collect();
    println!("\n== straggler stats ==");
    print!(
        "{}",
        straggler_report(&[("all-attempts".to_string(), durations)])
    );

    // 6. Bytes moved map → reduce.
    println!("\n== shuffle matrix ==");
    print!("{}", shuffle_matrix(&recorder.shuffle_cells()));
}
