//! Variant calling deep-dive: run the serial GATK-best-practices
//! baseline step by step on a synthetic sample, score the calls against
//! the known truth set, and write a VCF.
//!
//! ```text
//! cargo run --release --example variant_calling
//! ```

use gesall::aligner::{Aligner, AlignerConfig, ReferenceIndex};
use gesall::datagen::donor::DonorConfig;
use gesall::datagen::reads::ReadSimConfig;
use gesall::datagen::{DonorGenome, GenomeConfig, ReadSimulator, ReferenceGenome};
use gesall::formats::sam::header::ReadGroup;
use gesall::formats::vcf;
use gesall::tools::haplotype_caller::{call_chromosome, HaplotypeCallerConfig};
use gesall::tools::recalibration::{base_recalibrator, print_reads, RecalConfig};
use gesall::tools::refview::RefView;
use gesall::tools::unified_genotyper::{unified_genotyper, GenotyperConfig};
use gesall::tools::vcf_metrics::{precision_sensitivity, SiteKey};
use std::collections::HashSet;

fn main() {
    // A ~10x sample over a 100 kb genome.
    let genome = ReferenceGenome::generate(&GenomeConfig::tiny());
    let donor = DonorGenome::generate(&genome, &DonorConfig::default());
    let (pairs, _) = ReadSimulator::new(
        &genome,
        &donor,
        ReadSimConfig {
            n_pairs: 5_000,
            ..ReadSimConfig::default()
        },
    )
    .simulate();

    let chroms: Vec<(String, Vec<u8>)> = genome
        .chromosomes
        .iter()
        .map(|c| (c.name.clone(), c.seq.clone()))
        .collect();
    let references: Vec<Vec<u8>> = chroms.iter().map(|(_, s)| s.clone()).collect();
    let chrom_names: Vec<String> = chroms.iter().map(|(n, _)| n.clone()).collect();
    let aligner = Aligner::new(ReferenceIndex::build(&chroms), AlignerConfig::default());

    // Step 1: alignment.
    let mut records: Vec<_> = aligner
        .align_pairs(&pairs)
        .into_iter()
        .flat_map(|(a, b)| [a, b])
        .collect();
    println!("aligned {} records", records.len());

    // Steps 3-7: cleaning, mate fixing, duplicate marking, sorting.
    let mut header = aligner.index().sam_header();
    gesall::tools::add_read_groups::add_or_replace_read_groups(
        &mut header,
        &mut records,
        &ReadGroup::new("rg1", "demo-sample"),
    );
    let clean = gesall::tools::clean_sam::clean_sam(&mut records, RefView::new(&references));
    println!("clean_sam: {clean:?}");
    let fixed = gesall::tools::fix_mate::fix_mate_information(&mut records);
    println!("fix_mate: {fixed:?}");
    let md = gesall::tools::mark_duplicates::mark_duplicates(&mut records, 42);
    println!(
        "mark_duplicates: {} complete pairs, {} duplicate reads flagged",
        md.complete_pairs, md.duplicate_reads_marked
    );
    gesall::tools::sort_sam::sort_sam(&mut header, &mut records);

    // Steps 11-12: base quality recalibration, excluding truth sites.
    let rv = RefView::new(&references);
    let known: HashSet<(i32, i64)> = donor
        .truth
        .iter()
        .filter_map(|t| {
            chrom_names
                .iter()
                .position(|n| *n == t.chrom)
                .map(|c| (c as i32, t.pos))
        })
        .collect();
    let cfg = RecalConfig::default();
    let table = base_recalibrator(&records, rv, &known, &cfg);
    let changed = print_reads(&mut records, &table, &cfg);
    println!(
        "recalibration: {} covariate buckets, {} base qualities adjusted",
        table.by_covariate.len(),
        changed
    );

    // v1: UnifiedGenotyper over everything.
    let ug_calls = unified_genotyper(&records, &chrom_names, rv, &GenotyperConfig::default());
    // v2: HaplotypeCaller per chromosome (active windows).
    let hc_cfg = HaplotypeCallerConfig::default();
    let mut hc_calls = Vec::new();
    let mut windows = 0;
    for (i, name) in chrom_names.iter().enumerate() {
        let res = call_chromosome(&records, i as i32, name, rv, &hc_cfg);
        windows += res.windows.len();
        hc_calls.extend(res.variants);
    }
    println!(
        "UnifiedGenotyper: {} calls; HaplotypeCaller: {} calls from {} active windows",
        ug_calls.len(),
        hc_calls.len(),
        windows
    );

    // Score against truth.
    let truth: HashSet<SiteKey> = donor
        .truth
        .iter()
        .map(|t| (t.chrom.clone(), t.pos, t.ref_allele.clone(), t.alt_allele.clone()))
        .collect();
    for (name, calls) in [("UnifiedGenotyper", &ug_calls), ("HaplotypeCaller", &hc_calls)] {
        let ps = precision_sensitivity(calls, &truth);
        println!(
            "{name}: precision {:.3}, sensitivity {:.3} (TP {}, FP {}, FN {})",
            ps.precision, ps.sensitivity, ps.true_positives, ps.false_positives, ps.false_negatives
        );
    }

    // Write the VCF.
    let text = vcf::to_text(&hc_calls);
    std::fs::write("target/variant_calling_demo.vcf", &text).expect("write vcf");
    println!(
        "wrote target/variant_calling_demo.vcf ({} lines)",
        text.lines().count()
    );
}
