# Development shortcuts. `just smoke` is the CI gate — run it before
# pushing; it must pass with zero warnings.

# Build, test, and lint exactly as CI does.
smoke:
    cargo build --release --offline --workspace
    cargo test -q --offline --workspace
    cargo clippy --offline --workspace --all-targets -- -D warnings

# Tiny traced end-to-end experiment: prints the per-phase breakdown,
# task Gantt, straggler stats, and shuffle matrix; appends a record to
# BENCH_smoke.json (plus smoke_trace.jsonl). Fails if any of the six
# phase timings is missing.
bench-smoke:
    cargo run --release --offline -p gesall-bench --bin experiments -- smoke .

# Kernel microbenches: each bit-parallel map-phase kernel (packed rank,
# banded SW, radix spill sort) timed against its scalar twin; appends a
# record to BENCH_micro.json next to bench-smoke's.
bench-micro:
    cargo run --release --offline -p gesall-microbench -- .

# Fast inner-loop check.
check:
    cargo check --offline --workspace --all-targets

# Full test run with output on failure.
test:
    cargo test --offline --workspace

# Lint only.
lint:
    cargo clippy --offline --workspace --all-targets -- -D warnings

# Format (requires rustfmt).
fmt:
    cargo fmt --all
