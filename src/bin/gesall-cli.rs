//! `gesall-cli` — the platform as a command-line tool.
//!
//! ```text
//! gesall-cli generate  --out-dir DIR [--pairs N] [--chrom-len BP,BP] [--seed S]
//! gesall-cli align     --reference REF.fa --r1 R1.fastq --r2 R2.fastq --out OUT.bam
//! gesall-cli pipeline  --reference REF.fa --r1 R1.fastq --r2 R2.fastq --out-dir DIR
//!                      [--partitions N] [--nodes N] [--caller hc|ug] [--recalibrate]
//!                      [--trace] [--dag] [--bench-json DIR]
//!                      (`run` is an alias for `pipeline`)
//! gesall-cli call      --reference REF.fa --bam IN.bam --out OUT.vcf [--caller hc|ug]
//! gesall-cli diff      --serial A.bam --parallel B.bam
//! gesall-cli sv        --bam IN.bam [--insert-mean N] [--insert-sd N]
//! gesall-cli optimize  [--cluster a|b] [--objective wall|efficiency]
//! gesall-cli serve     [--tenants N] [--jobs N] [--pairs N] [--nodes N]
//!                      [--slots N] [--seed S] [--dag]
//! ```
//!
//! Files use the workspace's own formats: FASTA references, FASTQ reads,
//! the BAM-like chunked container, and VCF-like variant text.

use gesall::aligner::{Aligner, AlignerConfig, ReferenceIndex};
use gesall::datagen::donor::DonorConfig;
use gesall::datagen::reads::ReadSimConfig;
use gesall::datagen::{DonorGenome, GenomeConfig, ReadSimulator, ReferenceGenome};
use gesall::dfs::{Dfs, DfsConfig};
use gesall::formats::{bam, fasta, fastq, vcf};
use gesall::mapreduce::{ClusterResources, MapReduceEngine};
use gesall::platform::diagnosis::diff_alignments;
use gesall::platform::pipeline::CallerChoice;
use gesall::platform::{GesallPlatform, PlatformConfig};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        usage("missing subcommand");
    };
    let opts = parse_opts(rest);
    let result = match cmd.as_str() {
        "generate" => cmd_generate(&opts),
        "align" => cmd_align(&opts),
        "pipeline" | "run" => cmd_pipeline(&opts),
        "call" => cmd_call(&opts),
        "diff" => cmd_diff(&opts),
        "sv" => cmd_sv(&opts),
        "optimize" => cmd_optimize(&opts),
        "serve" => cmd_serve(&opts),
        other => usage(&format!("unknown subcommand {other:?}")),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        exit(1);
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: gesall-cli <generate|align|pipeline|call|diff> --flag value ...\n\
         see the module docs (src/bin/gesall-cli.rs) for flags"
    );
    exit(2);
}

type Opts = HashMap<String, String>;

fn parse_opts(args: &[String]) -> Opts {
    let mut opts = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let Some(key) = a.strip_prefix("--") else {
            usage(&format!("expected --flag, found {a:?}"));
        };
        // Boolean flags take no value.
        if key == "recalibrate" || key == "trace" || key == "dag" {
            opts.insert(key.to_string(), "true".into());
            continue;
        }
        let Some(v) = it.next() else {
            usage(&format!("--{key} needs a value"));
        };
        opts.insert(key.to_string(), v.clone());
    }
    opts
}

fn need<'a>(opts: &'a Opts, key: &str) -> &'a str {
    opts.get(key)
        .unwrap_or_else(|| usage(&format!("--{key} is required")))
}

fn get_num<T: std::str::FromStr>(opts: &Opts, key: &str, default: T) -> T {
    opts.get(key)
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| usage(&format!("--{key}: bad number {v:?}")))
        })
        .unwrap_or(default)
}

type AnyError = Box<dyn std::error::Error>;

/// Loaded reference: (name, sequence) pairs plus the sequences and
/// names split out for callers that want just one side.
type ReferenceData = (Vec<(String, Vec<u8>)>, Vec<Vec<u8>>, Vec<String>);

fn load_reference(path: &str) -> Result<ReferenceData, AnyError> {
    let text = std::fs::read_to_string(path)?;
    let recs = fasta::from_text(&text)?;
    let chroms: Vec<(String, Vec<u8>)> =
        recs.into_iter().map(|r| (r.name, r.seq)).collect();
    let seqs: Vec<Vec<u8>> = chroms.iter().map(|(_, s)| s.clone()).collect();
    let names: Vec<String> = chroms.iter().map(|(n, _)| n.clone()).collect();
    Ok((chroms, seqs, names))
}

fn load_pairs(r1: &str, r2: &str) -> Result<Vec<fastq::ReadPair>, AnyError> {
    let r1s = fastq::from_bytes(&std::fs::read(r1)?)?;
    let r2s = fastq::from_bytes(&std::fs::read(r2)?)?;
    Ok(fastq::interleave(r1s, r2s)?)
}

fn caller_choice(opts: &Opts) -> CallerChoice {
    match opts.get("caller").map(String::as_str) {
        None | Some("hc") => CallerChoice::HaplotypeCaller,
        Some("ug") => CallerChoice::UnifiedGenotyper,
        Some(other) => usage(&format!("--caller must be hc or ug, found {other:?}")),
    }
}

fn cmd_generate(opts: &Opts) -> Result<(), AnyError> {
    let out_dir = PathBuf::from(need(opts, "out-dir"));
    std::fs::create_dir_all(&out_dir)?;
    let chrom_lens: Vec<usize> = opts
        .get("chrom-len")
        .map(String::as_str)
        .unwrap_or("500000,300000")
        .split(',')
        .map(|s| s.parse().unwrap_or_else(|_| usage("--chrom-len: bad list")))
        .collect();
    let seed = get_num(opts, "seed", 42u64);
    let n_pairs = get_num(opts, "pairs", 20_000usize);

    let genome = ReferenceGenome::generate(&GenomeConfig {
        chromosome_lengths: chrom_lens,
        seed,
        ..GenomeConfig::default()
    });
    let donor = DonorGenome::generate(&genome, &DonorConfig { seed: seed ^ 7, ..DonorConfig::default() });
    let (pairs, _) = ReadSimulator::new(
        &genome,
        &donor,
        ReadSimConfig {
            n_pairs,
            seed: seed ^ 99,
            ..ReadSimConfig::default()
        },
    )
    .simulate();

    // reference.fa
    let fa: Vec<fasta::FastaRecord> = genome
        .chromosomes
        .iter()
        .map(|c| fasta::FastaRecord {
            name: c.name.clone(),
            seq: c.seq.clone(),
        })
        .collect();
    std::fs::write(out_dir.join("reference.fa"), fasta::to_text(&fa))?;
    // reads_1/2.fastq
    let r1s: Vec<fastq::FastqRecord> = pairs.iter().map(|p| p.r1.clone()).collect();
    let r2s: Vec<fastq::FastqRecord> = pairs.iter().map(|p| p.r2.clone()).collect();
    std::fs::write(out_dir.join("reads_1.fastq"), fastq::to_bytes(&r1s))?;
    std::fs::write(out_dir.join("reads_2.fastq"), fastq::to_bytes(&r2s))?;
    // truth.vcf
    let truth: Vec<vcf::VariantRecord> = donor
        .truth
        .iter()
        .map(|t| vcf::VariantRecord {
            chrom: t.chrom.clone(),
            pos: t.pos,
            ref_allele: t.ref_allele.clone(),
            alt_allele: t.alt_allele.clone(),
            qual: 100.0,
            genotype: t.genotype,
            depth: 0,
            mapping_quality: 0.0,
            fisher_strand: 0.0,
            allele_balance: 0.0,
        })
        .collect();
    std::fs::write(out_dir.join("truth.vcf"), vcf::to_text(&truth))?;
    println!(
        "wrote {}: reference.fa ({} bp), reads_1/2.fastq ({} pairs), truth.vcf ({} variants)",
        out_dir.display(),
        genome.total_len(),
        pairs.len(),
        truth.len()
    );
    Ok(())
}

fn cmd_align(opts: &Opts) -> Result<(), AnyError> {
    let (chroms, _, _) = load_reference(need(opts, "reference"))?;
    let pairs = load_pairs(need(opts, "r1"), need(opts, "r2"))?;
    eprintln!("building index over {} chromosomes...", chroms.len());
    let aligner = Aligner::new(ReferenceIndex::build(&chroms), AlignerConfig::default());
    eprintln!("aligning {} pairs...", pairs.len());
    let records: Vec<_> = aligner
        .align_pairs(&pairs)
        .into_iter()
        .flat_map(|(a, b)| [a, b])
        .collect();
    let mapped = records.iter().filter(|r| r.is_mapped()).count();
    let bytes = bam::write_bam(&aligner.index().sam_header(), &records);
    let out = need(opts, "out");
    std::fs::write(out, &bytes)?;
    println!(
        "wrote {out}: {} records ({:.1}% mapped)",
        records.len(),
        100.0 * mapped as f64 / records.len().max(1) as f64
    );
    Ok(())
}

fn cmd_pipeline(opts: &Opts) -> Result<(), AnyError> {
    let (chroms, _, _) = load_reference(need(opts, "reference"))?;
    let pairs = load_pairs(need(opts, "r1"), need(opts, "r2"))?;
    let out_dir = PathBuf::from(need(opts, "out-dir"));
    std::fs::create_dir_all(&out_dir)?;
    let nodes = get_num(opts, "nodes", 4usize);
    let partitions = get_num(opts, "partitions", nodes);

    eprintln!("building index...");
    let aligner = Aligner::new(ReferenceIndex::build(&chroms), AlignerConfig::default());
    // --trace streams the full span log (pipeline → round → job → wave →
    // task-attempt) to out_dir/trace.jsonl for offline analysis.
    let recorder = if opts.contains_key("trace") {
        let path = out_dir.join("trace.jsonl");
        eprintln!("tracing spans to {}", path.display());
        gesall::telemetry::Recorder::with_jsonl_sink(&path)?
    } else {
        gesall::telemetry::Recorder::disabled()
    };
    let platform = GesallPlatform::new(
        Dfs::new(DfsConfig {
            n_nodes: nodes,
            block_size: 4 * 1024 * 1024,
            replication: 1,
            ..DfsConfig::default()
        }),
        MapReduceEngine::new(ClusterResources::uniform(nodes, 2, 16 * 1024))
            .with_recorder(recorder),
        PlatformConfig {
            n_round1_partitions: partitions,
            n_reducers: partitions,
            caller: caller_choice(opts),
            recalibrate: opts.contains_key("recalibrate"),
            ..PlatformConfig::default()
        },
    );
    eprintln!("running the five-round pipeline on {} pairs...", pairs.len());
    let t0 = std::time::Instant::now();
    let n_pairs = pairs.len();
    let out = platform.run_pipeline(&aligner, pairs)?;
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let bam_path = out_dir.join("aligned.sorted.bam");
    std::fs::write(
        &bam_path,
        bam::write_bam(&aligner.index().sam_header(), &out.records),
    )?;
    let vcf_path = out_dir.join("variants.vcf");
    std::fs::write(&vcf_path, vcf::to_text(&out.variants))?;
    println!(
        "wrote {} ({} records) and {} ({} variants)",
        bam_path.display(),
        out.records.len(),
        vcf_path.display(),
        out.variants.len()
    );
    println!("\nPer-phase breakdown (ms, summed across tasks):");
    print!("{}", out.phase_table());
    // Kernel activity (DESIGN.md §5): proof the bit-parallel fast paths
    // ran, and how much of the extension load the band answered.
    let mut kernel_sums: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    for r in &out.rounds {
        for (key, v) in &r.counters {
            if key.starts_with("kernel.") {
                *kernel_sums.entry(key.clone()).or_insert(0) += v;
            }
        }
    }
    let kernel_snapshot: Vec<(String, u64)> = kernel_sums.into_iter().collect();
    let k = gesall::telemetry::KernelStats::from_snapshot(&kernel_snapshot);
    if k != gesall::telemetry::KernelStats::default() {
        println!(
            "Kernels: {} occ words popcounted; banded SW {}/{} in-band \
             ({:.0}% hit rate); {} radix passes, {} comparison fallbacks",
            k.occ_words_popcounted,
            k.sw_banded_hits,
            k.sw_banded_hits + k.sw_full_fallbacks,
            k.banded_hit_ratio() * 100.0,
            k.sort_radix_passes,
            k.sort_comparison_fallbacks
        );
    }
    // --dag prints the stage-graph view of the same run: per-stage
    // cache disposition and the critical path through the DAG.
    if opts.contains_key("dag") {
        println!(
            "\nStage DAG ({} run, {} served from cache):",
            out.stages_run(),
            out.cache_hits()
        );
        print!("{}", out.dag_report());
    }
    // --bench-json DIR appends a machine-readable record of this run to
    // DIR/BENCH_pipeline.json (phase timings + counters).
    if let Some(dir) = opts.get("bench-json") {
        let dir = PathBuf::from(dir);
        std::fs::create_dir_all(&dir)?;
        let mut agg: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
        for r in &out.rounds {
            for (k, v) in &r.counters {
                let slot = agg.entry(k.clone()).or_insert(0);
                // wrapper.* counters are pipeline-cumulative; the rest
                // are per-round.
                if k.starts_with("wrapper.") {
                    *slot = (*slot).max(*v);
                } else {
                    *slot += *v;
                }
            }
        }
        let mut record = gesall::telemetry::BenchRecord::new("pipeline")
            .with_counters(agg.into_iter().collect());
        record.wall_ms = wall_ms;
        record.workload = vec![
            ("n_pairs".into(), n_pairs.to_string()),
            ("n_rounds".into(), out.rounds.len().to_string()),
        ];
        record.config = vec![
            ("nodes".into(), nodes.to_string()),
            ("partitions".into(), partitions.to_string()),
        ];
        let path = record.append_to_dir(&dir)?;
        println!("bench record appended to {}", path.display());
    }
    Ok(())
}

fn cmd_call(opts: &Opts) -> Result<(), AnyError> {
    let (_, seqs, names) = load_reference(need(opts, "reference"))?;
    let (_, records) = bam::read_bam(&std::fs::read(need(opts, "bam"))?)?;
    let rv = gesall::tools::refview::RefView::new(&seqs);
    let variants = match caller_choice(opts) {
        CallerChoice::UnifiedGenotyper => gesall::tools::unified_genotyper::unified_genotyper(
            &records,
            &names,
            rv,
            &gesall::tools::unified_genotyper::GenotyperConfig::default(),
        ),
        CallerChoice::HaplotypeCaller => {
            let cfg = gesall::tools::haplotype_caller::HaplotypeCallerConfig::default();
            let mut vs = Vec::new();
            for (i, name) in names.iter().enumerate() {
                vs.extend(
                    gesall::tools::haplotype_caller::call_chromosome(
                        &records, i as i32, name, rv, &cfg,
                    )
                    .variants,
                );
            }
            vs
        }
    };
    let out = need(opts, "out");
    std::fs::write(out, vcf::to_text(&variants))?;
    println!("wrote {out}: {} variants", variants.len());
    Ok(())
}

fn cmd_sv(opts: &Opts) -> Result<(), AnyError> {
    use gesall::tools::sv_caller::{call_structural_variants, SvConfig};
    let (header, records) = bam::read_bam(&std::fs::read(need(opts, "bam"))?)?;
    let cfg = SvConfig {
        insert_mean: get_num(opts, "insert-mean", 400.0),
        insert_sd: get_num(opts, "insert-sd", 50.0),
        ..SvConfig::default()
    };
    let calls = call_structural_variants(&records, &cfg);
    if calls.is_empty() {
        println!("no structural variants detected");
    }
    for c in calls {
        println!(
            "{}\t{}\t{}\t{:?}\tsupport={}",
            header.reference_name(c.chrom),
            c.start,
            c.end,
            c.kind,
            c.support
        );
    }
    Ok(())
}

fn cmd_optimize(opts: &Opts) -> Result<(), AnyError> {
    use gesall::sim::optimizer::{optimize, Objective};
    use gesall::sim::{ClusterSpec, WorkloadSpec};
    let cluster = match opts.get("cluster").map(String::as_str) {
        None | Some("a") => ClusterSpec::cluster_a(),
        Some("b") => ClusterSpec::cluster_b(),
        Some(other) => usage(&format!("--cluster must be a or b, found {other:?}")),
    };
    let objective = match opts.get("objective").map(String::as_str) {
        None | Some("wall") => Objective::WallClock,
        Some("efficiency") => Objective::Efficiency,
        Some(other) => usage(&format!("--objective must be wall or efficiency, found {other:?}")),
    };
    let (plan, cost) = optimize(&cluster, &WorkloadSpec::na12878(), objective);
    println!("best plan for {} under {objective:?}:", cluster.name);
    println!("  alignment : {} partitions, {} mappers x {} threads per node",
        plan.align_partitions, plan.align_mappers_per_node, plan.align_threads_per_mapper);
    println!("  shuffling : {} partitions, {} tasks/node, slowstart {}, MarkDup_{}",
        plan.shuffle_partitions, plan.tasks_per_node, plan.slowstart,
        if plan.markdup_opt { "opt" } else { "reg" });
    println!("  est. cost : align {:.1}h + clean {:.1}h + markdup {:.1}h + calling {:.1}h = {:.1}h (efficiency {:.2})",
        cost.align_s / 3600.0, cost.round2_s / 3600.0, cost.markdup_s / 3600.0,
        cost.round5_s / 3600.0, cost.total_s / 3600.0, cost.efficiency);
    Ok(())
}

fn cmd_diff(opts: &Opts) -> Result<(), AnyError> {
    let read = |p: &str| -> Result<Vec<_>, AnyError> {
        Ok(bam::read_bam(&std::fs::read(Path::new(p))?)?.1)
    };
    let serial = read(need(opts, "serial"))?;
    let parallel = read(need(opts, "parallel"))?;
    let d = diff_alignments(&serial, &parallel);
    println!("concordant read ends : {}", d.concordant);
    println!("discordant (D count) : {}", d.d_count());
    println!("missing              : {}", d.missing);
    println!(
        "weighted D count     : {:.2} ({:.4}% of reads)",
        d.weighted_d_count(),
        d.weighted_d_count_pct((serial.len() as u64).max(1))
    );
    println!(
        "low-quality fraction of discordants: {:.0}%",
        100.0 * d.low_quality_fraction()
    );
    Ok(())
}

fn cmd_serve(opts: &Opts) -> Result<(), AnyError> {
    use gesall::jobsvc::{keys, JobOutput, JobService, JobSpec, JobSvcConfig, TenantConfig};
    use gesall::mapreduce::GesallError;
    use gesall::platform::pipeline::PipelineOutput;
    use std::sync::Arc;
    use std::time::Instant;

    let n_tenants = get_num(opts, "tenants", 3usize).max(1);
    let jobs_per_tenant = get_num(opts, "jobs", 2usize).max(1);
    let n_pairs = get_num(opts, "pairs", 400usize);
    let nodes = get_num(opts, "nodes", 3usize).max(1);
    let seed = get_num(opts, "seed", 42u64);

    eprintln!("generating a shared {n_pairs}-pair workload (seed {seed})...");
    let genome = ReferenceGenome::generate(&GenomeConfig {
        chromosome_lengths: vec![120_000, 80_000],
        seed,
        ..GenomeConfig::default()
    });
    let donor = DonorGenome::generate(
        &genome,
        &DonorConfig { seed: seed ^ 7, ..DonorConfig::default() },
    );
    let (pairs, _) = ReadSimulator::new(
        &genome,
        &donor,
        ReadSimConfig { n_pairs, seed: seed ^ 99, ..ReadSimConfig::default() },
    )
    .simulate();
    let chroms: Vec<(String, Vec<u8>)> = genome
        .chromosomes
        .iter()
        .map(|c| (c.name.clone(), c.seq.clone()))
        .collect();
    let aligner = Arc::new(Aligner::new(ReferenceIndex::build(&chroms), AlignerConfig::default()));

    let platform = GesallPlatform::new(
        Dfs::new(DfsConfig {
            n_nodes: nodes,
            block_size: 1024 * 1024,
            replication: 1,
            ..DfsConfig::default()
        }),
        MapReduceEngine::new(ClusterResources::uniform(nodes, 2, 8 * 1024)),
        PlatformConfig::default(),
    );

    // Tenant 1 holds a double share so the capacity split is visibly
    // uneven; everyone else competes at share 1 and borrows tenant 1's
    // idle slots elastically.
    let tenants: Vec<TenantConfig> = (0..n_tenants)
        .map(|i| TenantConfig::new(format!("t{}", i + 1), if i == 0 { 2 } else { 1 }))
        .collect();
    let slots = get_num(opts, "slots", 0usize);
    let svc = JobService::new(
        platform,
        JobSvcConfig {
            tenants,
            total_slots: (slots > 0).then_some(slots),
            ..JobSvcConfig::default()
        },
    );
    let total = svc.total_slots();
    // Each job asks for half the cluster: with several tenants live the
    // scheduler must shrink leases back toward fair share, and with one
    // tenant live its jobs borrow the idle half.
    let want = (total / 2).max(1);
    eprintln!(
        "serving {n_tenants} tenants x {jobs_per_tenant} pipeline jobs \
         ({total} slots, {want} requested per job)..."
    );

    let t0 = Instant::now();
    let mut handles = Vec::new();
    let mut n_jobs = 0usize;
    if opts.contains_key("dag") {
        use gesall::jobsvc::DagNodeSpec;
        use gesall::telemetry::report;

        // --dag: each tenant submits one stage graph instead of a flat
        // job stream. `prep` runs the pipeline cold and fills the
        // tenant's content-addressed stage cache (every job of a tenant
        // shares /{tenant}/cas); the two `twin` analyses depend on it,
        // dispatch together the moment it commits, and are served
        // entirely from that cache — the Gantt shows them overlapping
        // inside each tenant while `prep` gates both.
        let bars: Arc<std::sync::Mutex<Vec<report::GanttRow>>> =
            Arc::new(std::sync::Mutex::new(Vec::new()));
        let mut dags = Vec::new();
        for i in 0..n_tenants {
            let tenant = format!("t{}", i + 1);
            let stage = |name: &str| {
                let aligner = Arc::clone(&aligner);
                let pairs = pairs.clone();
                let bars = Arc::clone(&bars);
                let label = format!("{tenant}/{name}");
                JobSpec::new(name, want, move |ctx| {
                    let start_ms = t0.elapsed().as_secs_f64() * 1e3;
                    let out = ctx
                        .platform()
                        .run_pipeline_with(&aligner, pairs, &ctx.run_options())
                        .map_err(|e| GesallError::Streaming(e.to_string()))?;
                    bars.lock().unwrap().push(report::GanttRow {
                        label,
                        start_ms,
                        end_ms: t0.elapsed().as_secs_f64() * 1e3,
                    });
                    Ok(Box::new(out) as JobOutput)
                })
            };
            let nodes = vec![
                DagNodeSpec::new("prep", &[], stage("prep")),
                DagNodeSpec::new("twin-a", &["prep"], stage("twin-a")),
                DagNodeSpec::new("twin-b", &["prep"], stage("twin-b")),
            ];
            dags.push((tenant.clone(), svc.submit_dag(&tenant, nodes)?));
        }
        for (tenant, dag) in &mut dags {
            dag.wait()?;
            n_jobs += dag.order().len();
            let hits: usize = ["twin-a", "twin-b"]
                .iter()
                .filter_map(|s| dag.take_output(s))
                .filter_map(|b| b.downcast::<PipelineOutput>().ok())
                .map(|o| o.cache_hits())
                .sum();
            println!(
                "[{tenant}] dag complete: {} stages, twins served {hits} stages from cache",
                dag.order().len()
            );
        }
        let mut rows = bars.lock().unwrap().clone();
        rows.sort_by(|a, b| a.label.cmp(&b.label));
        println!("\nPer-tenant stage concurrency:");
        print!("{}", report::gantt(&rows, 48));
        drop(dags);
    } else {
        // Round-robin submission so tenants contend from the first
        // dispatch.
        for round in 0..jobs_per_tenant {
            for i in 0..n_tenants {
                let aligner = Arc::clone(&aligner);
                let pairs = pairs.clone();
                let spec = JobSpec::new(format!("pipeline-{round}"), want, move |ctx| {
                    let out = ctx
                        .platform()
                        .run_pipeline_with(&aligner, pairs, &ctx.run_options())
                        .map_err(|e| GesallError::Streaming(e.to_string()))?;
                    Ok(Box::new(out) as JobOutput)
                });
                handles.push(svc.submit(&format!("t{}", i + 1), spec)?);
            }
        }
        for h in &handles {
            h.wait()?;
            let out = h
                .take_output()
                .and_then(|b| b.downcast::<PipelineOutput>().ok())
                .ok_or("job finished without pipeline output")?;
            println!(
                "[{}] {}: {} records, {} variants",
                h.tenant(),
                h.id(),
                out.records.len(),
                out.variants.len()
            );
        }
        n_jobs = handles.len();
    }
    let wall_s = t0.elapsed().as_secs_f64();

    let m = svc.metrics();
    let ms = |nanos: Option<u64>| nanos.unwrap_or(0) as f64 / 1e6;
    println!("tenant   jobs  queue-wait p50   p90");
    for i in 0..n_tenants {
        let t = format!("t{}", i + 1);
        let done = m.counter(&format!("{}.{t}", keys::JOBS_COMPLETED)).get();
        let h = m.histogram(&format!("{}.{t}", keys::QUEUE_WAIT_NANOS));
        println!(
            "{t:<8} {done:<5} {:>9.2}ms {:>9.2}ms",
            ms(h.quantile(0.5)),
            ms(h.quantile(0.9))
        );
    }
    println!(
        "slots: granted {}, borrowed {}, reclaimed {}",
        m.counter(keys::SLOTS_GRANTED).get(),
        m.counter(keys::SLOTS_BORROWED).get(),
        m.counter(keys::SLOTS_RECLAIMED).get()
    );
    println!("{n_jobs} jobs across {n_tenants} tenants in {wall_s:.2}s");
    drop(handles);
    svc.shutdown();
    Ok(())
}
