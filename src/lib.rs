//! Gesall-RS facade crate: re-exports every subsystem under one roof.
//!
//! See `DESIGN.md` for the architecture and `EXPERIMENTS.md` for the
//! paper-reproduction results.

pub use gesall_aligner as aligner;
pub use gesall_core as platform;
pub use gesall_datagen as datagen;
pub use gesall_dfs as dfs;
pub use gesall_formats as formats;
pub use gesall_jobsvc as jobsvc;
pub use gesall_mapreduce as mapreduce;
pub use gesall_sim as sim;
pub use gesall_telemetry as telemetry;
pub use gesall_tools as tools;
