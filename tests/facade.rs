//! Workspace-level integration tests through the `gesall` facade crate:
//! the public API a downstream user sees, exercised end to end.

use gesall::aligner::{Aligner, AlignerConfig, ReferenceIndex};
use gesall::datagen::donor::DonorConfig;
use gesall::datagen::reads::ReadSimConfig;
use gesall::datagen::{DonorGenome, GenomeConfig, ReadSimulator, ReferenceGenome};
use gesall::dfs::{Dfs, DfsConfig};
use gesall::mapreduce::{ClusterResources, MapReduceEngine};
use gesall::platform::pipeline::{
    gatk_best_practices_specs, plan_rounds, serial_pipeline, Partitioning,
};
use gesall::platform::{GesallPlatform, PlatformConfig};

fn world(n_pairs: usize) -> (ReferenceGenome, DonorGenome, Vec<gesall::formats::fastq::ReadPair>, Aligner) {
    let genome = ReferenceGenome::generate(&GenomeConfig::tiny());
    let donor = DonorGenome::generate(&genome, &DonorConfig::default());
    let (pairs, _) = ReadSimulator::new(
        &genome,
        &donor,
        ReadSimConfig {
            n_pairs,
            ..ReadSimConfig::default()
        },
    )
    .simulate();
    let chroms: Vec<(String, Vec<u8>)> = genome
        .chromosomes
        .iter()
        .map(|c| (c.name.clone(), c.seq.clone()))
        .collect();
    let aligner = Aligner::new(ReferenceIndex::build(&chroms), AlignerConfig::default());
    (genome, donor, pairs, aligner)
}

#[test]
fn facade_quickstart_flow() {
    let (_, _, pairs, aligner) = world(800);
    let dfs = Dfs::new(DfsConfig {
        n_nodes: 3,
        block_size: 128 * 1024,
        replication: 1,
        ..DfsConfig::default()
    });
    let engine = MapReduceEngine::new(ClusterResources::uniform(3, 2, 8192));
    let platform = GesallPlatform::new(dfs, engine, PlatformConfig::default());
    let out = platform.run_pipeline(&aligner, pairs.clone()).unwrap();
    assert_eq!(out.records.len(), pairs.len() * 2);
    assert_eq!(out.rounds.len(), 6);
}

#[test]
fn facade_serial_baseline_flow() {
    let (genome, _, pairs, aligner) = world(600);
    let references: Vec<Vec<u8>> = genome.chromosomes.iter().map(|c| c.seq.clone()).collect();
    let names: Vec<String> = genome.chromosomes.iter().map(|c| c.name.clone()).collect();
    let cfg = PlatformConfig::default();
    let (records, _variants) = serial_pipeline(
        &aligner,
        &references,
        &names,
        &pairs,
        &cfg.read_group,
        cfg.seed,
        &cfg.hc,
    );
    assert_eq!(records.len(), pairs.len() * 2);
    assert!(gesall::tools::sort_sam::is_coordinate_sorted(&records));
    // Read groups stamped by the pipeline.
    assert!(records.iter().all(|r| r.read_group == "rg1"));
}

#[test]
fn facade_round_planner() {
    let rounds = plan_rounds(Partitioning::ByReadName, &gatk_best_practices_specs());
    assert!(rounds.len() >= 3);
    assert_eq!(rounds.iter().filter(|r| r.needs_shuffle).count(), 2);
}

#[test]
fn facade_sim_models_available() {
    use gesall::sim::{ClusterSpec, WorkloadSpec};
    let w = WorkloadSpec::na12878();
    let t = gesall::sim::mr_model::simulate_mr_job(
        &ClusterSpec::cluster_b(),
        &gesall::sim::mr_model::markdup_job(&w, true, 64, 16, 16, 0.05),
    );
    assert!(t.wall_s > 0.0);
    let rows = gesall::sim::pipeline_model::table2_rows(&ClusterSpec::single_server(), &w);
    assert_eq!(rows.len(), 11);
}

#[test]
fn facade_formats_interop() {
    use gesall::formats::bam;
    use gesall::formats::sam::header::ReferenceSeq;
    use gesall::formats::sam::{text, SamHeader, SamRecord};
    let header = SamHeader::new(vec![ReferenceSeq {
        name: "chrT".into(),
        len: 500,
    }]);
    let rec = SamRecord::unmapped("x", b"ACGT".to_vec(), vec![30; 4]);
    // text → records → bam → records round trip.
    let textual = text::to_text(&header, std::slice::from_ref(&rec));
    let (h2, recs) = text::from_text(&textual).unwrap();
    let bytes = bam::write_bam(&h2, &recs);
    let (h3, r3) = bam::read_bam(&bytes).unwrap();
    assert_eq!(h3, header);
    assert_eq!(r3, vec![rec]);
}
