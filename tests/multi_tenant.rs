//! Multi-tenant job service integration tests through the `gesall`
//! facade: fairness under a flooding tenant, typed admission control,
//! fault recovery across concurrent jobs, and per-job shuffle
//! retention — the service-level guarantees layered over the engine.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use gesall::dfs::{Dfs, DfsConfig};
use gesall::jobsvc::{
    keys, JobOutput, JobService, JobSpec, JobStatus, JobSvcConfig, JobSvcError, TenantConfig,
};
use gesall::mapreduce::{
    ClusterResources, FaultPlan, HashPartitioner, InputSplit, MapContext, MapReduceEngine, Mapper,
    ReduceContext, Reducer,
};
use gesall::platform::{GesallPlatform, PlatformConfig};
use gesall::telemetry::{Recorder, SpanKind};

// ---------------------------------------------------------------------
// Shared fixtures
// ---------------------------------------------------------------------

struct Tokenize;
impl Mapper for Tokenize {
    type InKey = u64;
    type InValue = String;
    type OutKey = String;
    type OutValue = u64;
    fn map(&self, _k: &u64, line: &String, ctx: &mut MapContext<'_, String, u64>) {
        // A touch of work per record so concurrent jobs demonstrably
        // overlap in time rather than winking in and out.
        std::thread::sleep(Duration::from_micros(300));
        for w in line.split_whitespace() {
            ctx.emit(w.to_string(), 1);
        }
    }
}

struct Sum;
impl Reducer for Sum {
    type InKey = String;
    type InValue = u64;
    type OutKey = String;
    type OutValue = u64;
    fn reduce(&self, k: String, vs: Vec<u64>, ctx: &mut ReduceContext<'_, String, u64>) {
        ctx.emit(k, vs.iter().sum());
    }
}

fn word_splits(n_splits: usize, lines_per_split: usize) -> Vec<InputSplit<u64, String>> {
    let words = ["gesall", "yarn", "hdfs", "bwa", "gatk", "tenant", "lease"];
    (0..n_splits)
        .map(|s| {
            let records: Vec<(u64, String)> = (0..lines_per_split)
                .map(|i| {
                    let line: Vec<&str> = (0..5)
                        .map(|j| words[(s * 31 + i * 7 + j) % words.len()])
                        .collect();
                    (i as u64, line.join(" "))
                })
                .collect();
            InputSplit::new(format!("split-{s}"), records)
        })
        .collect()
}

fn small_dfs() -> Dfs {
    Dfs::new(DfsConfig {
        n_nodes: 4,
        block_size: 64 * 1024,
        replication: 1,
        ..DfsConfig::default()
    })
}

fn platform_with(engine: MapReduceEngine) -> GesallPlatform {
    GesallPlatform::new(small_dfs(), engine, PlatformConfig::default())
}

fn wait_until(deadline_ms: u64, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_millis(deadline_ms);
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    cond()
}

/// Releases a blocker even if an assertion fails first, so the
/// service's draining drop can't hang a failing test.
struct SetOnDrop(Arc<AtomicBool>);
impl Drop for SetOnDrop {
    fn drop(&mut self) {
        self.0.store(true, Ordering::SeqCst);
    }
}

fn sleepy_job(ms: u64) -> JobSpec {
    JobSpec::new("sleepy", 2, move |_ctx| {
        std::thread::sleep(Duration::from_millis(ms));
        Ok(Box::new(()) as JobOutput)
    })
}

// ---------------------------------------------------------------------
// (a) Fairness: a flooding tenant cannot starve a quiet one
// ---------------------------------------------------------------------

#[test]
fn flooding_tenant_does_not_starve_quiet_tenant() {
    let engine = MapReduceEngine::new(ClusterResources::uniform(4, 2, 4096));
    let svc = JobService::new(
        platform_with(engine),
        JobSvcConfig {
            tenants: vec![TenantConfig::new("noisy", 1), TenantConfig::new("quiet", 1)],
            total_slots: Some(4),
            retention_ttl: Duration::from_secs(600),
        },
    );
    // noisy floods the queue with six 2-slot jobs (only two fit at
    // once), then quiet asks for two of its own. Noisy jobs are long
    // relative to scheduler latency so quiet's dispatch provably rides
    // the shrink/reclaim path rather than a lucky natural completion.
    let noisy: Vec<_> = (0..6)
        .map(|_| svc.submit("noisy", sleepy_job(400)).unwrap())
        .collect();
    // Wait until noisy holds the whole cluster (two 2-slot jobs in
    // flight) — only then does quiet's arrival force a shrink; if
    // quiet submitted earlier the slots would already be fairly split
    // and there'd be nothing to reclaim.
    assert!(wait_until(5000, || noisy
        .iter()
        .filter(|h| h.status() == JobStatus::Running)
        .count()
        >= 2));
    let quiet: Vec<_> = (0..2)
        .map(|_| svc.submit("quiet", sleepy_job(50)).unwrap())
        .collect();
    for h in &quiet {
        h.wait().unwrap();
    }
    for h in &noisy {
        h.wait().unwrap();
    }

    // Structural fairness: the capacity scheduler served quiet as soon
    // as slots freed, so both quiet jobs dispatched before noisy's
    // backlog drained.
    let quiet_last = quiet.iter().filter_map(|h| h.dispatch_seq()).max().unwrap();
    let noisy_last = noisy.iter().filter_map(|h| h.dispatch_seq()).max().unwrap();
    assert!(
        quiet_last < noisy_last,
        "quiet (last dispatch #{quiet_last}) should pre-empt part of noisy's backlog (last #{noisy_last})"
    );

    // Latency fairness: quiet's p90 queue wait is bounded well below
    // the flooding tenant's.
    let m = svc.metrics();
    let quiet_p90 = m
        .histogram(&format!("{}.quiet", keys::QUEUE_WAIT_NANOS))
        .quantile(0.9)
        .expect("quiet waits recorded");
    let noisy_p90 = m
        .histogram(&format!("{}.noisy", keys::QUEUE_WAIT_NANOS))
        .quantile(0.9)
        .expect("noisy waits recorded");
    assert!(
        quiet_p90 <= noisy_p90,
        "quiet p90 wait {quiet_p90}ns should not exceed flooding tenant's {noisy_p90}ns"
    );
    // And the under-share tenant was served on reclaimed capacity.
    assert!(m.counter(keys::SLOTS_RECLAIMED).get() >= 1);
    svc.shutdown();
}

// ---------------------------------------------------------------------
// (b) Admission control: typed rejections, running jobs undisturbed
// ---------------------------------------------------------------------

#[test]
fn quota_rejections_are_typed_and_do_not_disturb_running_jobs() {
    let engine = MapReduceEngine::new(ClusterResources::uniform(2, 2, 4096));
    let svc = JobService::new(
        platform_with(engine),
        JobSvcConfig {
            tenants: vec![
                TenantConfig::new("a", 1).max_queued(1).max_inflight_slots(2),
                TenantConfig::new("b", 1),
            ],
            total_slots: Some(2),
            retention_ttl: Duration::from_secs(600),
        },
    );
    let release = Arc::new(AtomicBool::new(false));
    let _guard = SetOnDrop(release.clone());
    let r = release.clone();
    let running = svc
        .submit(
            "a",
            JobSpec::new("holder", 2, move |_ctx| {
                while !r.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Ok(Box::new(7u32) as JobOutput)
            }),
        )
        .unwrap();
    assert!(wait_until(5000, || running.status() == JobStatus::Running));
    let queued = svc.submit("a", sleepy_job(1)).unwrap();

    // Queue quota (1) is full → typed rejection.
    match svc.submit("a", sleepy_job(1)) {
        Err(JobSvcError::QuotaExceeded {
            tenant,
            quota,
            limit,
        }) => {
            assert_eq!((tenant.as_str(), quota, limit), ("a", "queued-jobs", 1));
        }
        other => panic!("expected queued-jobs QuotaExceeded, got {other:?}"),
    }
    // Slot quota: asking for more than the tenant may ever hold.
    match svc.submit("b", {
        let mut s = sleepy_job(1);
        s.slots = 2;
        s
    }) {
        Ok(_) => {} // b has no slot cap; sanity: admitted fine
        Err(e) => panic!("b should admit: {e}"),
    }
    let wide = svc.submit("a", JobSpec::new("wide", 2, |_| Ok(Box::new(()) as JobOutput)));
    // a's queue is still full; drain it first so we isolate the slot quota.
    assert!(matches!(wide, Err(JobSvcError::QuotaExceeded { .. })));
    match svc.submit("ghost", sleepy_job(1)) {
        Err(JobSvcError::TenantUnknown(t)) => assert_eq!(t, "ghost"),
        other => panic!("expected TenantUnknown, got {other:?}"),
    }

    // None of the rejections disturbed admitted work.
    assert_eq!(running.status(), JobStatus::Running);
    release.store(true, Ordering::SeqCst);
    running.wait().unwrap();
    assert_eq!(
        *running.take_output().unwrap().downcast::<u32>().unwrap(),
        7
    );
    queued.wait().unwrap();
    assert!(svc.metrics().counter(keys::JOBS_REJECTED).get() >= 2);
    svc.shutdown();
}

#[test]
fn oversized_slot_request_rejected_at_admission() {
    let engine = MapReduceEngine::new(ClusterResources::uniform(2, 2, 4096));
    let svc = JobService::new(
        platform_with(engine),
        JobSvcConfig {
            tenants: vec![TenantConfig::new("small", 1).max_inflight_slots(1)],
            total_slots: Some(4),
            retention_ttl: Duration::from_secs(600),
        },
    );
    match svc.submit("small", sleepy_job(1)) {
        // sleepy_job asks for 2 slots; the tenant may only ever hold 1.
        Err(JobSvcError::QuotaExceeded {
            tenant,
            quota,
            limit,
        }) => assert_eq!((tenant.as_str(), quota, limit), ("small", "inflight-slots", 1)),
        other => panic!("expected inflight-slots QuotaExceeded, got {other:?}"),
    }
    // A right-sized job sails through.
    let mut ok = sleepy_job(1);
    ok.slots = 1;
    svc.submit("small", ok).unwrap().wait().unwrap();
    svc.shutdown();
}

// ---------------------------------------------------------------------
// (c) Fault tolerance across concurrent tenants
// ---------------------------------------------------------------------

#[test]
fn node_death_during_concurrent_jobs_recovers_both() {
    // Reference output from a quiet cluster.
    let reference = {
        let engine = MapReduceEngine::new(ClusterResources::uniform(4, 2, 4096));
        let cfg = gesall::mapreduce::JobConfig {
            n_reducers: 3,
            ..gesall::mapreduce::JobConfig::default()
        };
        let res = engine
            .run_job(cfg, &Tokenize, &Sum, &HashPartitioner, word_splits(8, 12))
            .unwrap();
        let mut all: Vec<(String, u64)> = res.outputs.iter().flatten().cloned().collect();
        all.sort();
        all
    };

    // Node 2 dies once it has committed 2 map tasks — while both
    // tenants' jobs are in flight on the shared engine.
    let engine = MapReduceEngine::new(ClusterResources::uniform(4, 2, 4096))
        .with_fault_plan(FaultPlan::seeded(11).kill_node_after_maps(2, 2));
    let svc = JobService::new(
        platform_with(engine),
        JobSvcConfig {
            tenants: vec![TenantConfig::new("a", 1), TenantConfig::new("b", 1)],
            total_slots: Some(8),
            retention_ttl: Duration::from_secs(600),
        },
    );
    let gate = Arc::new(Barrier::new(2));
    let submit_wc = |tenant: &str| {
        let gate = gate.clone();
        svc.submit(
            tenant,
            JobSpec::new("wc", 4, move |ctx| {
                gate.wait();
                let cfg = ctx.job_config("wc", 3);
                let res = ctx.platform().engine.run_job(
                    cfg,
                    &Tokenize,
                    &Sum,
                    &HashPartitioner,
                    word_splits(8, 12),
                )?;
                let mut all: Vec<(String, u64)> =
                    res.outputs.iter().flatten().cloned().collect();
                all.sort();
                Ok(Box::new(all) as JobOutput)
            }),
        )
        .unwrap()
    };
    let ha = submit_wc("a");
    let hb = submit_wc("b");
    ha.wait().unwrap();
    hb.wait().unwrap();
    for h in [&ha, &hb] {
        let out = h
            .take_output()
            .unwrap()
            .downcast::<Vec<(String, u64)>>()
            .unwrap();
        assert_eq!(*out, reference, "job {} diverged after node death", h.id());
    }
    // The death actually happened and was survived, not avoided.
    assert!(svc
        .platform()
        .engine
        .dead_nodes()
        .contains(&2));
    svc.shutdown();
}

// ---------------------------------------------------------------------
// (d) Retention: cancelled job's namespace swept, sibling survives
// ---------------------------------------------------------------------

#[test]
fn cancelled_jobs_namespace_swept_while_siblings_transit_survives() {
    let engine = MapReduceEngine::new(ClusterResources::uniform(2, 2, 4096));
    let svc = JobService::new(
        platform_with(engine),
        JobSvcConfig {
            tenants: vec![TenantConfig::new("a", 1), TenantConfig::new("b", 1)],
            total_slots: Some(4),
            retention_ttl: Duration::from_secs(600),
        },
    );
    let stop_b = Arc::new(AtomicBool::new(false));
    let _guard = SetOnDrop(stop_b.clone());

    // Victim writes shuffle-shaped transit under its namespace, then
    // spins until cancelled.
    let victim = svc
        .submit(
            "a",
            JobSpec::new("victim", 1, move |ctx| {
                ctx.dfs()
                    .write_file(
                        &format!("{}/shuffle-0/map-0.seg", ctx.namespace()),
                        b"victim transit",
                    )
                    .unwrap();
                while !ctx.cancelled() {
                    std::thread::sleep(Duration::from_millis(1));
                }
                ctx.checkpoint()?; // surfaces the cancellation
                Ok(Box::new(()) as JobOutput)
            }),
        )
        .unwrap();
    let sb = stop_b.clone();
    let sibling = svc
        .submit(
            "b",
            JobSpec::new("sibling", 1, move |ctx| {
                ctx.dfs()
                    .write_file(
                        &format!("{}/shuffle-0/map-0.seg", ctx.namespace()),
                        b"sibling transit",
                    )
                    .unwrap();
                while !sb.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Ok(Box::new(()) as JobOutput)
            }),
        )
        .unwrap();

    let dfs = svc.platform().dfs.clone();
    let victim_ns = victim.namespace().to_string();
    let sibling_ns = sibling.namespace().to_string();
    assert!(wait_until(5000, || !dfs.list(&victim_ns).is_empty()
        && !dfs.list(&sibling_ns).is_empty()));

    assert!(victim.cancel());
    assert_eq!(victim.wait().unwrap_err(), JobSvcError::Cancelled);
    assert!(
        dfs.list(&victim_ns).is_empty(),
        "cancelled job's namespace must be swept"
    );
    assert!(
        !dfs.list(&sibling_ns).is_empty(),
        "sibling's live transit must survive the sweep"
    );
    assert!(
        dfs.metrics()
            .counter("dfs.retention.swept.cancelled")
            .get()
            >= 1
    );
    stop_b.store(true, Ordering::SeqCst);
    sibling.wait().unwrap();
    assert_eq!(svc.metrics().counter(keys::JOBS_CANCELLED).get(), 1);
    svc.shutdown();
}

// ---------------------------------------------------------------------
// Acceptance: two tenants' jobs are provably concurrent
// ---------------------------------------------------------------------

#[test]
fn two_tenants_jobs_run_concurrently_with_overlapping_spans() {
    let recorder = Recorder::new();
    let engine = MapReduceEngine::new(ClusterResources::uniform(4, 2, 4096))
        .with_recorder(recorder.clone());
    let svc = JobService::new(
        platform_with(engine),
        JobSvcConfig {
            tenants: vec![TenantConfig::new("a", 1), TenantConfig::new("b", 1)],
            total_slots: Some(8),
            retention_ttl: Duration::from_secs(600),
        },
    );
    let gate = Arc::new(Barrier::new(2));
    let submit_wc = |tenant: &str, label: &'static str| {
        let gate = gate.clone();
        svc.submit(
            tenant,
            JobSpec::new(label, 4, move |ctx| {
                gate.wait();
                let cfg = ctx.job_config(label, 2);
                ctx.platform().engine.run_job(
                    cfg,
                    &Tokenize,
                    &Sum,
                    &HashPartitioner,
                    word_splits(6, 20),
                )?;
                Ok(Box::new(()) as JobOutput)
            }),
        )
        .unwrap()
    };
    let ha = submit_wc("a", "alpha");
    let hb = submit_wc("b", "beta");
    ha.wait().unwrap();
    hb.wait().unwrap();

    let jobs = recorder.spans_of_kind(SpanKind::Job);
    let alpha = jobs
        .iter()
        .find(|s| s.name.contains("alpha"))
        .expect("alpha job span");
    let beta = jobs
        .iter()
        .find(|s| s.name.contains("beta"))
        .expect("beta job span");
    let overlap_start = alpha.start_ms.max(beta.start_ms);
    let overlap_end = alpha.end_ms.min(beta.end_ms);
    assert!(
        overlap_start < overlap_end,
        "job spans must overlap: alpha [{:.1}, {:.1}] vs beta [{:.1}, {:.1}]",
        alpha.start_ms,
        alpha.end_ms,
        beta.start_ms,
        beta.end_ms
    );
    // Both tenants' engine work really went through their own leases.
    assert!(svc.metrics().counter("jobsvc.slots.granted.a").get() >= 4);
    assert!(svc.metrics().counter("jobsvc.slots.granted.b").get() >= 4);
    svc.shutdown();
}
