//! Offline shim for the subset of `bytes` this workspace uses:
//! `Bytes` as a cheaply clonable, immutable, reference-counted byte buffer.

use std::ops::Deref;
use std::sync::Arc;

/// Immutable, reference-counted byte buffer. `clone` is O(1).
#[derive(Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    pub fn new() -> Bytes {
        Bytes(Arc::from(&[][..]))
    }

    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes(Arc::from(data))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(Arc::from(v.into_boxed_slice()))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::Bytes;

    #[test]
    fn copy_clone_deref() {
        let b = Bytes::copy_from_slice(b"acgt");
        let c = b.clone();
        assert_eq!(&*c, b"acgt");
        assert_eq!(b.len(), 4);
        assert!(!b.is_empty());
    }
}
