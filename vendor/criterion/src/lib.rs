//! Offline shim for the subset of `criterion` this workspace uses. It is a
//! minimal timing harness: each benchmark runs a warm-up pass plus a small
//! fixed number of timed iterations and prints the mean per-iteration time.
//! Statistical machinery (outlier analysis, HTML reports) is out of scope.

use std::fmt::Display;
use std::time::Instant;

const TIMED_ITERS: u32 = 10;

/// Prevent the optimizer from eliding a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation, reported alongside timing.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Identifier for a parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn from_parameter<P: Display>(parameter: P) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }

    pub fn new<N: Display, P: Display>(name: N, parameter: P) -> BenchmarkId {
        BenchmarkId(format!("{name}/{parameter}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId(s)
    }
}

/// Passed to benchmark closures; `iter` times the supplied routine.
pub struct Bencher {
    mean_ns: f64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up
        let start = Instant::now();
        for _ in 0..TIMED_ITERS {
            black_box(routine());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / TIMED_ITERS as f64;
    }
}

fn run_one(label: &str, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { mean_ns: 0.0 };
    f(&mut b);
    let per_iter = b.mean_ns / 1.0e6;
    match throughput {
        Some(Throughput::Bytes(n)) if b.mean_ns > 0.0 => {
            let mib_s = n as f64 / (b.mean_ns / 1.0e9) / (1024.0 * 1024.0);
            println!("bench {label}: {per_iter:.3} ms/iter ({mib_s:.1} MiB/s)");
        }
        Some(Throughput::Elements(n)) if b.mean_ns > 0.0 => {
            let elem_s = n as f64 / (b.mean_ns / 1.0e9);
            println!("bench {label}: {per_iter:.3} ms/iter ({elem_s:.0} elem/s)");
        }
        _ => println!("bench {label}: {per_iter:.3} ms/iter"),
    }
}

/// Group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().0);
        run_one(&label, self.throughput, &mut f);
        self
    }

    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        let label = format!("{}/{}", self.name, id.into().0);
        run_one(&label, self.throughput, &mut |b| f(b, input));
        self
    }

    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, None, &mut f);
        self
    }

    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Bytes(1024));
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &x| {
            b.iter(|| black_box(x * 2));
        });
        g.finish();
    }
}
