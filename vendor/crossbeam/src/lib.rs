//! Offline shim for the subset of `crossbeam` this workspace uses:
//! `crossbeam::thread::scope` (scoped threads whose panics surface as
//! `Err` rather than aborting) and `crossbeam::channel::bounded`.

pub mod thread {
    use std::any::Any;
    use std::panic::AssertUnwindSafe;

    /// Scope handle passed to `scope`'s closure and to spawned threads.
    pub struct Scope<'scope, 'env: 'scope>(&'scope std::thread::Scope<'scope, 'env>);

    /// Handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.0;
            ScopedJoinHandle(inner.spawn(move || f(&Scope(inner))))
        }
    }

    impl<T> ScopedJoinHandle<'_, T> {
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.0.join()
        }
    }

    /// Run `f` with a thread scope; every spawned thread is joined before
    /// this returns. A panic in `f` or in an unjoined spawned thread is
    /// returned as `Err` instead of unwinding through the caller.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: FnOnce(&Scope<'_, 'env>) -> R,
    {
        std::panic::catch_unwind(AssertUnwindSafe(|| std::thread::scope(|s| f(&Scope(s)))))
    }
}

pub mod channel {
    use std::fmt;
    use std::sync::mpsc;

    /// Error returned when the receiving end has been dropped.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned when the sending end has been dropped and the
    /// channel is drained.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Sending half of a bounded channel (blocks when full).
    pub struct Sender<T>(mpsc::SyncSender<T>);

    /// Receiving half of a bounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|e| SendError(e.0))
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        pub fn try_recv(&self) -> Result<T, RecvError> {
            self.0.try_recv().map_err(|_| RecvError)
        }
    }

    /// Create a bounded channel with capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_returns_err_on_child_panic() {
        let r = super::thread::scope(|s| {
            s.spawn(|_| panic!("child down"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn scope_joins_and_returns_value() {
        let r = super::thread::scope(|s| {
            let h = s.spawn(|_| 21 * 2);
            h.join().unwrap()
        });
        assert_eq!(r.unwrap(), 42);
    }

    #[test]
    fn bounded_channel_roundtrip() {
        let (tx, rx) = super::channel::bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert!(rx.recv().is_err());
    }
}
