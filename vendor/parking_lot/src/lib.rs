//! Offline shim for the subset of `parking_lot` this workspace uses.
//!
//! Wraps `std::sync` primitives and, like the real crate, has no lock
//! poisoning: a panic while holding a guard (which the fault-tolerant
//! runtime deliberately catches) leaves the lock usable.

use std::sync::{self, LockResult, PoisonError};

fn ignore_poison<G>(r: LockResult<G>) -> G {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// Mutual exclusion without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        ignore_poison(self.0.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        ignore_poison(self.0.lock())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.0.try_lock().ok()
    }

    pub fn get_mut(&mut self) -> &mut T {
        ignore_poison(self.0.get_mut())
    }
}

/// Reader-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        ignore_poison(self.0.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        ignore_poison(self.0.read())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        ignore_poison(self.0.write())
    }

    pub fn get_mut(&mut self) -> &mut T {
        ignore_poison(self.0.get_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::panic::catch_unwind(move || {
            let _g = m2.lock();
            panic!("boom");
        });
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
