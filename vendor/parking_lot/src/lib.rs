//! Offline shim for the subset of `parking_lot` this workspace uses.
//!
//! Wraps `std::sync` primitives and, like the real crate, has no lock
//! poisoning: a panic while holding a guard (which the fault-tolerant
//! runtime deliberately catches) leaves the lock usable.

use std::sync::{self, LockResult, PoisonError};

fn ignore_poison<G>(r: LockResult<G>) -> G {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// Mutual exclusion without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        ignore_poison(self.0.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        ignore_poison(self.0.lock())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.0.try_lock().ok()
    }

    pub fn get_mut(&mut self) -> &mut T {
        ignore_poison(self.0.get_mut())
    }
}

/// Reader-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        ignore_poison(self.0.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        ignore_poison(self.0.read())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        ignore_poison(self.0.write())
    }

    pub fn get_mut(&mut self) -> &mut T {
        ignore_poison(self.0.get_mut())
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable compatible with [`Mutex`], mirroring the real
/// parking_lot API: `wait`/`wait_for` re-acquire through the guard
/// in place instead of consuming it.
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    pub fn new() -> Condvar {
        Condvar(sync::Condvar::new())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Block until notified. Like parking_lot (and unlike std), a given
    /// `Condvar` must only ever be used with one `Mutex`.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        self.replace_guard(guard, |g| ignore_poison(self.0.wait(g)));
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        self.replace_guard(guard, |g| {
            let (g, res) = ignore_poison_pair(self.0.wait_timeout(g, timeout));
            timed_out = res.timed_out();
            g
        });
        WaitTimeoutResult(timed_out)
    }

    /// std's wait API consumes the guard and returns a new one; swap it
    /// through the caller's `&mut` slot. The closure (a std condvar
    /// wait) does not unwind under this crate's single-mutex contract.
    fn replace_guard<'a, T>(
        &self,
        guard: &mut MutexGuard<'a, T>,
        f: impl FnOnce(MutexGuard<'a, T>) -> MutexGuard<'a, T>,
    ) {
        unsafe {
            let owned = std::ptr::read(guard);
            let fresh = f(owned);
            std::ptr::write(guard, fresh);
        }
    }
}

fn ignore_poison_pair<G, R>(r: LockResult<(G, R)>) -> (G, R) {
    r.unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::panic::catch_unwind(move || {
            let _g = m2.lock();
            panic!("boom");
        });
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn condvar_notify_and_timeout() {
        use std::sync::Arc;
        use std::time::Duration;
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
        assert!(*done);
        drop(done);
        t.join().unwrap();
        // Timed wait with nobody notifying must report a timeout.
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
        assert!(*g, "guard still valid after the timed wait");
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
