//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! Strategies sample concrete values from a deterministic per-test RNG
//! (seeded from the test's name), and `proptest!` runs the body for
//! `ProptestConfig::cases` sampled cases. There is no shrinking: a failing
//! case panics with the `prop_assert*` message for that case. The strategy
//! surface covered: integer ranges, tuples, `Just`, `prop_oneof!`,
//! `prop_map`, `collection::vec`, `option::of`, `any::<T>()`, simple
//! `"[class]{m,n}"` string regexes, and one- or two-group `prop_compose!`.

pub mod test_runner {
    use std::fmt;

    /// Deterministic splitmix64 RNG driving all strategy sampling.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed_u64(seed: u64) -> TestRng {
            TestRng { state: seed }
        }

        /// Seed from a test name so each test gets a distinct stream.
        pub fn from_name(name: &str) -> TestRng {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }
    }

    /// Failure raised by `prop_assert*`; aborts the current case.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        pub fn fail<S: Into<String>>(msg: S) -> TestCaseError {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Runtime knobs for `proptest!` blocks.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for sampling values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Type-erased strategy, as produced by [`Strategy::boxed`].
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0.sample(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T>(Vec<BoxedStrategy<T>>);

    impl<T> Union<T> {
        pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!alternatives.is_empty(), "prop_oneof! needs >= 1 alternative");
            Union(alternatives)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.0.len() as u64) as usize;
            self.0[i].sample(rng)
        }
    }

    /// Strategy backed by a sampling closure (used by `prop_compose!`).
    pub struct SampleFn<F>(F);

    impl<T, F: Fn(&mut TestRng) -> T> Strategy for SampleFn<F> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    pub fn sample_fn<T, F: Fn(&mut TestRng) -> T>(f: F) -> SampleFn<F> {
        SampleFn(f)
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128) % span;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }

    /// `"[class]{m,n}"`-style string strategies. Supports literal characters,
    /// character classes with `a-z` ranges, and `{m}` / `{m,n}` repetition.
    impl Strategy for &str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            sample_pattern(self, rng)
        }
    }

    fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let alphabet: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"));
                let class = &chars[i + 1..close];
                i = close + 1;
                expand_class(class)
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse::<usize>().expect("bad {m,n}"),
                        n.trim().parse::<usize>().expect("bad {m,n}"),
                    ),
                    None => {
                        let n = body.trim().parse::<usize>().expect("bad {n}");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            let len = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..len {
                out.push(alphabet[rng.below(alphabet.len() as u64) as usize]);
            }
        }
        out
    }

    fn expand_class(class: &[char]) -> Vec<char> {
        let mut set = Vec::new();
        let mut j = 0;
        while j < class.len() {
            if j + 2 < class.len() && class[j + 1] == '-' {
                let (a, b) = (class[j] as u32, class[j + 2] as u32);
                assert!(a <= b, "descending range in char class");
                for c in a..=b {
                    set.push(char::from_u32(c).unwrap());
                }
                j += 3;
            } else {
                set.push(class[j]);
                j += 1;
            }
        }
        assert!(!set.is_empty(), "empty char class");
        set
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy via [`any`].
    pub trait ArbitrarySample {
        fn sample_any(rng: &mut TestRng) -> Self;
    }

    impl ArbitrarySample for bool {
        fn sample_any(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl ArbitrarySample for $t {
                fn sample_any(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T: ArbitrarySample> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::sample_any(rng)
        }
    }

    /// Full-domain strategy for `T`.
    pub fn any<T: ArbitrarySample>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive size bounds for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `Vec` strategy with element strategy `element` and a length drawn
    /// from `size` each case.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Bias toward Some, matching real proptest's default weighting.
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }

    /// `Option` strategy: mostly `Some(inner)`, sometimes `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($binding:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            for case in 0..config.cases {
                $(let $binding = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("proptest {} failed at case {case}: {e}", stringify!($name));
                }
            }
        }
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_compose {
    // One binding group.
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($arg:ident: $argty:ty),* $(,)?)
        ($($binding:ident in $strat:expr),* $(,)?)
        -> $ret:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($arg: $argty),*)
            -> impl $crate::strategy::Strategy<Value = $ret>
        {
            $crate::strategy::sample_fn(move |rng: &mut $crate::test_runner::TestRng| -> $ret {
                $(let $binding = $crate::strategy::Strategy::sample(&($strat), rng);)*
                $body
            })
        }
    };
    // Two binding groups; the second may reference (and shadow) the first.
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($arg:ident: $argty:ty),* $(,)?)
        ($($b1:ident in $s1:expr),* $(,)?)
        ($($b2:ident in $s2:expr),* $(,)?)
        -> $ret:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($arg: $argty),*)
            -> impl $crate::strategy::Strategy<Value = $ret>
        {
            $crate::strategy::sample_fn(move |rng: &mut $crate::test_runner::TestRng| -> $ret {
                $(let $b1 = $crate::strategy::Strategy::sample(&($s1), rng);)*
                $(let $b2 = $crate::strategy::Strategy::sample(&($s2), rng);)*
                $body
            })
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` == `{:?}`", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` == `{:?}`: {}", l, r, format!($($fmt)+)),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` != `{:?}`", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` != `{:?}`: {}", l, r, format!($($fmt)+)),
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_bytes(max: usize) -> impl Strategy<Value = Vec<u8>> {
        crate::collection::vec(any::<u8>(), 1..max)
    }

    prop_compose! {
        fn arb_labeled()(payload in arb_bytes(16))(
            tag in Just(payload.len() as u64),
            payload in Just(payload),
            name in "[a-z0-9_]{1,8}",
        ) -> (String, Vec<u8>, u64) {
            (name, payload, tag)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(x in 0u8..60, y in -3i64..=3, pair in (1usize..5, 0u16..0x400)) {
            prop_assert!(x < 60);
            prop_assert!((-3..=3).contains(&y));
            prop_assert!(pair.0 >= 1 && pair.0 < 5 && pair.1 < 0x400);
        }

        #[test]
        fn oneof_vec_option_regex(
            base in prop_oneof![Just(b'A'), Just(b'C'), Just(b'G'), Just(b'T')],
            v in crate::collection::vec(0u8..10, 2..=4),
            o in crate::option::of(1u32..9),
            s in "[a-zA-Z0-9_:/]{1,30}",
        ) {
            prop_assert!(matches!(base, b'A' | b'C' | b'G' | b'T'));
            prop_assert!(v.len() >= 2 && v.len() <= 4);
            prop_assert!(v.iter().all(|&b| b < 10));
            if let Some(x) = o {
                prop_assert!((1..9).contains(&x));
            }
            prop_assert!(!s.is_empty() && s.len() <= 30);
            prop_assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':' || c == '/'));
        }

        #[test]
        fn composed_strategy(rec in arb_labeled()) {
            let (name, payload, tag) = rec;
            prop_assert_eq!(payload.len() as u64, tag);
            prop_assert_ne!(name.len(), 0);
        }

        #[test]
        fn prop_map_works(doubled in (1u32..100).prop_map(|x| x * 2)) {
            prop_assert_eq!(doubled % 2, 0);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::from_name("t");
        let mut b = crate::test_runner::TestRng::from_name("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
