//! Offline shim for the subset of `rand` this workspace uses:
//! `StdRng::seed_from_u64` plus `Rng::{gen, gen_bool, gen_range}` over
//! integer and float ranges. Backed by splitmix64 — deterministic for a
//! given seed, which is all the simulators and tests here rely on.

use std::ops::{Range, RangeInclusive};

/// Minimal RNG core: a source of uniform `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Construction from a `u64` seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their "natural" range by [`Rng::gen`]
/// (`f64` in `[0, 1)`, integers over their full domain, `bool` fair).
pub trait StandardSample {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 high-quality mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// User-facing RNG methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        self.gen::<f64>() < p
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seeded RNG (splitmix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = r.gen_range(-3..=3i64);
            assert!((-3..=3).contains(&x));
            let y = r.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&y));
            let z: f64 = r.gen();
            assert!((0.0..1.0).contains(&z));
            let u = r.gen_range(0..2usize);
            assert!(u < 2);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
