//! Offline shim for the subset of `serde` this workspace uses: the
//! `Serialize` / `Deserialize` derive markers on simulation spec types.
//! No serializer is ever driven, so the traits are empty markers and the
//! derives (re-exported under the `derive` feature) expand to nothing.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
