//! Offline shim for `serde_derive`: the workspace only uses
//! `#[derive(Serialize, Deserialize)]` as a marker (no serializer is ever
//! instantiated), so the derives expand to nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
